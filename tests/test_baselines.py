"""Tests for the baseline caches (Global / StaticPartition / Null)."""

import pytest

from repro.core import (
    CachePolicy,
    GlobalCache,
    NullCache,
    StaticPartitionCache,
    StoreKind,
)
from repro.simkernel import Environment

BLK = 64 * 1024


def run_gen(env, gen):
    return env.run(until=env.process(gen))


class TestGlobalCache:
    def make(self, capacity_mb=1.0, per_vm=None, exclusive=True):
        env = Environment()
        cache = GlobalCache(env, capacity_mb, BLK, per_vm_cap_mb=per_vm,
                            exclusive=exclusive)
        return env, cache

    def test_put_get_exclusive(self):
        env, cache = self.make()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        assert run_gen(env, cache.get_many(vm, pool, [(1, 0)])) == {(1, 0)}
        assert run_gen(env, cache.get_many(vm, pool, [(1, 0)])) == set()

    def test_inclusive_mode_keeps_blocks(self):
        env, cache = self.make(exclusive=False)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        assert run_gen(env, cache.get_many(vm, pool, [(1, 0)])) == {(1, 0)}
        assert run_gen(env, cache.get_many(vm, pool, [(1, 0)])) == {(1, 0)}

    def test_global_fifo_eviction_ignores_containers(self):
        """The defining flaw: the oldest block goes, whoever owns it."""
        env, cache = self.make(capacity_mb=1.0)  # 16 blocks
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(100))
        p2 = cache.create_pool(vm, "c2", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(8)]))
        run_gen(env, cache.put_many(vm, p2, [(2, i) for i in range(8)]))
        # Cache full; p2 inserts more -> p1's oldest blocks evicted.
        run_gen(env, cache.put_many(vm, p2, [(2, 100), (2, 101)]))
        assert cache._pools[p1].stats.evictions == 2
        found = run_gen(env, cache.get_many(vm, p1, [(1, 0), (1, 1)]))
        assert found == set()

    def test_per_vm_cap_enforced(self):
        env, cache = self.make(capacity_mb=2.0, per_vm=1.0)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(32)]))
        assert cache.vm_used_blocks(vm) <= 16

    def test_capacity_never_exceeded(self):
        env, cache = self.make(capacity_mb=1.0)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(64)]))
        assert cache.used_blocks <= cache.capacity_blocks

    def test_duplicate_put_not_double_counted(self):
        env, cache = self.make()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        assert cache.used_blocks == 1

    def test_destroy_pool_purges_fifo(self):
        env, cache = self.make(capacity_mb=1.0)
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(8)]))
        cache.destroy_pool(vm, p1)
        assert cache.used_blocks == 0
        assert len(cache._fifo) == 0

    def test_flush_keeps_fifo_consistent(self):
        env, cache = self.make(capacity_mb=1.0)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(4)]))
        cache.flush_many(vm, pool, [(1, 0), (1, 1)])
        assert cache.used_blocks == 2
        assert len(cache._fifo) == 2


class TestStaticPartitionCache:
    def make(self, capacity_mb=2.0):
        env = Environment()
        return env, StaticPartitionCache(env, capacity_mb, BLK)

    def test_no_partition_means_no_storage(self):
        env, cache = self.make()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        assert run_gen(env, cache.put_many(vm, pool, [(1, 0)])) == 0

    def test_partition_cap_with_self_eviction(self):
        env, cache = self.make()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        cache.set_partition(pool, 0.5)  # 8 blocks
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(12)]))
        p = cache._pools[pool]
        assert p.used[StoreKind.MEMORY] == 8
        assert p.stats.evictions == 4
        # Oldest evicted, newest kept.
        found = run_gen(env, cache.get_many(vm, pool, [(1, 0), (1, 11)]))
        assert found == {(1, 11)}

    def test_unused_capacity_is_wasted(self):
        """The centralized scheme's flaw DoubleDecker fixes: one pool's
        idle partition cannot be used by another."""
        env, cache = self.make(capacity_mb=1.0)
        vm = cache.register_vm("a")
        busy = cache.create_pool(vm, "busy", CachePolicy.memory(100))
        idle = cache.create_pool(vm, "idle", CachePolicy.memory(100))
        cache.set_partition(busy, 0.5)
        cache.set_partition(idle, 0.5)
        run_gen(env, cache.put_many(vm, busy, [(1, i) for i in range(16)]))
        assert cache._pools[busy].used[StoreKind.MEMORY] == 8  # capped

    def test_set_partition_validates(self):
        env, cache = self.make()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        with pytest.raises(ValueError):
            cache.set_partition(pool, -1)
        with pytest.raises(KeyError):
            cache.set_partition(999, 1)
        assert cache.partition_of(pool) == 0


class TestNullCache:
    def test_everything_is_a_miss(self):
        env = Environment()
        cache = NullCache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        assert run_gen(env, cache.put_many(vm, pool, [(1, 0)])) == 0
        assert run_gen(env, cache.get_many(vm, pool, [(1, 0)])) == set()
        assert cache.flush_many(vm, pool, [(1, 0)]) == 0
        assert cache.vm_used_blocks(vm) == 0
