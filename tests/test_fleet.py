"""Fleet topology tests: sharding, migration, lending, and equivalence.

The load-bearing property is at the bottom: a 1-host fleet reproduces
the single-host ``SimContext`` path byte-for-byte (the sharded runner is
a pure refactor of the simulation loop, not a new model), and threaded
shard advancement (``jobs > 1``) is indistinguishable from serial.
"""

import pytest

from repro import (
    CachePolicy,
    DDConfig,
    Fleet,
    HostSpec,
    NetworkModel,
    SimContext,
    StoreKind,
)
from repro.core import DoubleDeckerCache
from repro.core.audit import InvariantViolation, assert_consistent
from repro.fleet import LendingCoordinator, assert_fleet_clean, check_fleet
from repro.obs import (
    Tracer,
    parse_jsonl,
    set_tracer,
    to_jsonl,
    validate_trace,
)
from repro.simkernel import Environment
from repro.storage import MB, SSD
from repro.workloads import VarmailWorkload, WebserverWorkload

MEM = StoreKind.MEMORY
BLK = 64 * 1024


@pytest.fixture
def no_tracer():
    set_tracer(None)
    yield
    set_tracer(None)


def make_cache(mem_mb=1.0, ssd_mb=0.0, env=None):
    env = env or Environment()
    ssd = SSD(env, BLK) if ssd_mb > 0 else None
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=mem_mb, ssd_capacity_mb=ssd_mb),
        BLK,
        ssd_device=ssd,
    )
    return env, cache


def run_gen(env, gen):
    return env.run(until=env.process(gen))


def build_fleet(hosts=2, jobs=1, seed=11, mem_mb=16.0, pressured=(0,)):
    """Fleet with one webserver VM per host; ``pressured`` hosts overflow
    their guest page cache (cleancache traffic), the rest stay idle."""
    fleet = Fleet(seed=seed, hosts=hosts, jobs=jobs)
    caches = fleet.install_doubledecker(DDConfig(mem_capacity_mb=mem_mb))
    workloads = []
    for i in range(hosts):
        hot = i in pressured
        vm = fleet.create_vm(i, f"vm{i}", memory_mb=72 if hot else 160)
        container = vm.create_container("app", 32, CachePolicy.memory(100))
        workload = WebserverWorkload(
            "web", nfiles=800 if hot else 30, mean_size_kb=64.0, threads=1
        )
        workload.start(container, fleet.nodes[i].streams)
        workloads.append(workload)
    return fleet, caches, workloads


# ---------------------------------------------------------------------------
# Construction and validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_rejects_zero_hosts(self):
        with pytest.raises(ValueError):
            Fleet(hosts=0)

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            Fleet(jobs=0)

    def test_migrate_to_same_host_rejected(self):
        fleet = Fleet(hosts=2)
        with pytest.raises(ValueError):
            fleet.migrate_vm("vm", 1, 1)

    def test_control_action_in_the_past_rejected(self):
        fleet, _, _ = build_fleet(hosts=2, pressured=())
        fleet.run(until=5.0)
        with pytest.raises(ValueError):
            fleet._at(1.0, lambda now: None)
        fleet.close()

    def test_enable_lending_twice_rejected(self):
        fleet = Fleet(hosts=2)
        fleet.install_doubledecker(DDConfig(mem_capacity_mb=1.0))
        fleet.enable_lending()
        with pytest.raises(RuntimeError):
            fleet.enable_lending()

    def test_network_model_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=0.0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_mb_s=-1.0)
        net = NetworkModel(latency_s=0.001, bandwidth_mb_s=100.0)
        with pytest.raises(ValueError):
            net.transfer_time(-1)
        assert net.transfer_time(0) == pytest.approx(0.001)
        assert net.transfer_time(100 * MB) == pytest.approx(1.001)

    def test_lending_coordinator_validation(self):
        fleet = Fleet(hosts=2)
        with pytest.raises(ValueError):
            LendingCoordinator(fleet, interval_s=fleet.net.latency_s / 2)
        with pytest.raises(ValueError):
            LendingCoordinator(fleet, low_util=0.9, high_util=0.5)
        with pytest.raises(ValueError):
            LendingCoordinator(fleet, lend_fraction=0.0)


# ---------------------------------------------------------------------------
# Cache-level lending primitive
# ---------------------------------------------------------------------------


class TestSetLending:
    def test_lend_in_grows_capacity(self):
        _, cache = make_cache(mem_mb=1.0)
        base = cache.capacities[MEM]
        cache.set_lending(MEM, lend_in=8)
        assert cache.capacities[MEM] == base + 8
        assert_consistent(cache, where="lend_in")

    def test_lend_out_shrinks_and_evicts(self):
        env, cache = make_cache(mem_mb=1.0)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(16)]))
        assert cache.used[MEM] == 16
        cache.set_lending(MEM, lend_out=8)
        assert cache.capacities[MEM] == 8
        assert cache.used[MEM] <= 8
        assert_consistent(cache, where="lend_out shrink")

    def test_regrant_is_idempotent(self):
        _, cache = make_cache(mem_mb=1.0)
        cache.set_lending(MEM, lend_in=4)
        cache.set_lending(MEM, lend_in=4)
        assert cache.capacities[MEM] == cache._base_capacity[MEM] + 4
        cache.set_lending(MEM)
        assert cache.capacities[MEM] == cache._base_capacity[MEM]

    def test_set_capacity_rebases_under_grant(self):
        _, cache = make_cache(mem_mb=1.0)
        cache.set_lending(MEM, lend_in=4)
        cache.set_capacity(MEM, 2.0)
        assert cache._base_capacity[MEM] == 32
        assert cache.capacities[MEM] == 36
        assert_consistent(cache, where="rebase")

    def test_invalid_grants_rejected(self):
        _, cache = make_cache(mem_mb=1.0)
        with pytest.raises(ValueError):
            cache.set_lending(MEM, lend_in=-1)
        with pytest.raises(ValueError):
            cache.set_lending(MEM, lend_in=1, lend_out=1)
        with pytest.raises(ValueError):
            cache.set_lending(MEM, lend_out=17)


# ---------------------------------------------------------------------------
# Cache-level export/adopt primitives
# ---------------------------------------------------------------------------


class TestExportAdopt:
    def _filled_cache(self, nblocks=8):
        env, cache = make_cache(mem_mb=1.0)
        vm = cache.register_vm("src")
        pool = cache.create_pool(vm, "app", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(nblocks)]))
        return env, cache, vm

    def test_export_lists_all_memory_blocks(self):
        _, cache, vm = self._filled_cache()
        exported = cache.export_vm_blocks(vm)
        assert len(exported) == 1
        name, policy, items = exported[0]
        assert name == "app"
        assert len(items) == 8
        assert all(kind is MEM for _, _, kind in items)

    def test_adopt_accepts_into_fresh_pool(self):
        _, src, src_vm = self._filled_cache()
        _, dst = make_cache(mem_mb=1.0)
        vm = dst.register_vm("dst")
        pool = dst.create_pool(vm, "app", CachePolicy.memory(100))
        _, _, items = src.export_vm_blocks(src_vm)[0]
        accepted, rejected = dst.adopt_blocks(vm, pool, items)
        assert (accepted, rejected) == (8, 0)
        assert dst.used[MEM] == 8
        assert_consistent(dst, where="adopt")

    def test_adopt_rejects_duplicates(self):
        _, src, src_vm = self._filled_cache()
        _, dst = make_cache(mem_mb=1.0)
        vm = dst.register_vm("dst")
        pool = dst.create_pool(vm, "app", CachePolicy.memory(100))
        _, _, items = src.export_vm_blocks(src_vm)[0]
        dst.adopt_blocks(vm, pool, items)
        accepted, rejected = dst.adopt_blocks(vm, pool, items)
        assert (accepted, rejected) == (0, 8)
        assert dst.used[MEM] == 8
        assert_consistent(dst, where="duplicate adopt")

    def test_adopt_stops_at_capacity_without_evicting(self):
        _, src, src_vm = self._filled_cache(nblocks=16)
        dst_env, dst = make_cache(mem_mb=1.0)
        vm = dst.register_vm("dst")
        pool = dst.create_pool(vm, "app", CachePolicy.memory(100))
        # Pre-warm the destination: 12 of its 16 blocks are residents
        # that adoption must not evict.
        run_gen(dst_env, dst.put_many(vm, pool, [(9, i) for i in range(12)]))
        _, _, items = src.export_vm_blocks(src_vm)[0]
        accepted, rejected = dst.adopt_blocks(vm, pool, items)
        assert accepted == 4
        assert rejected == 12
        assert dst.used[MEM] == 16
        assert dst.pool_used_mb(pool) == pytest.approx(1.0)
        assert_consistent(dst, where="full adopt")

    def test_adopt_rejects_ssd_blocks(self):
        env, src = make_cache(mem_mb=0.0, ssd_mb=4.0)
        src_vm = src.register_vm("src")
        src_pool = src.create_pool(src_vm, "app", CachePolicy.ssd(100))
        run_gen(env, src.put_many(src_vm, src_pool,
                                  [(1, i) for i in range(8)]))
        env.run(until=env.now + 5.0)  # drain the SSD write buffer
        _, _, items = src.export_vm_blocks(src_vm)[0]
        assert any(kind is StoreKind.SSD for _, _, kind in items)
        _, dst = make_cache(mem_mb=1.0)
        vm = dst.register_vm("dst")
        pool = dst.create_pool(vm, "app", CachePolicy.memory(100))
        accepted, rejected = dst.adopt_blocks(vm, pool, items)
        assert accepted + rejected == len(items)
        assert rejected >= sum(1 for _, _, k in items if k is StoreKind.SSD)
        stats = dst._pools[pool].stats
        assert stats.migrated_rejected == rejected
        assert_consistent(dst, where="ssd adopt")


# ---------------------------------------------------------------------------
# Fleet-level migration
# ---------------------------------------------------------------------------


class TestMigration:
    def test_migration_accounting_conserves_blocks(self, no_tracer):
        fleet, caches, workloads = build_fleet(hosts=2, pressured=(0,))
        arrivals = []
        fleet.run(until=20.0)
        src_used = caches[0].used[MEM]
        assert src_used > 0
        fleet.migrate_vm(
            "vm0", 0, 1,
            on_depart=lambda vm, node: workloads[0].stop(),
            on_arrival=lambda vm, node: arrivals.append((vm, node)),
        )
        fleet.run(until=21.0)
        assert len(fleet.migrations) == 1
        record = fleet.migrations[0]
        assert record.blocks_exported == src_used
        assert record.blocks_accepted + record.blocks_rejected == src_used
        assert record.blocks_accepted > 0
        assert record.downtime_s >= fleet.net.transfer_time(0)
        # The wire carried the RAM image plus the memory blocks.
        assert record.bytes_moved == pytest.approx(
            72 * MB + record.blocks_exported * caches[0].block_bytes
        )
        new_vm, node = arrivals[0]
        assert node.index == 1
        stats = new_vm.containers["app"].cache_stats()
        assert stats.migrated_in == record.blocks_accepted
        assert stats.migrated_rejected == record.blocks_rejected
        assert caches[0].used[MEM] == 0
        assert check_fleet(fleet) == []
        fleet.close()

    def test_migration_rejects_when_destination_full(self, no_tracer):
        fleet, caches, workloads = build_fleet(hosts=2, mem_mb=4.0,
                                               pressured=(0, 1))
        fleet.run(until=20.0)
        # The destination is near-full: fewer free blocks than the source
        # will export, so some adoptions must be refused.
        free = caches[1].capacities[MEM] - caches[1].used[MEM]
        assert free < caches[0].used[MEM]
        fleet.migrate_vm("vm0", 0, 1,
                         on_depart=lambda vm, node: workloads[0].stop())
        fleet.run(until=21.0)
        record = fleet.migrations[0]
        assert record.blocks_rejected > 0
        assert record.blocks_accepted + record.blocks_rejected == \
            record.blocks_exported
        # Adoption never evicts the destination's own warm blocks.
        assert caches[1].used[MEM] <= caches[1].capacities[MEM]
        assert_fleet_clean(fleet, where="full destination")
        fleet.close()

    def test_unknown_vm_fails_at_departure_time(self, no_tracer):
        fleet, _, _ = build_fleet(hosts=2, pressured=())
        fleet.migrate_vm("nope", 0, 1, at=1.0)
        with pytest.raises(KeyError):
            fleet.run(until=2.0)
        fleet.close()


# ---------------------------------------------------------------------------
# Fleet-level lending
# ---------------------------------------------------------------------------


class TestLending:
    def test_grants_flow_from_idle_to_pressured(self, no_tracer):
        fleet, caches, _ = build_fleet(hosts=2, pressured=(0,))
        fleet.enable_lending(interval_s=5.0)
        fleet.run(until=30.0)
        assert caches[0].lend_in[MEM] > 0
        assert caches[1].lend_out[MEM] > 0
        assert caches[0].lend_in[MEM] == caches[1].lend_out[MEM]
        assert fleet.lending.history
        when, grants = fleet.lending.history[-1]
        assert sum(grants.values()) == 0  # signed grants conserve
        assert check_fleet(fleet) == []
        fleet.close()

    def test_no_borrowers_collapses_all_grants(self):
        fleet = Fleet(hosts=2)
        caches = fleet.install_doubledecker(DDConfig(mem_capacity_mb=1.0))
        caches[0].set_lending(MEM, lend_in=4)
        caches[1].set_lending(MEM, lend_out=4)
        coordinator = LendingCoordinator(fleet)
        coordinator.rebalance(0.0)
        for cache in caches:
            assert cache.lend_in[MEM] == 0
            assert cache.lend_out[MEM] == 0
        assert coordinator.history == []
        assert check_fleet(fleet) == []

    def test_check_fleet_flags_unbalanced_grants(self):
        fleet = Fleet(hosts=2)
        caches = fleet.install_doubledecker(DDConfig(mem_capacity_mb=1.0))
        caches[0].set_lending(MEM, lend_in=4)
        violations = check_fleet(fleet)
        assert any("not conserved" in v for v in violations)
        with pytest.raises(InvariantViolation):
            assert_fleet_clean(fleet, where="unbalanced")


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestFleetTracing:
    def test_traced_fleet_run_replays_cleanly(self, no_tracer):
        tracer = Tracer(max_events=500_000)
        set_tracer(tracer)
        try:
            fleet, caches, workloads = build_fleet(hosts=2, pressured=(0,))
            fleet.enable_lending(interval_s=5.0)
            fleet.run(until=20.0)
            fleet.migrate_vm("vm0", 0, 1,
                             on_depart=lambda vm, node: workloads[0].stop())
            fleet.run(until=25.0)
            fleet.close()
        finally:
            set_tracer(None)
        assert tracer.dropped == 0
        meta, events = parse_jsonl(to_jsonl(tracer))
        # The run truncates mid-operation at until=25, so in-flight spans
        # are expected; the provenance replay must still reconcile.
        assert validate_trace(meta, events, allow_open_spans=True) == []
        names = {event["name"] for event in events}
        assert "lend.apply" in names
        assert "migrate.cross_host" in names
        totals = {}
        for pools in tracer.ledger.values():
            for counters in pools.values():
                for field, value in counters.items():
                    totals[field] = totals.get(field, 0) + value
        assert totals["migrated_out"] > 0
        assert totals["migrated_out"] == (
            totals["migrated_in"] + totals["migrated_rejected"]
        )

    def test_scoped_latency_histograms(self, no_tracer):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            fleet, _, _ = build_fleet(hosts=2, pressured=(0, 1))
            fleet.run(until=10.0)
            fleet.close()
        finally:
            set_tracer(None)
        rows = {row[0] for row in tracer.latency_rows(per_pool=False)}
        assert "obs.lat.get" in rows
        assert "obs.lat.host0.get" in rows
        assert "obs.lat.host1.get" in rows

    def test_metrics_export_labels_every_host(self, no_tracer):
        from repro.metrics import check_exposition

        fleet, _, _ = build_fleet(hosts=2, pressured=(0, 1))
        for node in fleet.nodes:  # sampling is opt-in: it adds events
            node.host.sampler.start()
        fleet.run(until=12.0)  # past the sampler interval: gauges exist
        fleet.close()
        text = fleet.export_metrics_text()
        assert check_exposition(text) == []
        assert 'host="host0"' in text
        assert 'host="host1"' in text
        # Same-name families from different hosts merge into one family:
        # each metric name appears in exactly one # TYPE line.
        type_lines = [line for line in text.splitlines()
                      if line.startswith("# TYPE")]
        names = [line.split()[2] for line in type_lines]
        assert len(names) == len(set(names))


# ---------------------------------------------------------------------------
# Determinism and equivalence
# ---------------------------------------------------------------------------


def _fleet_fingerprint(jobs):
    fleet, caches, workloads = build_fleet(hosts=3, jobs=jobs, seed=42,
                                           pressured=(0, 2))
    fleet.enable_lending(interval_s=5.0)
    fleet.run(until=25.0)
    fleet.close()
    return repr(
        [(w.counters.ops, w.counters.bytes_read, w.counters.bytes_written)
         for w in workloads]
        + [(dict(c.used), dict(c.lend_in), dict(c.lend_out)) for c in caches]
    )


class TestDeterminism:
    def test_threaded_advance_matches_serial(self, no_tracer):
        assert _fleet_fingerprint(1) == _fleet_fingerprint(2)

    def test_same_seed_same_result(self, no_tracer):
        assert _fleet_fingerprint(1) == _fleet_fingerprint(1)


def _single_host_state(platform):
    """Drive the caching_modes DDMem wiring (scale 0.02) and fingerprint it.

    ``platform`` is ``"ctx"`` (plain SimContext) or ``"fleet"`` (1-host
    Fleet); everything else is identical, so the states must be too.
    """
    scale = 0.02
    if platform == "ctx":
        ctx = SimContext(seed=42)
        host = ctx.create_host(HostSpec())
        streams, run = ctx.streams, ctx.run
    else:
        fleet = Fleet(seed=42, hosts=1)
        host = fleet.nodes[0].host
        streams, run = fleet.nodes[0].streams, fleet.run
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=3072 * scale)
    )
    vm = host.create_vm("vm1", memory_mb=8192 * scale, vcpus=8)
    workloads = []
    for name, workload in (
        ("webserver", WebserverWorkload(
            "webserver", nfiles=230, mean_size_kb=128.0, threads=2,
            cpu_think_ms=3.0)),
        ("mail", VarmailWorkload("mail", nfiles=500, mean_size_kb=32.0,
                                 threads=2)),
    ):
        container = vm.create_container(name, 1024 * scale,
                                        CachePolicy.memory(25.0))
        workload.start(container, streams)
        workloads.append((workload, container))
    run(until=125.0)
    begin = [w.snapshot() for w, _ in workloads]
    run(until=300.0)
    state = []
    for (workload, container), snap in zip(workloads, begin):
        state.append((workload.name,
                      workload.snapshot().rates_since(snap),
                      repr(container.cache_stats())))
    state.append(repr(sorted((k.name, v) for k, v in cache.used.items())))
    state.append(repr(sorted((k.name, v) for k, v in cache.capacities.items())))
    return repr(state)


@pytest.mark.slow
class TestSingleHostEquivalence:
    def test_one_host_fleet_matches_simcontext(self, no_tracer):
        assert _single_host_state("ctx") == _single_host_state("fleet")
