"""Tests for the repro.obs observability subsystem.

Covers the tracer (spans, ring buffer, sampling, histograms), the JSONL
and Perfetto exporters, the trace validator, and — the load-bearing
property — lockstep reconciliation between the decision-provenance
ledger and the shadow-accounted pool counters on a real traced cache.
"""

import json

import pytest

from repro.cleancache import CleancacheClient
from repro.core import (
    CachePolicy,
    DDConfig,
    DoubleDeckerCache,
    assert_consistent,
)
from repro.obs import (
    LEDGER_FIELDS,
    Tracer,
    attach_latency_report,
    get_tracer,
    ledger_violations,
    parse_jsonl,
    set_tracer,
    to_jsonl,
    to_perfetto,
    validate_trace,
)
from repro.simkernel import Environment
from repro.storage import SSD

BLOCK = 64 * 1024


@pytest.fixture
def no_tracer():
    """Guarantee the process-wide tracer is clean before and after."""
    set_tracer(None)
    yield
    set_tracer(None)


def build_traced_cache(tracer, admission=None):
    """A small hybrid cache built while ``tracer`` is installed."""
    set_tracer(tracer)
    env = Environment()
    ssd = SSD(env, BLOCK)
    config = DDConfig(
        mem_capacity_mb=2.0, ssd_capacity_mb=4.0,
        eviction_batch_mb=0.25, trickle_down=True,
        admission=admission,
    )
    cache = DoubleDeckerCache(env, config, BLOCK, ssd_device=ssd)
    return env, cache


def drive(env, cache, n_inodes=3, blocks=40):
    """Puts (with immediate re-puts), gets, a migration, and flushes."""
    vm_id = cache.register_vm("vm0")
    client = CleancacheClient(env, cache, vm_id, BLOCK)
    p_mem = client.create_pool("mem", CachePolicy.memory(50.0))
    p_hyb = client.create_pool("hyb", CachePolicy.hybrid(25.0, 25.0))

    def worker(pool_id, salt):
        keys = [(salt + inode, block)
                for inode in range(n_inodes) for block in range(blocks)]
        for start in range(0, len(keys), 8):
            chunk = keys[start:start + 8]
            yield from client.put_many(pool_id, chunk)
            yield env.timeout(0.01)
            yield from client.put_many(pool_id, chunk[::2])
            yield env.timeout(0.01)
        # Flush before the (exclusive) gets so some blocks are still
        # resident to drop — the ledger's ``flushes`` must move.
        yield from client.flush_many(pool_id, keys[-10:])
        yield from client.flush_inode(pool_id, salt + n_inodes - 1)
        for start in range(0, len(keys), 8):
            yield from client.get_many(pool_id, keys[start:start + 8])
            yield env.timeout(0.005)

    def migrator():
        yield env.timeout(0.2)
        for inode in range(100, 100 + n_inodes):
            if client.migrate(p_mem, p_hyb, inode):
                return

    env.process(worker(p_mem, 100))
    env.process(worker(p_hyb, 200))
    env.process(migrator())
    env.run(until=60.0)
    return client, (p_mem, p_hyb)


class TestTracerBasics:
    def test_span_accounting(self):
        tracer = Tracer()
        tracer.span_begin()
        assert tracer.open_spans == 1
        tracer.span_end("x", 1.0, 2.5, vm=1, pool=2, detail="d")
        assert tracer.open_spans == 0
        [event] = list(tracer.events)
        assert event["ph"] == "X"
        assert event["ts"] == 1.0
        assert event["dur"] == 1.5
        assert event["args"] == {"detail": "d"}

    def test_ring_drop_counter(self):
        tracer = Tracer(max_events=4)
        for i in range(10):
            tracer.instant("e", float(i))
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert [e["ts"] for e in tracer.events] == [6.0, 7.0, 8.0, 9.0]

    def test_sampling_thins_spans_not_histograms(self):
        tracer = Tracer(sample=4)
        for i in range(16):
            tracer.span_begin()
            tracer.op_span("get", 1, 1, float(i), float(i) + 0.1)
        spans = [e for e in tracer.events if e["ph"] == "X"]
        assert len(spans) == 4  # every 4th recorded
        assert tracer.sampled_out == 12
        assert tracer.spans_finished == 16
        # Histograms still saw every op.
        assert tracer.histogram("obs.lat.get").count == 16

    def test_instants_never_sampled(self):
        tracer = Tracer(sample=10)
        for i in range(5):
            tracer.instant("evict.round", float(i))
        assert len(tracer.events) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)
        with pytest.raises(ValueError):
            Tracer(sample=0)

    def test_register_cache_labels_unique(self):
        tracer = Tracer()
        assert tracer.register_cache("ddecker") == "ddecker"
        assert tracer.register_cache("ddecker") == "ddecker#2"
        assert tracer.register_cache("ddecker") == "ddecker#3"
        assert tracer.register_cache("other") == "other"

    def test_set_get_tracer(self, no_tracer):
        assert get_tracer() is None
        tracer = Tracer()
        set_tracer(tracer)
        assert get_tracer() is tracer
        set_tracer(None)
        assert get_tracer() is None

    def test_ledger_update_accumulates(self):
        tracer = Tracer()
        tracer.ledger_update("c", 1, puts=5, puts_stored=3)
        tracer.ledger_update("c", 1, puts=2, put_rejected_capacity=2)
        entry = tracer.ledger["c"][1]
        assert entry["puts"] == 7
        assert entry["puts_stored"] == 3
        assert entry["put_rejected_capacity"] == 2
        assert set(entry) == set(LEDGER_FIELDS)


class TestLockstepReconciliation:
    """The tentpole property: provenance ledger == audited pool stats."""

    def test_ledger_matches_pool_stats(self, no_tracer):
        tracer = Tracer()
        env, cache = build_traced_cache(tracer)
        drive(env, cache)
        assert_consistent(cache, where="test end")
        assert ledger_violations(tracer, cache) == []
        # The scenario must actually exercise the interesting paths.
        totals = {field: 0 for field in LEDGER_FIELDS}
        for pools in tracer.ledger.values():
            for counters in pools.values():
                for field, value in counters.items():
                    totals[field] += value
        assert totals["puts"] > 0
        assert totals["evictions"] > 0
        assert totals["ssd_writes"] > 0
        assert totals["flushes"] > 0
        assert totals["migrated_out"] > 0
        assert totals["migrated_out"] == totals["migrated_in"]

    def test_ledger_matches_under_admission_rejections(self, no_tracer):
        tracer = Tracer()
        env, cache = build_traced_cache(tracer, admission="second_access")
        drive(env, cache)
        assert ledger_violations(tracer, cache) == []
        totals = {field: 0 for field in LEDGER_FIELDS}
        for pools in tracer.ledger.values():
            for counters in pools.values():
                for field, value in counters.items():
                    totals[field] += value
        assert totals["trickle_rejected_admission"] > 0
        assert totals["puts"] == (
            totals["puts_stored"] + totals["put_rejected_policy"]
            + totals["put_rejected_capacity"] + totals["put_rejected_admission"]
            + totals["put_rejected_backpressure"]
        )

    def test_ledger_violation_detected(self, no_tracer):
        tracer = Tracer()
        env, cache = build_traced_cache(tracer)
        drive(env, cache)
        pool_id = next(iter(tracer.ledger[cache._obs_label]))
        tracer.ledger_update(cache._obs_label, pool_id, puts=1)
        violations = ledger_violations(tracer, cache)
        assert violations
        assert "puts" in violations[0]

    def test_untraced_cache_skipped(self, no_tracer):
        env = Environment()
        config = DDConfig(mem_capacity_mb=1.0, ssd_capacity_mb=0.0)
        cache = DoubleDeckerCache(env, config, BLOCK)
        assert cache._obs_label is None
        assert ledger_violations(Tracer(), cache) == []

    def test_tracing_does_not_perturb_simulation(self, no_tracer):
        def stats_fingerprint(traced):
            tracer = Tracer() if traced else None
            if traced:
                env, cache = build_traced_cache(tracer)
            else:
                set_tracer(None)
                env, cache = build_traced_cache(None)
            client, pools = drive(env, cache)
            set_tracer(None)
            rows = []
            for pool_id in pools:
                stats = client.get_stats(pool_id)
                rows.append(tuple(getattr(stats, f) for f in LEDGER_FIELDS))
            rows.append(env.now)
            return rows

        assert stats_fingerprint(False) == stats_fingerprint(True)


class TestExporters:
    def make_trace(self, no_op=False, **tracer_kwargs):
        tracer = Tracer(**tracer_kwargs)
        env, cache = build_traced_cache(tracer)
        if not no_op:
            drive(env, cache)
        set_tracer(None)
        return tracer

    def test_jsonl_round_trip_lossless(self, no_tracer):
        tracer = self.make_trace()
        text = to_jsonl(tracer)
        meta, events = parse_jsonl(text)
        assert events == list(tracer.events)
        assert meta["recorded"] == len(events)
        # Re-serializing the parsed records reproduces the event lines.
        again = "\n".join(
            [json.dumps({"type": "meta", "version": 1, **meta}, sort_keys=True)]
            + [json.dumps({"type": "event", **e}, sort_keys=True)
               for e in events]
        ) + "\n"
        assert again == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_jsonl('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            parse_jsonl("")  # no meta record

    def test_perfetto_structure(self, no_tracer):
        tracer = self.make_trace()
        doc = json.loads(to_perfetto(tracer))
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases and "i" in phases
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"
        names = [e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "process_name"]
        assert any("vm1" in name for name in names)

    def test_validate_clean_trace(self, no_tracer):
        tracer = self.make_trace()
        meta, events = parse_jsonl(to_jsonl(tracer))
        assert validate_trace(meta, events) == []

    def test_validate_flags_open_spans(self, no_tracer):
        tracer = self.make_trace(no_op=True)
        tracer.span_begin()  # never closed
        meta, events = parse_jsonl(to_jsonl(tracer))
        problems = validate_trace(meta, events)
        assert any("unclosed" in p for p in problems)
        assert validate_trace(meta, events, allow_open_spans=True) == []

    def test_validate_flags_bad_event(self):
        meta = {c: 0 for c in ("max_events", "sample", "recorded", "dropped",
                               "sampled_out", "spans_started",
                               "spans_finished", "open_spans")}
        meta["max_events"] = meta["sample"] = 1
        meta["recorded"] = 1
        bad = {"ph": "X", "name": "", "ts": -1, "vm": "x", "pool": None,
               "args": []}
        problems = validate_trace(meta, [bad])
        assert any("bad name" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("bad vm" in p for p in problems)
        assert any("args" in p for p in problems)

    def test_validate_flags_put_identity_violation(self):
        meta = {c: 0 for c in ("max_events", "sample", "recorded", "dropped",
                               "sampled_out", "spans_started",
                               "spans_finished", "open_spans")}
        meta["max_events"] = meta["sample"] = 1
        meta["ledger"] = {"c": {"1": dict.fromkeys(LEDGER_FIELDS, 0)}}
        meta["ledger"]["c"]["1"]["puts"] = 5
        meta["ledger"]["c"]["1"]["puts_stored"] = 3
        problems = validate_trace(meta, [])
        assert any("put ledger leaks" in p for p in problems)

    def test_replay_skipped_when_ring_dropped(self, no_tracer):
        # A tiny ring drops provenance events; the replay check must not
        # produce false positives, and the cumulative ledger still holds.
        tracer = self.make_trace(max_events=64)
        assert tracer.dropped > 0
        meta, events = parse_jsonl(to_jsonl(tracer))
        assert validate_trace(meta, events, allow_open_spans=True) == []

    def test_sampled_trace_still_validates(self, no_tracer):
        tracer = self.make_trace(sample=5)
        assert tracer.sampled_out > 0
        meta, events = parse_jsonl(to_jsonl(tracer))
        assert validate_trace(meta, events) == []


class TestReportingIntegration:
    def test_attach_latency_report(self, no_tracer):
        tracer = Tracer()
        env, cache = build_traced_cache(tracer)
        drive(env, cache)

        class FakeResult:
            def __init__(self):
                self.tables = {}

            def add_table(self, key, headers, rows):
                self.tables[key] = (headers, rows)

        result = FakeResult()
        attach_latency_report(result, tracer)
        headers, rows = result.tables["op latency (ms)"]
        assert headers == ["op", "count", "mean", "p50", "p90", "p99", "p999"]
        names = [row[0] for row in rows]
        assert "obs.lat.get" in names
        assert "obs.lat.put" in names
        assert not any(".vm" in name for name in names)  # per-op only

    def test_attach_latency_report_empty_noop(self):
        tracer = Tracer()

        class Exploding:
            def add_table(self, *a):  # pragma: no cover - must not run
                raise AssertionError("should not add an empty table")

        attach_latency_report(Exploding(), tracer)

    def test_histograms_bound_into_registry(self, no_tracer):
        from repro.metrics import MetricsRegistry

        tracer = Tracer()
        registry = MetricsRegistry()
        tracer.bind_registry(registry)
        tracer.observe_latency("get", 1, 1, 0.004)
        assert registry.histogram("obs.lat.get").count == 1
        # Histograms created before binding register too.
        late = MetricsRegistry()
        tracer.bind_registry(late)
        assert late.histogram("obs.lat.get").count == 1


class TestCli:
    def test_obs_cli_on_trace_file(self, tmp_path, no_tracer):
        from repro.obs.__main__ import main as obs_main

        tracer = Tracer()
        env, cache = build_traced_cache(tracer)
        drive(env, cache)
        set_tracer(None)
        trace_path = tmp_path / "t.jsonl"
        trace_path.write_text(to_jsonl(tracer))

        assert obs_main(["validate", str(trace_path)]) == 0
        assert obs_main(["summarize", str(trace_path)]) == 0
        assert obs_main(["top-victims", str(trace_path), "-n", "3"]) == 0
        assert obs_main(["latency-breakdown", str(trace_path)]) == 0
        out = tmp_path / "t.perfetto.json"
        assert obs_main(["export", str(trace_path), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["traceEvents"]

    def test_obs_cli_validate_catches_corruption(self, tmp_path, no_tracer):
        from repro.obs.__main__ import main as obs_main

        tracer = Tracer()
        env, cache = build_traced_cache(tracer)
        drive(env, cache)
        set_tracer(None)
        text = to_jsonl(tracer)
        meta, events = parse_jsonl(text)
        label = cache._obs_label
        pool = next(iter(meta["ledger"][label]))
        meta["ledger"][label][pool]["puts"] += 1  # break the identity
        lines = [json.dumps({"type": "meta", "version": 1, **meta})]
        lines += [json.dumps({"type": "event", **e}) for e in events]
        bad_path = tmp_path / "bad.jsonl"
        bad_path.write_text("\n".join(lines) + "\n")
        assert obs_main(["validate", str(bad_path)]) == 1

    def test_experiments_cli_rejects_bad_trace_flags(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        assert exp_main(["caching_modes", "--trace-ops", "0"]) == 2
        assert exp_main(["caching_modes", "--trace-sample", "0"]) == 2
        capsys.readouterr()

    def test_smoke_passes(self, no_tracer):
        from repro.obs.analyze import run_smoke

        assert run_smoke(seed=7, verbose=False) == 0
