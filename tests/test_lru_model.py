"""Model-based property test: the page cache's per-cgroup LRU must behave
exactly like a reference OrderedDict LRU under arbitrary op interleavings."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import PageCache

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "remove", "take"]),
        st.integers(min_value=0, max_value=40),  # block id
        st.integers(min_value=1, max_value=4),   # take count
    ),
    max_size=150,
)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_pagecache_lru_matches_reference(ops):
    cache = PageCache()
    model: "OrderedDict[int, None]" = OrderedDict()
    cg = 1

    for op, block, count in ops:
        key = (1, block)
        if op == "insert":
            if block not in model:
                cache.insert(key, cg)
                model[block] = None
        elif op == "lookup":
            entry = cache.lookup(key)
            if block in model:
                assert entry is not None
                model.move_to_end(block)
            else:
                assert entry is None
        elif op == "remove":
            removed = cache.remove(key)
            if block in model:
                assert removed is not None
                del model[block]
            else:
                assert removed is None
        else:  # take coldest
            clean, dirty = cache.take_coldest(cg, count)
            taken = [entry.block for entry in clean + dirty]
            expected = []
            for _ in range(min(count, len(model))):
                cold, _ = model.popitem(last=False)
                expected.append(cold)
            assert taken == expected

        # Invariants after every op.
        assert len(cache) == len(model)
        assert cache.cgroup_pages(cg) == len(model)
        coldest = cache.coldest(cg)
        if model:
            assert coldest is not None
            assert coldest.block == next(iter(model))
        else:
            assert coldest is None
