"""Tests for the declarative scenario builder."""

import pytest

from repro.core import CachePolicy
from repro.experiments.scenarios import (
    Scenario,
    ScenarioResult,
    WORKLOAD_TYPES,
    parse_policy,
)


class TestParsePolicy:
    def test_none(self):
        assert parse_policy(None).uses_cache is False
        assert parse_policy("none").uses_cache is False

    def test_mem_ssd(self):
        assert parse_policy("mem:60").mem_weight == 60
        assert parse_policy("ssd:100").ssd_weight == 100

    def test_hybrid(self):
        policy = parse_policy("hybrid:40:60")
        assert policy.mem_weight == 40
        assert policy.ssd_weight == 60
        assert policy.is_hybrid

    def test_passthrough(self):
        policy = CachePolicy.memory(5)
        assert parse_policy(policy) is policy

    def test_malformed(self):
        with pytest.raises(ValueError):
            parse_policy("mem")
        with pytest.raises(ValueError):
            parse_policy("quantum:50")
        with pytest.raises(ValueError):
            parse_policy("hybrid:40")


class TestDeclaration:
    def test_unknown_cache_kind(self):
        with pytest.raises(ValueError):
            Scenario().cache("magic")

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            Scenario().vm("v", 512).container(
                "v", "c", 128, workload=("quake", {})
            )

    def test_unknown_event_action(self):
        with pytest.raises(ValueError):
            Scenario().at(10, "explode")

    def test_no_vms_rejected(self):
        with pytest.raises(ValueError):
            Scenario().run()

    def test_container_references_unknown_vm(self):
        scenario = Scenario().vm("v", 512).container("ghost", "c", 128)
        with pytest.raises(ValueError):
            scenario.run(warmup_s=1, duration_s=1)

    def test_registry_covers_all_profiles(self):
        assert {"webserver", "webproxy", "varmail", "videoserver",
                "fileserver", "oltp", "redis", "mysql",
                "mongodb"} <= set(WORKLOAD_TYPES)


class TestExecution:
    def test_basic_scenario_runs(self):
        scenario = (
            Scenario(seed=3)
            .cache("doubledecker", mem_mb=128)
            .vm("vm1", memory_mb=1024)
            .container("vm1", "web", 128, policy="mem:60",
                       workload=("webserver", {"nfiles": 400, "threads": 1}))
            .container("vm1", "mail", 128, policy="mem:40",
                       workload=("varmail", {"nfiles": 400, "threads": 1}))
        )
        result = scenario.run(warmup_s=20, duration_s=40)
        assert isinstance(result, ScenarioResult)
        assert result.rates["web"]["ops_per_s"] > 0
        assert result.rates["mail"]["ops_per_s"] > 0
        assert "web" in result.series
        text = result.table()
        assert "web" in text and "mail" in text

    def test_global_cache_scenario(self):
        scenario = (
            Scenario(seed=3)
            .cache("global", capacity_mb=64)
            .vm("vm1", memory_mb=512)
            .container("vm1", "web", 64,
                       workload=("webserver", {"nfiles": 300, "threads": 1}))
        )
        result = scenario.run(warmup_s=10, duration_s=20)
        assert result.rates["web"]["ops_per_s"] > 0

    def test_null_cache_scenario(self):
        scenario = (
            Scenario(seed=3)
            .cache("none")
            .vm("vm1", memory_mb=512)
            .container("vm1", "web", 64,
                       workload=("webserver", {"nfiles": 300, "threads": 1}))
        )
        result = scenario.run(warmup_s=10, duration_s=20)
        assert result.cache_stats["web"] is None or \
            result.cache_stats["web"].get_hits == 0

    def test_delayed_container_start(self):
        scenario = (
            Scenario(seed=5)
            .cache("doubledecker", mem_mb=64)
            .vm("vm1", memory_mb=512)
            .container("vm1", "late", 64, policy="mem:100",
                       workload=("webserver", {"nfiles": 200, "threads": 1}),
                       start_at=30.0)
        )
        result = scenario.run(warmup_s=40, duration_s=20)
        assert result.rates["late"]["ops_per_s"] > 0

    def test_set_policy_event_applies(self):
        scenario = (
            Scenario(seed=5)
            .cache("doubledecker", mem_mb=64, ssd_mb=1024)
            .vm("vm1", memory_mb=512)
            .container("vm1", "web", 64, policy="mem:100",
                       workload=("webserver", {"nfiles": 300, "threads": 1}))
            .at(15, "set_policy", container="web", policy="ssd:100")
        )
        result = scenario.run(warmup_s=20, duration_s=20)
        stats = result.cache_stats["web"]
        assert stats.ssd_entitlement_blocks > 0
        assert stats.mem_entitlement_blocks == 0

    def test_set_vm_weight_and_capacity_events(self):
        scenario = (
            Scenario(seed=5)
            .cache("doubledecker", mem_mb=64)
            .vm("vm1", memory_mb=512, weight=100)
            .container("vm1", "web", 64, policy="mem:100",
                       workload=("webserver", {"nfiles": 300, "threads": 1}))
            .at(10, "set_vm_weight", vm="vm1", weight=50)
            .at(12, "set_capacity", store="mem", mb=128)
        )
        result = scenario.run(warmup_s=15, duration_s=15)
        stats = result.cache_stats["web"]
        # New capacity (128 MB) fully entitled to the only VM/pool.
        assert stats.mem_entitlement_blocks == (128 << 20) // (64 << 10)

    def test_custom_callable_event(self):
        seen = {}

        def probe(runtime):
            seen["containers"] = sorted(runtime["containers"])

        scenario = (
            Scenario(seed=5)
            .cache("doubledecker", mem_mb=64)
            .vm("vm1", memory_mb=512)
            .container("vm1", "c", 64, policy="mem:100")
            .at(5, probe)
        )
        scenario.run(warmup_s=8, duration_s=8)
        assert seen["containers"] == ["c"]

    def test_determinism(self):
        def build():
            return (
                Scenario(seed=9)
                .cache("doubledecker", mem_mb=64)
                .vm("vm1", memory_mb=512)
                .container("vm1", "web", 64, policy="mem:100",
                           workload=("webserver",
                                     {"nfiles": 300, "threads": 1}))
            )

        r1 = build().run(warmup_s=10, duration_s=30)
        r2 = build().run(warmup_s=10, duration_s=30)
        assert r1.rates["web"]["ops_per_s"] == r2.rates["web"]["ops_per_s"]


class TestStaticPartitions:
    def test_partition_mb_caps_static_cache(self):
        scenario = (
            Scenario(seed=3)
            .cache("static", capacity_mb=64)
            .vm("vm1", memory_mb=512)
            .container("vm1", "web", 64, partition_mb=16,
                       workload=("webserver", {"nfiles": 600, "threads": 1}))
        )
        result = scenario.run(warmup_s=15, duration_s=20)
        stats = result.cache_stats["web"]
        assert stats.puts_stored > 0
        assert stats.mem_used_blocks <= (16 << 20) // (64 << 10)

    def test_partition_ignored_on_other_caches(self):
        scenario = (
            Scenario(seed=3)
            .cache("doubledecker", mem_mb=64)
            .vm("vm1", memory_mb=512)
            .container("vm1", "web", 64, policy="mem:100", partition_mb=16,
                       workload=("webserver", {"nfiles": 300, "threads": 1}))
        )
        result = scenario.run(warmup_s=10, duration_s=15)
        assert result.rates["web"]["ops_per_s"] > 0


class TestFromDict:
    def test_full_spec_roundtrip(self):
        spec = {
            "seed": 7,
            "cache": {"kind": "doubledecker", "mem_mb": 64, "ssd_mb": 512},
            "vms": [
                {"name": "vm1", "memory_mb": 512, "weight": 100,
                 "containers": [
                     {"name": "web", "limit_mb": 64, "policy": "mem:100",
                      "workload": {"type": "webserver", "nfiles": 300,
                                   "threads": 1}},
                 ]},
            ],
            "events": [
                {"at": 10, "action": "set_policy", "container": "web",
                 "policy": "ssd:100"},
            ],
        }
        result = Scenario.from_dict(spec).run(warmup_s=15, duration_s=15)
        assert result.rates["web"]["ops_per_s"] > 0
        stats = result.cache_stats["web"]
        assert stats.ssd_entitlement_blocks > 0

    def test_json_compatibility(self):
        import json

        spec = json.loads(json.dumps({
            "cache": {"kind": "none"},
            "vms": [{"name": "v", "memory_mb": 256,
                     "containers": [{"name": "c", "limit_mb": 64}]}],
        }))
        result = Scenario.from_dict(spec).run(warmup_s=2, duration_s=2)
        assert "c" in result.cache_stats

    def test_defaults(self):
        scenario = Scenario.from_dict({"vms": [{"name": "v", "memory_mb": 256}]})
        assert scenario.seed == 42
