"""Tests for the post-run analysis helpers."""

import json

import pytest

from repro.analysis import (
    ShapeExpectation,
    compare_scalars,
    result_to_json,
    series_to_json,
    shape_check,
    speedup_table,
)
from repro.experiments.runner import ExperimentResult
from repro.metrics import TimeSeries


class TestSpeedupTable:
    def test_basic(self):
        table = speedup_table(
            {"web": 10.0, "mail": 2.0},
            {"DD": {"web": 60.0, "mail": 2.2}},
        )
        assert "6.00" in table
        assert "1.10" in table

    def test_zero_baseline_is_inf(self):
        table = speedup_table({"x": 0.0}, {"v": {"x": 5.0}})
        assert "inf" in table

    def test_missing_variant_value(self):
        table = speedup_table({"x": 2.0}, {"v": {}})
        assert "0.00" in table


class TestJsonExport:
    def test_series_roundtrip(self):
        ts = TimeSeries("a")
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        payload = json.loads(series_to_json({"a": ts}))
        assert payload["a"]["times"] == [0, 10]
        assert payload["a"]["values"] == [1.0, 2.0]

    def test_result_roundtrip(self):
        result = ExperimentResult("exp", "desc")
        result.add_table("t", ["h1"], [[1.5]])
        result.scalars["s"] = 3.0
        result.note("a note")
        ts = TimeSeries()
        ts.record(0, 9.0)
        result.add_series("g/x", ts)
        payload = json.loads(result_to_json(result))
        assert payload["name"] == "exp"
        assert payload["scalars"] == {"s": 3.0}
        assert payload["tables"]["t"]["rows"] == [[1.5]]
        assert payload["series"]["g/x"]["values"] == [9.0]
        assert payload["notes"] == ["a note"]


class TestCompareScalars:
    def test_within_tolerance(self):
        diff = compare_scalars({"a": 100.0}, {"a": 103.0}, rel_tol=0.05)
        assert diff["a"]["within_tol"] is True
        assert diff["a"]["ratio"] == pytest.approx(1.03)

    def test_outside_tolerance(self):
        diff = compare_scalars({"a": 100.0}, {"a": 120.0}, rel_tol=0.05)
        assert diff["a"]["within_tol"] is False

    def test_missing_keys(self):
        diff = compare_scalars({"a": 1.0}, {"b": 2.0})
        assert diff["a"]["b"] is None
        assert diff["a"]["within_tol"] is False
        assert diff["b"]["a"] is None


class TestShapeExpectation:
    def test_all_pass(self):
        exp = (ShapeExpectation()
               .greater("speedup", 3.0)
               .less("loss", 1.0)
               .equals("evictions", 0.0)
               .ratio_above("dd", "morai", 5.0))
        scalars = {"speedup": 6.0, "loss": 0.5, "evictions": 0.0,
                   "dd": 100.0, "morai": 10.0}
        assert exp.check(scalars) == []

    def test_failures_reported(self):
        exp = ShapeExpectation().greater("x", 10.0).less("y", 1.0)
        failures = exp.check({"x": 5.0, "y": 2.0})
        assert len(failures) == 2
        assert any("x" in f for f in failures)

    def test_missing_key_reported(self):
        failures = ShapeExpectation().greater("ghost", 1.0).check({})
        assert failures == ["ghost: missing"]

    def test_ratio_with_zero_denominator(self):
        failures = (ShapeExpectation()
                    .ratio_above("a", "b", 2.0)
                    .check({"a": 1.0, "b": 0.0}))
        assert len(failures) == 1

    def test_shape_check_raises(self):
        result = ExperimentResult("exp")
        result.scalars["v"] = 1.0
        with pytest.raises(AssertionError, match="shape check failed"):
            shape_check(result, ShapeExpectation().greater("v", 2.0))
        shape_check(result, ShapeExpectation().greater("v", 0.5))  # passes
