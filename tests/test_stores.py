"""Tests for cache store backends (memory costs, SSD async writes)."""


from repro.core.stores import MemBackend, SSDBackend, contiguous_runs
from repro.simkernel import Environment
from repro.storage import SSD, SSDSpec

BLK = 64 * 1024


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs([]) == []

    def test_single(self):
        assert contiguous_runs([(1, 5)]) == [(5, 1)]

    def test_merges_adjacent(self):
        keys = [(1, 0), (1, 1), (1, 2), (1, 5), (1, 6)]
        assert contiguous_runs(keys) == [(0, 3), (5, 2)]

    def test_does_not_merge_across_files(self):
        keys = [(1, 0), (1, 1), (2, 2), (2, 3)]
        assert contiguous_runs(keys) == [(0, 2), (2, 2)]

    def test_unsorted_input(self):
        keys = [(1, 2), (1, 0), (1, 1)]
        assert contiguous_runs(keys) == [(0, 3)]

    def test_adjacent_blocks_in_different_inodes_do_not_merge(self):
        # Block numbers continue across the inode boundary ((1,5) then
        # (2,6)), but runs must never span files.
        keys = [(1, 4), (1, 5), (2, 6), (2, 7)]
        assert contiguous_runs(keys) == [(4, 2), (6, 2)]

    def test_all_single_block_runs(self):
        keys = [(1, 0), (1, 2), (1, 4), (2, 0)]
        assert contiguous_runs(keys) == [(0, 1), (2, 1), (4, 1), (0, 1)]

    def test_same_block_number_restarting_per_inode(self):
        # Each inode restarts at block 0; identical (start, len) tuples
        # from different files stay separate runs.
        keys = [(1, 0), (1, 1), (2, 0), (2, 1), (3, 0)]
        assert contiguous_runs(keys) == [(0, 2), (0, 2), (0, 1)]


class TestMemBackend:
    def test_costs_scale_with_blocks(self):
        backend = MemBackend(BLK)
        assert backend.read_cost(2) > backend.read_cost(1)
        assert backend.read_cost(0) == 0.0
        assert backend.write_cost(0) == 0.0


class TestSSDBackend:
    def make(self, buffer_mb=1.0):
        env = Environment()
        device = SSD(env, BLK, spec=SSDSpec())
        backend = SSDBackend(env, device, write_buffer_mb=buffer_mb)
        return env, device, backend

    def test_enqueue_within_buffer(self):
        env, device, backend = self.make(buffer_mb=1.0)  # 16 blocks
        assert backend.enqueue_write(8)
        assert backend.pending_blocks == 8

    def test_enqueue_overflow_rejected(self):
        env, device, backend = self.make(buffer_mb=1.0)
        assert backend.enqueue_write(16)
        assert not backend.enqueue_write(1)
        assert backend.writes_rejected == 1

    def test_writer_drains_buffer(self):
        env, device, backend = self.make(buffer_mb=1.0)
        backend.enqueue_write(16)
        env.run(until=1.0)
        assert backend.pending_blocks == 0
        assert device.stats.blocks_written == 16

    def test_buffer_reusable_after_drain(self):
        env, device, backend = self.make(buffer_mb=1.0)
        backend.enqueue_write(16)
        env.run(until=1.0)
        assert backend.enqueue_write(16)

    def test_read_runs_cost_time(self):
        env, device, backend = self.make()

        def proc(env):
            yield from backend.read_runs([(0, 4), (100, 4)])

        env.run(until=env.process(proc(env)))
        assert env.now > 0
        assert device.stats.blocks_read == 8

    def test_zero_enqueue_is_trivially_true(self):
        env, device, backend = self.make()
        assert backend.enqueue_write(0)

    def test_rejection_leaves_counters_balanced(self):
        # A rejected enqueue must not disturb the buffer ledger:
        # writes_enqueued == blocks_written + pending_blocks throughout.
        env, device, backend = self.make(buffer_mb=1.0)
        assert backend.enqueue_write(10)
        assert not backend.enqueue_write(7)
        assert backend.writes_enqueued == 10
        assert backend.writes_rejected == 7
        assert backend.blocks_written + backend.pending_blocks == 10

    def test_blocks_written_tracks_drained_blocks(self):
        env, device, backend = self.make(buffer_mb=4.0)
        backend.enqueue_write(16)
        backend.enqueue_write(16)
        env.run(until=5.0)
        assert backend.blocks_written == 32
        assert backend.pending_blocks == 0
        assert backend.writes_enqueued == backend.blocks_written
        # The device-side byte counter agrees with the block counter.
        assert device.stats.bytes_written == 32 * BLK
