"""Targeted tests for smaller code paths not covered elsewhere."""


from repro.experiments.runner import Experiment, ExperimentResult
from repro.metrics import MetricsRegistry, Sampler
from repro.policies.mrc import ReuseDistanceTracker, _Fenwick
from repro.simkernel import Environment


class TestCLIAllBranch:
    def test_all_runs_every_registered_experiment(self, monkeypatch, tmp_path,
                                                  capsys):
        import repro.experiments.__main__ as cli

        calls = []

        class FakeExperiment(Experiment):
            exp_id = "FAKE-1"
            name = "fake"
            description = "a fake experiment"

            def run(self):
                calls.append((self.scale, self.seed))
                result = ExperimentResult(self.name, self.description)
                result.add_table("t", ["a"], [[1]])
                return result

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS",
                            {"fake": FakeExperiment, "fake2": FakeExperiment})
        code = cli.main(["all", "--scale", "0.5", "--seed", "9",
                         "--out", str(tmp_path), "--no-plots"])
        assert code == 0
        assert calls == [(0.5, 9), (0.5, 9)]
        assert (tmp_path / "fake.txt").exists()
        assert (tmp_path / "fake2.txt").exists()


class TestSamplerDirect:
    def test_sample_once_records_now(self):
        env = Environment()
        registry = MetricsRegistry()
        sampler = Sampler(env, registry, interval=10)
        sampler.add("g", lambda: 42.0)
        sampler.sample_once()
        assert registry.series("g").last == 42.0


class TestFenwick:
    def test_prefix_sums(self):
        tree = _Fenwick(8)
        tree.add(0, 5)
        tree.add(3, 2)
        tree.add(7, 1)
        assert tree.prefix_sum(0) == 5
        assert tree.prefix_sum(2) == 5
        assert tree.prefix_sum(3) == 7
        assert tree.prefix_sum(7) == 8

    def test_grow_preserves_values(self):
        tree = _Fenwick(4)
        tree.add(1, 3)
        tree.add(3, 4)
        tree.grow(16)
        assert tree.n == 16
        assert tree.prefix_sum(1) == 3
        assert tree.prefix_sum(3) == 7
        tree.add(10, 1)
        assert tree.prefix_sum(15) == 8

    def test_grow_noop_when_smaller(self):
        tree = _Fenwick(8)
        tree.add(2, 1)
        tree.grow(4)
        assert tree.n == 8
        assert tree.prefix_sum(7) == 1


class TestReuseTrackerBounds:
    def test_max_tracked_prunes_old_keys(self):
        tracker = ReuseDistanceTracker(max_tracked=100)
        for key in range(250):
            tracker.access(key)
        assert len(tracker._last_pos) <= 130  # pruned to roughly half

    def test_pruned_key_counts_as_cold_again(self):
        tracker = ReuseDistanceTracker(max_tracked=10)
        tracker.access("victim")
        for key in range(30):
            tracker.access(key)
        cold_before = tracker.cold_misses
        tracker.access("victim")  # may have been pruned
        assert tracker.cold_misses >= cold_before


class TestExperimentScaleHelpers:
    def test_secs_floor(self):
        class Tiny(Experiment):
            def run(self):  # pragma: no cover
                return ExperimentResult("t")

        exp = Tiny(scale=0.01)
        assert exp.secs(100) == 25.0
        exp_full = Tiny(scale=2.0)
        assert exp_full.secs(100) == 100.0  # capped at 1.0x
        assert exp_full.mb(10) == 20
        assert exp_full.count(3) == 6


class TestCLIJsonExport:
    def test_json_flag_writes_json(self, monkeypatch, tmp_path, capsys):
        import json

        import repro.experiments.__main__ as cli

        class FakeExperiment(Experiment):
            exp_id = "FAKE-2"
            name = "fakejson"
            description = "fake"

            def run(self):
                result = ExperimentResult(self.name)
                result.scalars["v"] = 1.5
                return result

        monkeypatch.setattr(cli, "ALL_EXPERIMENTS", {"fakejson": FakeExperiment})
        code = cli.main(["fakejson", "--out", str(tmp_path), "--json",
                         "--no-plots"])
        assert code == 0
        payload = json.loads((tmp_path / "fakejson.json").read_text())
        assert payload["scalars"] == {"v": 1.5}


class TestPaperHardwareDefaults:
    def test_hostspec_matches_testbed(self):
        """Defaults mirror the paper's server (32 GB RAM, 16 CPUs)."""
        from repro.hypervisor import HostSpec

        spec = HostSpec()
        assert spec.memory_mb == 32768.0
        assert spec.cpus == 16
        assert spec.block_bytes == 64 * 1024

    def test_ssd_spec_matches_v300_class(self):
        from repro.storage import SSDSpec

        spec = SSDSpec()
        # SATA-3 class: reads well under a millisecond, bandwidth-capped.
        assert spec.read_time(4096) < 1e-3
        assert 200 <= spec.write_bandwidth_mbps <= 550

    def test_latency_ladder(self):
        """mem << hypercall+mem << SSD << HDD-random — the ordering every
        experiment result rests on."""
        from repro.cleancache import HypercallCosts
        from repro.storage import HDDSpec, MemSpec, SSDSpec

        blk = 64 * 1024
        mem = MemSpec().copy_time(blk)
        hypercall = HypercallCosts().data_cost(1, blk) + mem
        ssd = SSDSpec().read_time(blk)
        hdd = HDDSpec().access_time(blk, sequential=False)
        assert mem < hypercall < ssd < hdd
        assert hdd / ssd > 10
        assert ssd / hypercall > 5
