"""DiskStore: semantics, crash-state recovery, kill-and-restart safety."""

import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
import unittest

from repro.service import DiskStore, ServiceCache

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class DiskStoreBasicsTests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.store = DiskStore(self._tmp.name, sync_writes=False)
        self.addCleanup(self._tmp.cleanup)
        self.addCleanup(self.store.close)

    def test_set_get_round_trip(self):
        entry_id = self.store.set("t0", "alpha", b"hello", flags=7)
        value, flags, got_id = self.store.get("t0", "alpha")
        self.assertEqual(value, b"hello")
        self.assertEqual(flags, 7)
        self.assertEqual(got_id, entry_id)

    def test_tenants_are_disjoint_namespaces(self):
        self.store.set("t0", "k", b"zero")
        self.store.set("t1", "k", b"one")
        self.assertEqual(self.store.get("t0", "k")[0], b"zero")
        self.assertEqual(self.store.get("t1", "k")[0], b"one")
        self.store.delete("t0", "k")
        self.assertIsNone(self.store.get("t0", "k"))
        self.assertEqual(self.store.get("t1", "k")[0], b"one")

    def test_replace_allocates_new_id_and_drops_old_blob(self):
        first = self.store.set("t0", "k", b"v1")
        second = self.store.set("t0", "k", b"v2-longer")
        self.assertGreater(second, first)
        self.assertEqual(self.store.get("t0", "k")[0], b"v2-longer")
        self.assertFalse(
            os.path.exists(self.store._blob_path(first)))
        self.assertEqual(self.store.count(), 1)

    def test_delete_missing_returns_none(self):
        self.assertIsNone(self.store.delete("t0", "ghost"))

    def test_flush_scopes_to_tenant(self):
        self.store.set("t0", "a", b"x")
        self.store.set("t0", "b", b"x")
        self.store.set("t1", "a", b"x")
        dropped = self.store.flush("t0")
        self.assertEqual(len(dropped), 2)
        self.assertIsNone(self.store.get("t0", "a"))
        self.assertIsNotNone(self.store.get("t1", "a"))
        self.store.flush()
        self.assertEqual(self.store.count(), 0)

    def test_iter_entries_in_fifo_id_order(self):
        for i in range(5):
            self.store.set("t0", f"k{i}", b"x" * (i + 1))
        ids = [entry.entry_id for entry in self.store.iter_entries()]
        self.assertEqual(ids, sorted(ids))
        sizes = [entry.size for entry in self.store.iter_entries()]
        self.assertEqual(sizes, [1, 2, 3, 4, 5])

    def test_tenant_bytes_accounting(self):
        self.store.set("t0", "a", b"x" * 10)
        self.store.set("t0", "b", b"x" * 30)
        self.store.set("t1", "a", b"x" * 5)
        self.assertEqual(self.store.tenant_bytes(), {"t0": 40, "t1": 5})


class CrashStateRecoveryTests(unittest.TestCase):
    """Each crash point the write protocol can leave behind is swept."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def test_half_written_row_is_swept_with_its_blob(self):
        store = DiskStore(self._tmp.name, sync_writes=False)
        store.set("t0", "good", b"ok")
        # Simulate a crash between step 1 (row committed, ready=0) and
        # step 3: insert the row by hand and leave a partial blob.
        cur = store._db.execute(
            "INSERT INTO entries (tenant, key, flags, size, ready) "
            "VALUES ('t0', 'torn', 0, 9, 0)")
        torn_id = cur.lastrowid
        with open(store._blob_path(torn_id), "wb") as blob:
            blob.write(b"part")
        store.close()

        reopened = DiskStore(self._tmp.name, sync_writes=False)
        self.addCleanup(reopened.close)
        self.assertEqual(reopened.recovered_rows, 1)
        self.assertIsNone(reopened.get("t0", "torn"))
        self.assertFalse(os.path.exists(reopened._blob_path(torn_id)))
        self.assertEqual(reopened.get("t0", "good")[0], b"ok")

    def test_orphan_blob_is_swept(self):
        store = DiskStore(self._tmp.name, sync_writes=False)
        entry_id = store.set("t0", "k", b"v")
        # Simulate a crash between the delete commit and the unlink.
        store._db.execute("DELETE FROM entries WHERE id = ?", (entry_id,))
        store.close()
        self.assertTrue(os.path.exists(
            os.path.join(self._tmp.name, "data", f"{entry_id}.val")))

        reopened = DiskStore(self._tmp.name, sync_writes=False)
        self.addCleanup(reopened.close)
        self.assertEqual(reopened.recovered_orphans, 1)
        self.assertFalse(os.path.exists(
            os.path.join(self._tmp.name, "data", f"{entry_id}.val")))

    def test_foreign_files_in_data_dir_are_left_alone(self):
        store = DiskStore(self._tmp.name, sync_writes=False)
        keep = os.path.join(self._tmp.name, "data", "README.txt")
        with open(keep, "w") as fh:
            fh.write("not a blob")
        store.close()
        reopened = DiskStore(self._tmp.name, sync_writes=False)
        self.addCleanup(reopened.close)
        self.assertTrue(os.path.exists(keep))
        self.assertEqual(reopened.recovered_orphans, 0)


_KILL_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.service import DiskStore
store = DiskStore({directory!r}, sync_writes=False)
print("ready", flush=True)
i = 0
while True:
    store.set("t%d" % (i % 2), "key%d" % i, b"v" * (64 + i % 512))
    i += 1
"""


class KillAndRestartTests(unittest.TestCase):
    """SIGKILL a writer mid-stream; the survivor state must be clean."""

    def test_store_survives_sigkill_mid_write_stream(self):
        with tempfile.TemporaryDirectory() as tmp:
            script = _KILL_WRITER.format(src=REPO_SRC, directory=tmp)
            proc = subprocess.Popen(
                [sys.executable, "-c", script],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            try:
                self.assertEqual(proc.stdout.readline().strip(), b"ready")
                time.sleep(0.5)  # let it write a few hundred entries
            finally:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)

            store = DiskStore(tmp, sync_writes=False)
            self.addCleanup(store.close)
            entries = list(store.iter_entries())
            self.assertGreater(len(entries), 10,
                               "writer died before doing real work")
            # No metadata corruption: every committed row has a blob of
            # exactly the recorded size, ids strictly increase, and the
            # recovery sweep left no pending rows behind.
            ids = [entry.entry_id for entry in entries]
            self.assertEqual(ids, sorted(set(ids)))
            for entry in entries:
                path = store._blob_path(entry.entry_id)
                self.assertTrue(os.path.exists(path), path)
                self.assertEqual(os.path.getsize(path), entry.size)
            pending = store._db.execute(
                "SELECT COUNT(*) FROM entries WHERE ready = 0").fetchone()
            self.assertEqual(pending[0], 0)
            # And a ServiceCache rebuilds a consistent picture on top.
            cache = ServiceCache(store, capacity_mb=64.0)
            self.assertEqual(
                cache.used_blocks,
                sum(pool.used[kind]
                    for pool in cache.tenants.values()
                    for kind in pool.used))
            self.assertEqual(len(entries), cache.stats()["_host"]["entries"])

    def test_recovery_is_idempotent(self):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            for i in range(10):
                store.set("t0", f"k{i}", b"v")
            store.close()
            for _ in range(3):
                reopened = DiskStore(tmp, sync_writes=False)
                self.assertEqual(reopened.count(), 10)
                self.assertEqual(reopened.recovered_rows, 0)
                self.assertEqual(reopened.recovered_orphans, 0)
                reopened.close()


class ServiceCacheRecoveryTests(unittest.TestCase):
    """The cache layer rebuilds FIFO order and accounting from disk."""

    def test_restart_preserves_fifo_eviction_order(self):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            # Capacity of 8 blocks, 1-block values.
            cache = ServiceCache(store, capacity_mb=8 * 4096 / (1 << 20),
                                 block_bytes=4096,
                                 eviction_batch_mb=4096 / (1 << 20))
            for i in range(8):
                cache.set("t0", f"k{i}", b"v")
            cache.close()

            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=8 * 4096 / (1 << 20),
                                 block_bytes=4096,
                                 eviction_batch_mb=4096 / (1 << 20))
            self.assertEqual(cache.used_blocks, 8)
            # The next insert must evict k0 — the oldest surviving entry
            # — proving the FIFO came back in pre-restart order.
            cache.set("t0", "fresh", b"v")
            self.assertIsNone(cache.get("t0", "k0"))
            self.assertIsNotNone(cache.get("t0", "k1"))
            self.assertIsNotNone(cache.get("t0", "fresh"))
            cache.close()


if __name__ == "__main__":
    unittest.main()
