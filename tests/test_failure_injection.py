"""Failure-injection and stress tests.

These exercise the unhappy paths: containers and VMs torn down while IO
is in flight, stores saturated or resized under load, workloads
interrupted mid-operation, write buffers overflowing.
"""


from repro import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.hypervisor import HostSpec
from repro.workloads import VarmailWorkload, WebserverWorkload


def build(mem_cache_mb=64, ssd_mb=0.0, seed=41):
    ctx = SimContext(seed=seed)
    host = ctx.create_host(HostSpec())
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=mem_cache_mb, ssd_capacity_mb=ssd_mb,
                 ssd_write_buffer_mb=1.0)
    )
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    return ctx, host, cache, vm


class TestTeardownUnderLoad:
    def test_container_destroyed_while_workload_runs(self):
        ctx, host, cache, vm = build()
        c = vm.create_container("doomed", 128, CachePolicy.memory(100))
        workload = WebserverWorkload(nfiles=500, threads=2)
        workload.start(c, ctx.streams)
        ctx.run(until=20)
        workload.stop()
        vm.destroy_container(c)
        # Everything the container held is released.
        assert cache.used[StoreKind.MEMORY] == 0
        assert vm.os.total_usage_blocks() == 0
        # The simulation continues cleanly afterwards.
        survivor = vm.create_container("next", 128, CachePolicy.memory(100))
        f = survivor.create_file(16)
        ctx.env.run(until=ctx.env.process(survivor.read(f)))
        assert survivor.cgroup.file_blocks == 16

    def test_vm_destroyed_releases_cache(self):
        ctx, host, cache, vm = build()
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        f = c.create_file(2048)
        ctx.env.run(until=ctx.env.process(c.read(f)))
        assert cache.used[StoreKind.MEMORY] > 0
        host.destroy_vm(vm)
        assert cache.used[StoreKind.MEMORY] == 0
        assert cache._mem_units_used == 0

    def test_two_workloads_one_stopped_other_unaffected(self):
        ctx, host, cache, vm = build(mem_cache_mb=128)
        c1 = vm.create_container("a", 128, CachePolicy.memory(50))
        c2 = vm.create_container("b", 128, CachePolicy.memory(50))
        w1 = WebserverWorkload(name="w1", nfiles=400, threads=1)
        w2 = WebserverWorkload(name="w2", nfiles=400, threads=1)
        w1.start(c1, ctx.streams)
        w2.start(c2, ctx.streams)
        ctx.run(until=15)
        w1.stop()
        before = w2.counters.ops
        ctx.run(until=30)
        assert w2.counters.ops > before


class TestStoreStress:
    def test_ssd_write_buffer_saturation_rejects_gracefully(self):
        """A 1 MB write buffer under a put storm must reject puts, not
        stall or corrupt accounting."""
        ctx, host, cache, vm = build(mem_cache_mb=0, ssd_mb=1024)
        c = vm.create_container("c", 64, CachePolicy.ssd(100))
        f = c.create_file(4096)  # 256 MB through a 64 MB container

        def reader():
            yield from c.read(f)
            return None

        ctx.env.run(until=ctx.env.process(reader()))
        counters = cache.store_counters[StoreKind.SSD]
        assert counters.rejected_puts > 0
        # Accounting stays sane: metadata only for blocks actually queued.
        pool = cache._pools[c.pool_id]
        assert pool.used[StoreKind.SSD] == cache.used[StoreKind.SSD]
        assert cache.used[StoreKind.SSD] <= cache.capacities[StoreKind.SSD]

    def test_capacity_shrink_to_zero_under_load(self):
        ctx, host, cache, vm = build(mem_cache_mb=64)
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        f = c.create_file(2048)
        ctx.env.run(until=ctx.env.process(c.read(f)))
        cache.set_capacity(StoreKind.MEMORY, 0.0)
        assert cache.used[StoreKind.MEMORY] == 0
        # Subsequent puts are rejected but gets still answer (miss).
        ctx.env.run(until=ctx.env.process(c.read(f, 0, 16)))
        assert cache.used[StoreKind.MEMORY] == 0

    def test_zero_capacity_cache_never_stores(self):
        ctx, host, cache, vm = build(mem_cache_mb=0)
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        f = c.create_file(2048)
        ctx.env.run(until=ctx.env.process(c.read(f)))
        assert cache.used[StoreKind.MEMORY] == 0
        stats = c.cache_stats()
        assert stats.puts_stored == 0

    def test_rapid_policy_flapping(self):
        """Policy flapping mid-traffic must never corrupt accounting."""
        ctx, host, cache, vm = build(mem_cache_mb=64, ssd_mb=512)
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        workload = WebserverWorkload(nfiles=600, threads=1)
        workload.start(c, ctx.streams)

        def flapper(env):
            policies = [CachePolicy.memory(100), CachePolicy.ssd(100),
                        CachePolicy.none(), CachePolicy.hybrid(50, 50)]
            for i in range(20):
                yield env.timeout(2)
                c.set_cache_policy(policies[i % len(policies)])

        ctx.env.process(flapper(ctx.env))
        ctx.run(until=60)
        pool = cache._pools[c.pool_id]
        assert pool.used[StoreKind.MEMORY] == cache.used[StoreKind.MEMORY]
        assert pool.used[StoreKind.SSD] == cache.used[StoreKind.SSD]
        assert cache._mem_units_used >= 0


class TestGuestStress:
    def test_fsync_storm_on_shared_disk(self):
        """Many fsync-heavy threads on one spindle: progress, no deadlock."""
        ctx, host, cache, vm = build()
        c = vm.create_container("mail", 256, CachePolicy.memory(100))
        workload = VarmailWorkload(nfiles=500, threads=8)
        workload.start(c, ctx.streams)
        ctx.run(until=30)
        assert workload.counters.ops > 8

    def test_swap_thrash_does_not_livelock(self):
        """Anon WSS 4x the limit: throughput collapses but ops complete."""
        ctx, host, cache, vm = build()
        c = vm.create_container("thrash", 32, CachePolicy.none())
        done = {"count": 0}

        def thrasher(env, rng):
            pages = list(range(2048))  # 128 MB vs 32 MB limit
            while True:
                page = rng.choice(pages)
                yield from c.touch_anon([page])
                done["count"] += 1

        ctx.env.process(thrasher(ctx.env, ctx.streams.stream("t")))
        ctx.run(until=60)
        assert done["count"] > 10
        assert c.cgroup.swap_out_blocks > 0
        assert c.cgroup.usage_blocks <= c.cgroup.limit_blocks

    def test_delete_file_with_dirty_pages_in_flight(self):
        ctx, host, cache, vm = build()
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        f = c.create_file(64)

        def driver():
            yield from c.write(f)          # dirty everything
            yield from c.delete(f)         # delete before writeback
            return None

        ctx.env.run(until=ctx.env.process(driver()))
        assert len(vm.os.pagecache.dirty) == 0
        assert vm.os.total_usage_blocks() == 0
        # The flusher must not crash on the vanished file.
        ctx.run(until=ctx.now + 60)

    def test_interrupted_workload_leaves_consistent_state(self):
        ctx, host, cache, vm = build()
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        workload = WebserverWorkload(nfiles=800, threads=4)
        workload.start(c, ctx.streams)
        ctx.run(until=7.3)  # mid-flight, deliberately awkward time
        workload.stop()
        ctx.run(until=ctx.now + 10)
        assert c.cgroup.file_blocks == vm.os.pagecache.cgroup_pages(
            c.cgroup.cgroup_id
        )
