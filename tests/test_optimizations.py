"""Tests for memory-store compression and deduplication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.core.optimizations import (
    CompressionModel,
    DedupIndex,
    content_fingerprint,
)
from repro.simkernel import Environment

BLK = 64 * 1024


def run_gen(env, gen):
    return env.run(until=env.process(gen))


class TestCompressionModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionModel(min_ratio=0.9, max_ratio=0.5)
        with pytest.raises(ValueError):
            CompressionModel(min_ratio=0.0)
        with pytest.raises(ValueError):
            CompressionModel(granularity=0)

    def test_ratio_deterministic_and_bounded(self):
        model = CompressionModel(min_ratio=0.3, max_ratio=0.8)
        for key in [(1, 0), (1, 1), (2, 5)]:
            ratio = model.ratio_for(key)
            assert ratio == model.ratio_for(key)
            assert 0.3 <= ratio <= 0.8

    def test_charged_units(self):
        model = CompressionModel(min_ratio=0.5, max_ratio=0.5, granularity=16)
        assert model.charged_units((1, 0)) == 8

    def test_cpu_costs(self):
        model = CompressionModel()
        assert model.compress_cost(10) > 0
        assert model.decompress_cost(10) > 0
        assert model.compress_cost(0) == 0.0


class TestDedupIndex:
    def test_unique_default_fingerprints(self):
        index = DedupIndex()
        assert index.insert("vm1", 1, 0) is True
        assert index.insert("vm1", 1, 1) is True
        assert index.unique_blocks == 2
        assert index.savings_blocks == 0

    def test_shared_content_refcounts(self):
        shared = lambda ns, inode, block: block  # all files share content
        index = DedupIndex(shared)
        assert index.insert("vm1", 1, 0) is True
        assert index.insert("vm1", 2, 0) is False  # duplicate
        assert index.unique_blocks == 1
        assert index.logical_blocks == 2
        assert index.savings_blocks == 1
        assert index.dedup_hits == 1

    def test_remove_releases_only_last_ref(self):
        shared = lambda ns, inode, block: block
        index = DedupIndex(shared)
        index.insert("vm1", 1, 0)
        index.insert("vm1", 2, 0)
        assert index.remove("vm1", 1, 0) is False  # still referenced
        assert index.remove("vm1", 2, 0) is True   # last reference
        assert index.unique_blocks == 0
        assert index.logical_blocks == 0

    def test_double_insert_same_key_ignored(self):
        index = DedupIndex()
        index.insert("vm1", 1, 0)
        assert index.insert("vm1", 1, 0) is False
        assert index.logical_blocks == 1

    def test_remove_unknown_is_noop(self):
        index = DedupIndex()
        assert index.remove("vm1", 9, 9) is False

    def test_holds(self):
        index = DedupIndex()
        index.insert("vm1", 1, 0)
        assert index.holds("vm1", 1, 0)
        assert not index.holds("vm1", 1, 1)

    def test_default_fingerprint_distinguishes_namespaces(self):
        a = content_fingerprint("vm1", 1, 0)
        b = content_fingerprint("vm2", 1, 0)
        assert a != b


class TestCompressedCache:
    def make(self, ratio=0.5):
        env = Environment()
        model = CompressionModel(min_ratio=ratio, max_ratio=ratio,
                                 granularity=16)
        cache = DoubleDeckerCache(
            env, DDConfig(mem_capacity_mb=1, compression=model), BLK
        )
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        return env, cache, vm, pool

    def test_compression_fits_more_blocks(self):
        """At ratio 0.5 a 16-block store must hold ~32 blocks."""
        env, cache, vm, pool = self.make(ratio=0.5)
        stored = run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(30)]))
        assert stored == 30
        assert cache.used[StoreKind.MEMORY] == 30  # logical blocks
        assert cache.mem_physical_mb <= 1.0        # physical within 1 MB

    def test_physical_capacity_still_enforced(self):
        env, cache, vm, pool = self.make(ratio=0.5)
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(100)]))
        assert cache._mem_units_used <= cache._mem_units_capacity

    def test_get_releases_units(self):
        env, cache, vm, pool = self.make(ratio=0.5)
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        units = cache._mem_units_used
        assert units > 0
        run_gen(env, cache.get_many(vm, pool, [(1, 0)]))
        assert cache._mem_units_used == 0

    def test_flush_releases_units(self):
        env, cache, vm, pool = self.make()
        run_gen(env, cache.put_many(vm, pool, [(1, 0), (1, 1)]))
        cache.flush_many(vm, pool, [(1, 0)])
        cache.flush_inode(vm, pool, 1)
        assert cache._mem_units_used == 0

    def test_destroy_pool_releases_units(self):
        env, cache, vm, pool = self.make()
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(8)]))
        cache.destroy_pool(vm, pool)
        assert cache._mem_units_used == 0

    def test_compression_costs_time(self):
        env, cache, vm, pool = self.make()
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(8)]))
        t_put = env.now
        assert t_put > 0
        run_gen(env, cache.get_many(vm, pool, [(1, i) for i in range(8)]))
        assert env.now > t_put


class TestDedupCache:
    def make(self, fingerprint=None):
        env = Environment()
        cache = DoubleDeckerCache(
            env,
            DDConfig(mem_capacity_mb=1, dedup=True,
                     dedup_fingerprint=fingerprint),
            BLK,
        )
        return env, cache

    def test_duplicate_content_shares_capacity(self):
        # Two containers cache byte-identical files (e.g., a base image).
        shared = lambda ns, inode, block: block
        env, cache = self.make(shared)
        vm = cache.register_vm("vm")
        p1 = cache.create_pool(vm, "a", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "b", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(10)]))
        run_gen(env, cache.put_many(vm, p2, [(2, i) for i in range(10)]))
        assert cache.used[StoreKind.MEMORY] == 20      # logical
        assert cache._mem_units_used == 10             # physical (shared)
        assert cache.dedup.savings_blocks == 10

    def test_dedup_allows_overcommit_beyond_block_capacity(self):
        shared = lambda ns, inode, block: block % 4  # only 4 contents exist
        env, cache = self.make(shared)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        stored = run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(64)]))
        assert stored == 64            # 64 logical blocks...
        assert cache._mem_units_used == 4  # ...but 4 physical

    def test_release_keeps_shared_content(self):
        shared = lambda ns, inode, block: block
        env, cache = self.make(shared)
        vm = cache.register_vm("vm")
        p1 = cache.create_pool(vm, "a", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "b", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, 0)]))
        run_gen(env, cache.put_many(vm, p2, [(2, 0)]))
        # p1's copy leaves; p2's logical copy still needs the content.
        run_gen(env, cache.get_many(vm, p1, [(1, 0)]))
        assert cache._mem_units_used == 1
        run_gen(env, cache.get_many(vm, p2, [(2, 0)]))
        assert cache._mem_units_used == 0


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get", "flush"]),
                  st.integers(min_value=1, max_value=3),   # inode
                  st.integers(min_value=0, max_value=30)), # block
        max_size=60,
    )
)
def test_units_accounting_never_negative_or_leaky(ops):
    """Random put/get/flush interleavings keep unit accounting exact."""
    env = Environment()
    model = CompressionModel(min_ratio=0.4, max_ratio=0.9)
    cache = DoubleDeckerCache(
        env, DDConfig(mem_capacity_mb=1, compression=model, dedup=True), BLK
    )
    vm = cache.register_vm("vm")
    pool = cache.create_pool(vm, "c", CachePolicy.memory(100))

    def driver():
        for op, inode, block in ops:
            if op == "put":
                yield from cache.put_many(vm, pool, [(inode, block)])
            elif op == "get":
                yield from cache.get_many(vm, pool, [(inode, block)])
            else:
                cache.flush_many(vm, pool, [(inode, block)])

    env.run(until=env.process(driver()))
    assert cache._mem_units_used >= 0
    assert cache._mem_units_used <= cache._mem_units_capacity
    # Drain everything: accounting must return exactly to zero.
    remaining = list(cache._pools[pool].iter_keys(StoreKind.MEMORY))
    env.run(until=env.process(cache.get_many(vm, pool, remaining)))
    assert cache._mem_units_used == 0
    assert cache.used[StoreKind.MEMORY] == 0
