"""Interface contract tests run against EVERY hypervisor-cache
implementation (DoubleDecker, Global, StaticPartition, Null).

Guests are written against :class:`HypervisorCacheBase`; these tests pin
the behaviours all implementations must share so a cache swap never
changes guest-visible semantics (only performance/placement).
"""

import pytest

from repro.core import (
    CachePolicy,
    DDConfig,
    DoubleDeckerCache,
    GlobalCache,
    NullCache,
    StaticPartitionCache,
)
from repro.simkernel import Environment

BLK = 64 * 1024


def make_cache(kind, env):
    if kind == "doubledecker":
        return DoubleDeckerCache(env, DDConfig(mem_capacity_mb=4), BLK)
    if kind == "global":
        return GlobalCache(env, 4.0, BLK)
    if kind == "static":
        cache = StaticPartitionCache(env, 4.0, BLK)
        return cache
    return NullCache()


def setup_pool(kind, cache):
    vm_id = cache.register_vm("vm", 100.0)
    pool_id = cache.create_pool(vm_id, "c", CachePolicy.memory(100))
    if kind == "static":
        cache.set_partition(pool_id, 4.0)
    return vm_id, pool_id


def run_gen(env, gen):
    return env.run(until=env.process(gen))


ALL_KINDS = ["doubledecker", "global", "static", "null"]
STORING_KINDS = ["doubledecker", "global", "static"]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestUniversalContract:
    def test_ids_are_positive_and_distinct(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm1 = cache.register_vm("a")
        vm2 = cache.register_vm("b")
        assert vm1 != vm2
        p1 = cache.create_pool(vm1, "c1", CachePolicy.memory(100))
        p2 = cache.create_pool(vm2, "c2", CachePolicy.memory(100))
        assert p1 != p2

    def test_get_on_empty_pool_misses(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        assert run_gen(env, cache.get_many(vm_id, pool_id, [(1, 0)])) == set()

    def test_empty_key_lists_are_noops(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        assert run_gen(env, cache.get_many(vm_id, pool_id, [])) == set()
        assert run_gen(env, cache.put_many(vm_id, pool_id, [])) == 0
        assert cache.flush_many(vm_id, pool_id, []) == 0

    def test_flush_of_absent_blocks_returns_zero(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        assert cache.flush_many(vm_id, pool_id, [(9, 9)]) == 0
        assert cache.flush_inode(vm_id, pool_id, 9) == 0

    def test_store_stats_shape(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        stats = cache.store_stats()
        assert stats
        for entry in stats.values():
            assert entry.used_blocks >= 0
            assert entry.evictions >= 0


@pytest.mark.parametrize("kind", STORING_KINDS)
class TestStoringContract:
    def test_exclusive_get_semantics(self, kind):
        """For exclusive caches, a hit removes the block."""
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        keys = [(1, 0), (1, 1), (1, 2)]
        stored = run_gen(env, cache.put_many(vm_id, pool_id, keys))
        assert stored == 3
        assert run_gen(env, cache.get_many(vm_id, pool_id, keys)) == set(keys)
        assert run_gen(env, cache.get_many(vm_id, pool_id, keys)) == set()

    def test_flush_prevents_stale_hits(self, kind):
        """The correctness-critical path: after a flush (guest dirtied the
        block) the cache must never return the stale copy."""
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, 0)]))
        assert cache.flush_many(vm_id, pool_id, [(1, 0)]) == 1
        assert run_gen(env, cache.get_many(vm_id, pool_id, [(1, 0)])) == set()

    def test_flush_inode_clears_file(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id,
                                    [(1, i) for i in range(4)] + [(2, 0)]))
        assert cache.flush_inode(vm_id, pool_id, 1) == 4
        found = run_gen(env, cache.get_many(vm_id, pool_id, [(2, 0)]))
        assert found == {(2, 0)}

    def test_destroy_pool_forgets_everything(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, i) for i in range(8)]))
        cache.destroy_pool(vm_id, pool_id)
        with pytest.raises(KeyError):
            cache.pool_stats(vm_id, pool_id)
        assert cache.vm_used_blocks(vm_id) == 0

    def test_duplicate_put_idempotent_capacity(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, 0)]))
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, 0)]))
        assert cache.vm_used_blocks(vm_id) == 1

    def test_stats_track_hits_and_misses(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, 0)]))
        run_gen(env, cache.get_many(vm_id, pool_id, [(1, 0), (1, 1)]))
        stats = cache.pool_stats(vm_id, pool_id)
        assert stats.gets == 2
        assert stats.get_hits == 1
        assert stats.puts_stored == 1

    def test_capacity_is_a_hard_bound(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id,
                                    [(1, i) for i in range(500)]))
        assert cache.vm_used_blocks(vm_id) <= 64  # 4 MB at 64 KiB

    def test_unregister_vm_cascades(self, kind):
        env = Environment()
        cache = make_cache(kind, env)
        vm_id, pool_id = setup_pool(kind, cache)
        run_gen(env, cache.put_many(vm_id, pool_id, [(1, 0)]))
        cache.unregister_vm(vm_id)
        with pytest.raises(KeyError):
            cache.pool_stats(vm_id, pool_id)
