"""Tests for metrics containers and reporting."""

import pytest

from repro.metrics import (
    Histogram,
    MetricsRegistry,
    Sampler,
    SummaryStat,
    TimeSeries,
    ascii_plot,
    format_series_csv,
    format_table,
)
from repro.simkernel import Environment


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("x")
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        assert list(ts) == [(0, 1.0), (10, 2.0)]
        assert len(ts) == 2
        assert ts.last == 2.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(10, 1.0)
        with pytest.raises(ValueError):
            ts.record(5, 2.0)

    def test_value_at(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        assert ts.value_at(-1) is None
        assert ts.value_at(0) == 1.0
        assert ts.value_at(5) == 1.0
        assert ts.value_at(100) == 2.0

    def test_mean_window(self):
        ts = TimeSeries()
        for t, v in [(0, 10), (10, 20), (20, 30)]:
            ts.record(t, v)
        assert ts.mean() == pytest.approx(20)
        assert ts.mean(start=5) == pytest.approx(25)
        assert ts.mean(start=5, end=15) == pytest.approx(20)
        assert ts.mean(start=100) == 0.0

    def test_max_window(self):
        ts = TimeSeries()
        for t, v in [(0, 10), (10, 50), (20, 30)]:
            ts.record(t, v)
        assert ts.max() == 50
        assert ts.max(start=15) == 30

    def test_resample(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        out = ts.resample(5, end=10)
        assert list(out) == [(0, 1.0), (5, 1.0), (10, 2.0)]
        with pytest.raises(ValueError):
            ts.resample(0)


class TestSummaryStat:
    def test_basic_stats(self):
        stat = SummaryStat()
        for v in (1.0, 2.0, 3.0):
            stat.add(v)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.min == 1.0
        assert stat.max == 3.0

    def test_empty_mean_zero(self):
        assert SummaryStat().mean == 0.0

    def test_percentiles_reasonable(self):
        stat = SummaryStat()
        for v in range(1000):
            stat.add(float(v))
        assert stat.percentile(50) == pytest.approx(500, abs=50)
        assert stat.percentile(0) <= stat.percentile(100)
        with pytest.raises(ValueError):
            stat.percentile(150)

    def test_reservoir_bounded(self):
        stat = SummaryStat(reservoir_size=100)
        for v in range(10_000):
            stat.add(float(v))
        assert len(stat._reservoir) == 100
        assert stat.count == 10_000

    def test_merge(self):
        a, b = SummaryStat(), SummaryStat()
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.max == 3.0


class TestRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.incr("a.b", 2)
        reg.incr("a.b")
        reg.incr("a.c", 5)
        assert reg.counter("a.b") == 3
        assert reg.counter("missing") == 0
        assert reg.counters("a.") == {"a.b": 3, "a.c": 5}

    def test_series_create_on_use(self):
        reg = MetricsRegistry()
        reg.record("s", 0, 1.0)
        reg.record("s", 1, 2.0)
        assert len(reg.series("s")) == 2
        assert "s" in reg.all_series()

    def test_summaries(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.5)
        assert reg.summary("lat").count == 1

    def test_names(self):
        reg = MetricsRegistry()
        reg.incr("c")
        reg.record("s", 0, 1)
        reg.observe("m", 1)
        kinds = {kind for kind, _ in reg.names()}
        assert kinds == {"counter", "series", "summary"}


class TestSampler:
    def test_periodic_sampling(self):
        env = Environment()
        reg = MetricsRegistry()
        sampler = Sampler(env, reg, interval=10)
        state = {"v": 0}
        sampler.add("gauge", lambda: state["v"])
        sampler.start()

        def mutate(env):
            yield env.timeout(15)
            state["v"] = 7

        env.process(mutate(env))
        env.run(until=35)
        series = reg.series("gauge")
        assert series.value_at(0) == 0
        assert series.value_at(30) == 7

    def test_interval_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Sampler(env, MetricsRegistry(), interval=0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.5], ["long-name", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("|") for line in lines)
        assert "long-name" in text
        assert "2.25" in text

    def test_format_table_title(self):
        text = format_table(["h"], [["x"]], title="T")
        assert text.startswith("T\n")

    def test_ascii_plot_renders(self):
        ts = TimeSeries("s")
        for t in range(10):
            ts.record(t * 10, t * 5.0)
        art = ascii_plot({"s": ts}, width=40, height=8, title="plot")
        assert "plot" in art
        assert "legend" in art

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_plot({})

    def test_series_csv(self):
        ts = TimeSeries("a")
        ts.record(0, 1.0)
        ts.record(10, 2.0)
        csv = format_series_csv({"a": ts}, step=10)
        lines = csv.splitlines()
        assert lines[0] == "time,a"
        assert lines[1] == "0,1.00"
        assert lines[2] == "10,2.00"


class TestSummaryQuantileEdges:
    def test_empty_quantile_zero(self):
        stat = SummaryStat("s")
        assert stat.quantile(0.0) == 0.0
        assert stat.quantile(0.5) == 0.0
        assert stat.quantile(1.0) == 0.0

    def test_single_sample_every_quantile(self):
        stat = SummaryStat("s")
        stat.add(7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert stat.quantile(q) == 7.0

    def test_two_samples_interpolate(self):
        stat = SummaryStat("s")
        stat.add(10.0)
        stat.add(20.0)
        assert stat.quantile(0.0) == 10.0
        assert stat.quantile(0.5) == pytest.approx(15.0)
        assert stat.quantile(1.0) == 20.0

    def test_percentile_delegates(self):
        stat = SummaryStat("s")
        for v in range(1, 101):
            stat.add(float(v))
        assert stat.percentile(50) == stat.quantile(0.5)

    def test_quantile_range_validated(self):
        stat = SummaryStat("s")
        with pytest.raises(ValueError):
            stat.quantile(1.5)
        with pytest.raises(ValueError):
            stat.percentile(250)


class TestHistogram:
    def test_empty_and_single(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        hist.add(0.003)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.003

    def test_quantiles_bounded_relative_error(self):
        hist = Histogram("h")
        values = [i / 1000.0 for i in range(1, 2001)]  # 1ms .. 2s
        for v in values:
            hist.add(v)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = values[int(q * (len(values) - 1))]
            approx = hist.quantile(q)
            # log buckets at 2^0.25 growth: <= ~19% relative error.
            assert abs(approx - exact) / exact < 0.2

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram("h")
        hist.add(1.0)
        hist.add(1.0)
        hist.add(1.0)
        assert hist.quantile(0.0) >= 1.0
        assert hist.quantile(1.0) <= 1.0

    def test_underflow_bucket(self):
        hist = Histogram("h", lo=1e-3)
        hist.add(0.0)
        hist.add(1e-4)
        assert hist.count == 2
        assert hist.quantile(1.0) <= 1e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)
        hist = Histogram("h")
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_merge(self):
        a = Histogram("a")
        b = Histogram("b")
        for v in (0.001, 0.002, 0.004):
            a.add(v)
        for v in (0.008, 0.016):
            b.add(v)
        a.merge(b)
        assert a.count == 5
        assert a.max == 0.016
        assert a.total == pytest.approx(0.031)

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("a")
        b = Histogram("b", lo=1e-6)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dict_round_trip(self):
        hist = Histogram("h")
        for v in (0.001, 0.05, 0.9, 14.0):
            hist.add(v)
        clone = Histogram.from_dict(hist.as_dict())
        assert clone.count == hist.count
        assert clone.total == pytest.approx(hist.total)
        assert clone.min == hist.min
        assert clone.max == hist.max
        for q in (0.1, 0.5, 0.99):
            assert clone.quantile(q) == hist.quantile(q)

    def test_empty_dict_round_trip(self):
        clone = Histogram.from_dict(Histogram("h").as_dict())
        assert clone.count == 0
        assert clone.quantile(0.5) == 0.0

    def test_default_buckets_collapse_ns_scale_samples(self):
        # The simulated-magnitude default (lo=1e-7 s) cannot tell 5 ns
        # from 80 ns when samples arrive as seconds: both underflow.
        hist = Histogram("h")
        for ns in (5, 40, 80):
            hist.add(ns * 1e-9)
        assert hist._counts == {0: 3}

    def test_wallclock_ns_preserves_ns_precision(self):
        hist = Histogram.wallclock_ns("service.lat.get")
        samples = [250, 300, 400, 800, 1_200, 2_000_000]  # 250ns .. 2ms
        for ns in samples:
            hist.add(ns)
        # Every sample lands above the 1 ns floor in a distinct region;
        # quantiles keep the log-bucket relative-error bound at ns scale.
        assert 0 not in hist._counts
        assert hist.min == 250
        assert hist.max == 2_000_000
        p50 = hist.quantile(0.5)
        assert 400 * 0.8 <= p50 <= 800 * 1.2
        assert hist.quantile(1.0) == 2_000_000
        # Large perf_counter_ns() deltas survive exactly (no float s
        # conversion): a 3.6e12 ns (one hour) outlier keeps its bucket.
        hist.add(3_600_000_000_000)
        assert hist.max == 3_600_000_000_000

    def test_wallclock_ns_merges_with_wallclock_ns_only(self):
        a = Histogram.wallclock_ns("a")
        b = Histogram.wallclock_ns("b")
        b.add(500)
        a.merge(b)
        assert a.count == 1
        with pytest.raises(ValueError):
            a.merge(Histogram("sim"))


class TestRegistryHistograms:
    def test_create_on_use_and_observe(self):
        reg = MetricsRegistry()
        reg.observe_histogram("lat", 0.5)
        reg.observe_histogram("lat", 1.5)
        assert reg.histogram("lat").count == 2

    def test_register_external_histogram(self):
        reg = MetricsRegistry()
        hist = Histogram("obs.lat.get")
        hist.add(0.25)
        assert reg.register_histogram(hist) is hist
        assert reg.histogram("obs.lat.get") is hist
        # An existing name wins; the caller merges if it cares.
        other = Histogram("obs.lat.get")
        assert reg.register_histogram(other) is hist

    def test_histograms_prefix_filter(self):
        reg = MetricsRegistry()
        reg.observe_histogram("obs.lat.get", 1.0)
        reg.observe_histogram("obs.lat.put", 2.0)
        reg.observe_histogram("dev.read", 3.0)
        assert set(reg.histograms("obs.lat.")) == {"obs.lat.get", "obs.lat.put"}
        assert set(reg.histograms()) == {"obs.lat.get", "obs.lat.put", "dev.read"}

    def test_names_include_histograms(self):
        reg = MetricsRegistry()
        reg.observe_histogram("h", 1.0)
        assert ("histogram", "h") in list(reg.names())

    def test_wallclock_histogram_create_on_use(self):
        reg = MetricsRegistry()
        hist = reg.wallclock_histogram("service.lat.get")
        hist.add(750)  # 750 ns
        assert hist._counts != {0: 1}
        # Same name resolves to the same object through either accessor.
        assert reg.wallclock_histogram("service.lat.get") is hist
        assert reg.histogram("service.lat.get") is hist

    def test_histogram_creation_kwargs_apply_once(self):
        reg = MetricsRegistry()
        hist = reg.histogram("ns", lo=Histogram.WALLCLOCK_NS_LO)
        assert hist._lo == 1.0
        # kwargs on later lookups are ignored, not an error.
        assert reg.histogram("ns", lo=1e-7) is hist
        assert hist._lo == 1.0
