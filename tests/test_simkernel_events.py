"""Unit tests for the simulation kernel's event primitives."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
)


class TestEventLifecycle:
    def test_fresh_event_is_pending(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            env.event().value

    def test_succeed_sets_value(self):
        env = Environment()
        event = env.event().succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_double_trigger_raises(self):
        env = Environment()
        event = env.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_sets_not_ok(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("boom"))
        event.defuse()
        assert event.triggered
        assert not event.ok

    def test_callbacks_run_on_processing(self):
        env = Environment()
        seen = []
        event = env.event()
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run(until=0)
        assert seen == ["payload"]

    def test_unhandled_failure_crashes_run(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run(until=1)


class TestTimeout:
    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_fires_at_delay(self):
        env = Environment()
        fired = []

        def proc(env):
            yield env.timeout(5.5)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10)
        assert fired == [5.5]

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc(env):
            value = yield env.timeout(1, value="tick")
            got.append(value)

        env.process(proc(env))
        env.run(until=2)
        assert got == ["tick"]

    def test_zero_delay_timeout_runs_same_instant(self):
        env = Environment()
        order = []

        def proc(env):
            order.append(env.now)
            yield env.timeout(0)
            order.append(env.now)

        env.process(proc(env))
        env.run(until=1)
        assert order == [0.0, 0.0]


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(3, value="b")
            results = yield AllOf(env, [t1, t2])
            done.append((env.now, sorted(results.values())))

        env.process(proc(env))
        env.run(until=5)
        assert done == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(3, value="slow")
            results = yield AnyOf(env, [t1, t2])
            done.append((env.now, list(results.values())))

        env.process(proc(env))
        env.run(until=5)
        assert done == [(1.0, ["fast"])]

    def test_empty_all_of_triggers_immediately(self):
        env = Environment()
        cond = AllOf(env, [])
        assert cond.triggered

    def test_all_of_mixed_environments_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(ValueError):
            AllOf(env1, [env2.timeout(1)])


class TestRunLoop:
    def test_run_until_time_advances_clock(self):
        env = Environment()
        env.run(until=42)
        assert env.now == 42

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return "result"

        process = env.process(proc(env))
        assert env.run(until=process) == "result"

    def test_run_without_until_drains_queue(self):
        env = Environment()
        ticks = []

        def proc(env):
            for _ in range(3):
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(proc(env))
        env.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_step_on_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(7)
        assert env.peek() == 7.0

    def test_peek_empty_is_inf(self):
        env = Environment()
        assert env.peek() == float("inf")

    def test_events_process_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, 3, "c"))
        env.process(proc(env, 1, "a"))
        env.process(proc(env, 2, "b"))
        env.run(until=5)
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_timestamp(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in ("first", "second", "third"):
            env.process(proc(env, tag))
        env.run(until=2)
        assert order == ["first", "second", "third"]
