"""Memcached protocol edge cases against a live asyncio server."""

import asyncio
import tempfile
import unittest

from repro.core import StoreKind
from repro.service import DiskStore, ServiceCache
from repro.service.server import CacheServer


class ServerHarness(unittest.IsolatedAsyncioTestCase):
    """A real server on a loopback port, torn down per test."""

    capacity_mb = 1.0
    max_value_bytes = 8192
    admission = None

    async def asyncSetUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        store = DiskStore(self._tmp.name, sync_writes=False)
        self.cache = ServiceCache(
            store, capacity_mb=self.capacity_mb, admission=self.admission,
            eviction_batch_mb=16 * 4096 / (1 << 20))
        self.server = CacheServer(self.cache, port=0,
                                  max_value_bytes=self.max_value_bytes)
        await self.server.start()

    async def asyncTearDown(self):
        await self.server.close()
        self._tmp.cleanup()

    async def connect(self):
        return await asyncio.open_connection("127.0.0.1", self.server.port)

    async def command(self, reader, writer, line: bytes) -> bytes:
        writer.write(line)
        await writer.drain()
        return await reader.readline()

    async def read_get(self, reader) -> dict:
        """Parse one get reply into ``{key: (flags, value)}``."""
        out = {}
        while True:
            line = await reader.readline()
            if line.startswith(b"END"):
                return out
            self.assertTrue(line.startswith(b"VALUE"), line)
            _, key, flags, nbytes = line.split()[:4]
            body = await reader.readexactly(int(nbytes) + 2)
            out[key.decode()] = (int(flags), body[:-2])


class BasicProtocolTests(ServerHarness):
    async def test_set_get_delete_flush_round_trip(self):
        reader, writer = await self.connect()
        reply = await self.command(
            reader, writer, b"set greet 5 0 5\r\nhello\r\n")
        self.assertEqual(reply, b"STORED\r\n")

        writer.write(b"get greet\r\n")
        await writer.drain()
        values = await self.read_get(reader)
        self.assertEqual(values, {"greet": (5, b"hello")})

        reply = await self.command(reader, writer, b"delete greet\r\n")
        self.assertEqual(reply, b"DELETED\r\n")
        reply = await self.command(reader, writer, b"delete greet\r\n")
        self.assertEqual(reply, b"NOT_FOUND\r\n")

        await self.command(reader, writer, b"set a 0 0 1\r\nx\r\n")
        reply = await self.command(reader, writer, b"flush_all\r\n")
        self.assertEqual(reply, b"OK\r\n")
        writer.write(b"get a\r\n")
        await writer.drain()
        self.assertEqual(await self.read_get(reader), {})
        writer.close()

    async def test_gets_reports_cas_id(self):
        reader, writer = await self.connect()
        await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        writer.write(b"gets k\r\n")
        await writer.drain()
        line = await reader.readline()
        parts = line.split()
        self.assertEqual(len(parts), 5)  # VALUE k flags bytes cas
        self.assertTrue(int(parts[4]) >= 1)
        await reader.readexactly(int(parts[3]) + 2)
        self.assertEqual(await reader.readline(), b"END\r\n")
        writer.close()

    async def test_unknown_command_is_error_and_counted(self):
        reader, writer = await self.connect()
        reply = await self.command(reader, writer, b"increment k 1\r\n")
        self.assertEqual(reply, b"ERROR\r\n")
        self.assertEqual(self.server.protocol.protocol_errors, 1)
        writer.close()

    async def test_binary_safe_values(self):
        reader, writer = await self.connect()
        value = bytes(range(256)) * 4
        writer.write(b"set blob 0 0 %d\r\n" % len(value) + value + b"\r\n")
        await writer.drain()
        self.assertEqual(await reader.readline(), b"STORED\r\n")
        writer.write(b"get blob\r\n")
        await writer.drain()
        values = await self.read_get(reader)
        self.assertEqual(values["blob"][1], value)
        writer.close()

    async def test_version_and_quit(self):
        reader, writer = await self.connect()
        reply = await self.command(reader, writer, b"version\r\n")
        self.assertTrue(reply.startswith(b"VERSION"))
        writer.write(b"quit\r\n")
        await writer.drain()
        self.assertEqual(await reader.read(), b"")  # server closed


class EdgeCaseTests(ServerHarness):
    async def test_oversized_value_is_consumed_and_rejected(self):
        reader, writer = await self.connect()
        huge = b"z" * (self.max_value_bytes + 1)
        writer.write(b"set big 0 0 %d\r\n" % len(huge) + huge + b"\r\n")
        # The stream must stay in sync: the next command still works.
        writer.write(b"set small 0 0 2\r\nok\r\n")
        await writer.drain()
        self.assertEqual(await reader.readline(),
                         b"SERVER_ERROR object too large for cache\r\n")
        self.assertEqual(await reader.readline(), b"STORED\r\n")
        writer.close()

    async def test_noreply_suppresses_responses(self):
        reader, writer = await self.connect()
        writer.write(b"set quiet 0 0 2 noreply\r\nhi\r\n")
        writer.write(b"delete quiet noreply\r\n")
        writer.write(b"delete quiet noreply\r\n")  # NOT_FOUND, suppressed
        writer.write(b"version\r\n")
        await writer.drain()
        # The only reply on the wire is the version line.
        self.assertTrue((await reader.readline()).startswith(b"VERSION"))
        writer.close()

    async def test_pipelined_commands_answer_in_order(self):
        reader, writer = await self.connect()
        batch = b"".join(
            b"set k%d 0 0 2\r\nv%d\r\n" % (i, i) for i in range(5))
        batch += b"get k0 k3 k4\r\n" + b"delete k1\r\n"
        writer.write(batch)
        await writer.drain()
        for _ in range(5):
            self.assertEqual(await reader.readline(), b"STORED\r\n")
        values = await self.read_get(reader)
        self.assertEqual(set(values), {"k0", "k3", "k4"})
        self.assertEqual(await reader.readline(), b"DELETED\r\n")
        writer.close()

    async def test_abrupt_disconnect_mid_body_discards_quietly(self):
        reader, writer = await self.connect()
        writer.write(b"set torn 0 0 100\r\nonly-a-fragment")
        await writer.drain()
        writer.close()  # vanish with 85 bytes outstanding
        await asyncio.sleep(0.05)
        # The server neither stored the fragment nor counted an error,
        # and keeps serving fresh connections.
        reader2, writer2 = await self.connect()
        writer2.write(b"get torn\r\n")
        await writer2.drain()
        self.assertEqual(await self.read_get(reader2), {})
        self.assertEqual(self.server.protocol.protocol_errors, 0)
        writer2.close()

    async def test_bad_data_chunk_terminator(self):
        reader, writer = await self.connect()
        # Body is followed by junk instead of CRLF.
        writer.write(b"set k 0 0 2\r\nvvXX")
        writer.write(b"\r\n")
        await writer.drain()
        reply = await reader.readline()
        self.assertEqual(reply, b"CLIENT_ERROR bad data chunk\r\n")
        writer.close()

    async def test_malformed_set_arguments(self):
        reader, writer = await self.connect()
        reply = await self.command(reader, writer, b"set k 0 0\r\n")
        self.assertTrue(reply.startswith(b"CLIENT_ERROR"))
        reply = await self.command(reader, writer,
                                   b"set k x 0 2\r\nvv\r\n")
        self.assertTrue(reply.startswith(b"CLIENT_ERROR"))
        writer.close()


class TinyCapacityTests(ServerHarness):
    """Cache of 4 blocks (16KB) under a 1MB protocol ceiling."""

    capacity_mb = 4 * 4096 / (1 << 20)
    max_value_bytes = 1 << 20

    async def test_value_larger_than_whole_cache_rejected(self):
        # Fits the protocol ceiling but not the capacity budget.
        reader, writer = await self.connect()
        value = b"y" * (5 * 4096)
        writer.write(b"set big 0 0 %d\r\n" % len(value) + value + b"\r\n")
        await writer.drain()
        self.assertEqual(await reader.readline(),
                         b"SERVER_ERROR object too large for cache\r\n")
        self.assertEqual(
            self.cache.tenants["default"].stats.put_rejected_capacity, 1)
        writer.close()


class TenantTests(ServerHarness):
    async def test_tenants_map_to_distinct_containers(self):
        reader, writer = await self.connect()
        self.assertEqual(
            await self.command(reader, writer, b"tenant alice\r\n"),
            b"OK\r\n")
        await self.command(reader, writer, b"set k 0 0 5\r\nalice\r\n")
        self.assertEqual(
            await self.command(reader, writer, b"tenant bob\r\n"),
            b"OK\r\n")
        writer.write(b"get k\r\n")
        await writer.drain()
        self.assertEqual(await self.read_get(reader), {})  # isolated
        await self.command(reader, writer, b"set k 0 0 3\r\nbob\r\n")
        self.assertEqual(
            await self.command(reader, writer, b"tenant alice\r\n"),
            b"OK\r\n")
        writer.write(b"get k\r\n")
        await writer.drain()
        values = await self.read_get(reader)
        self.assertEqual(values["k"][1], b"alice")
        # Two distinct DD pools exist, one per tenant.
        self.assertEqual(
            {self.cache.tenants["alice"].pool_id,
             self.cache.tenants["bob"].pool_id}.__len__(), 2)
        writer.close()

    async def test_flush_all_scopes_to_connection_tenant(self):
        reader, writer = await self.connect()
        await self.command(reader, writer, b"tenant alice\r\n")
        await self.command(reader, writer, b"set k 0 0 1\r\na\r\n")
        await self.command(reader, writer, b"tenant bob\r\n")
        await self.command(reader, writer, b"set k 0 0 1\r\nb\r\n")
        await self.command(reader, writer, b"flush_all\r\n")  # bob only
        await self.command(reader, writer, b"tenant alice\r\n")
        writer.write(b"get k\r\n")
        await writer.drain()
        self.assertEqual(set(await self.read_get(reader)), {"k"})
        writer.close()

    async def test_concurrent_tenants_hitting_eviction(self):
        """Two tenants writing past capacity together: Algorithm 1 keeps
        both near their entitlements, no errors, accounting intact."""

        async def flood(tenant: str, count: int):
            reader, writer = await self.connect()
            await self.command(reader, writer,
                               b"tenant " + tenant.encode() + b"\r\n")
            payload = b"p" * 4096
            for i in range(count):
                writer.write(
                    b"set %s-%d 0 0 4096\r\n" % (tenant.encode(), i)
                    + payload + b"\r\n")
                await writer.drain()
                reply = await reader.readline()
                self.assertEqual(reply, b"STORED\r\n")
            writer.close()

        capacity = self.cache.capacity_blocks  # 256 blocks at 1MB/4KB
        per_tenant = capacity  # 2x capacity total → sustained eviction
        await asyncio.gather(flood("alice", per_tenant),
                             flood("bob", per_tenant))

        alice = self.cache.tenants["alice"]
        bob = self.cache.tenants["bob"]
        used = alice.used[StoreKind.SSD] + bob.used[StoreKind.SSD]
        self.assertEqual(used, self.cache.used_blocks)
        self.assertLessEqual(used, capacity)
        # Both tenants survived with a fair share (Algorithm 1 evicts
        # the over-user, so neither can be starved below ~half of its
        # entitlement while the other holds a surplus).
        for pool in (alice, bob):
            self.assertGreaterEqual(
                pool.used[StoreKind.SSD],
                pool.entitlement[StoreKind.SSD] // 2)
        self.assertGreater(alice.stats.evictions + bob.stats.evictions, 0)
        self.assertEqual(self.server.protocol.protocol_errors, 0)
        # Disk store agrees with the metadata layer.
        self.assertEqual(self.cache.store.count(),
                         self.cache.stats()["_host"]["entries"])


class MetricsWiringTests(ServerHarness):
    async def test_wallclock_histograms_populate_at_ns_scale(self):
        reader, writer = await self.connect()
        await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        writer.write(b"get k\r\n")
        await writer.drain()
        await self.read_get(reader)
        writer.close()
        for op in ("get", "set"):
            hist = self.cache.registry.wallclock_histogram(
                f"service.lat.{op}")
            self.assertGreaterEqual(hist.count, 1)
            # ns-bucketed: real sub-millisecond latencies never collapse
            # into the underflow bucket.
            self.assertNotIn(0, hist._counts)
            self.assertGreater(hist.quantile(0.5), 1.0)

    async def test_stats_command_reports_latency_percentiles(self):
        reader, writer = await self.connect()
        await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        writer.write(b"stats\r\n")
        await writer.drain()
        lines = []
        while True:
            line = await reader.readline()
            if line.startswith(b"END"):
                break
            lines.append(line.decode())
        writer.close()
        joined = "".join(lines)
        self.assertIn("STAT default:puts_stored 1", joined)
        self.assertIn("lat:set:p50_ns", joined)
        self.assertIn("lat:set:p99_ns", joined)


class StatsCommandTests(ServerHarness):
    async def read_stats(self, reader, writer, line: bytes) -> str:
        writer.write(line)
        await writer.drain()
        lines = []
        while True:
            reply = await reader.readline()
            if reply.startswith((b"END", b"CLIENT_ERROR")):
                lines.append(reply.decode())
                return "".join(lines)
            lines.append(reply.decode())

    async def test_stats_reports_float_hit_ratio_and_parses(self):
        from repro.service.protocol import parse_stats

        reader, writer = await self.connect()
        await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        writer.write(b"get k\r\nget missing\r\n")
        await writer.drain()
        await self.read_get(reader)
        await self.read_get(reader)
        payload = await self.read_stats(reader, writer, b"stats\r\n")
        writer.close()
        parsed = parse_stats(payload)
        # Counters parse as ints, the derived ratio as a true float —
        # the old int-only parser dropped every fractional value.
        self.assertEqual(parsed["default:gets"], 2)
        self.assertEqual(parsed["default:get_hits"], 1)
        self.assertIsInstance(parsed["default:hit_ratio"], float)
        self.assertAlmostEqual(parsed["default:hit_ratio"], 0.5)

    async def test_stats_tenants_breakdown(self):
        from repro.service.protocol import parse_stats

        reader, writer = await self.connect()
        await self.command(reader, writer, b"tenant alpha\r\n")
        await self.command(reader, writer, b"set a 0 0 4\r\nAAAA\r\n")
        await self.command(reader, writer, b"tenant beta\r\n")
        await self.command(reader, writer, b"set b 0 0 4\r\nBBBB\r\n")
        payload = await self.read_stats(reader, writer, b"stats tenants\r\n")
        writer.close()
        parsed = parse_stats(payload)
        self.assertEqual(parsed["alpha:puts_stored"], 1)
        self.assertEqual(parsed["beta:puts_stored"], 1)
        self.assertEqual(parsed["alpha:bytes"], 4)
        # Two tenants, one stored block each: shares halve and sum to 1.
        self.assertAlmostEqual(parsed["alpha:occupancy_share"], 0.5)
        self.assertAlmostEqual(
            parsed["alpha:occupancy_share"]
            + parsed["beta:occupancy_share"], 1.0)
        self.assertNotIn("_host:used_blocks", parsed)

    async def test_stats_unknown_subcommand_is_client_error(self):
        reader, writer = await self.connect()
        reply = await self.command(reader, writer, b"stats bogus\r\n")
        self.assertTrue(reply.startswith(b"CLIENT_ERROR"), reply)
        # The connection survives a bad sub-command.
        reply = await self.command(reader, writer, b"version\r\n")
        self.assertTrue(reply.startswith(b"VERSION"), reply)
        writer.close()


class AdmissionTests(ServerHarness):
    admission = "second_access"

    async def test_second_access_admission_gates_first_put(self):
        reader, writer = await self.connect()
        reply = await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        self.assertEqual(reply, b"NOT_STORED\r\n")  # first sight: ghost
        reply = await self.command(reader, writer, b"set k 0 0 1\r\nv\r\n")
        self.assertEqual(reply, b"STORED\r\n")      # second sight: admit
        self.assertEqual(
            self.cache.tenants["default"].stats.put_rejected_admission, 1)
        writer.close()


class LifecycleTests(ServerHarness):
    """Shutdown races: the DD012 finding fixed in server.close()."""

    async def test_concurrent_close_is_idempotent(self):
        # A SIGTERM handler racing a failed-startup unwind used to
        # double-close the listener: both coroutines read self._server,
        # suspended in wait_closed(), then each closed it again.  The
        # capture-and-swap makes the loser see None.
        await asyncio.gather(self.server.close(), self.server.close())
        # tearDown's third close() must also be a no-op.

    async def test_close_after_close_is_a_noop(self):
        await self.server.close()
        await self.server.close()
        self.assertIsNone(self.server._server)


if __name__ == "__main__":
    unittest.main()
