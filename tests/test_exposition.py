"""Prometheus exposition: rendering, escaping, and the format checker.

The renderer and :func:`check_exposition` are two halves of one
contract — everything the renderer emits must pass the checker, and the
checker must reject the classic corruption shapes (missing ``+Inf``,
non-cumulative buckets, duplicate samples) that a half-scraped or
hand-edited body shows.
"""

import contextlib
import io
import math
import unittest

from repro.metrics import (
    Histogram,
    MetricFamily,
    MetricsRegistry,
    check_exposition,
    registry_families,
    render_families,
    render_registry,
)
from repro.metrics.exposition import (
    escape_label_value,
    format_value,
    histogram_family,
    main as exposition_main,
    sanitize_label_name,
    sanitize_metric_name,
)


class NameAndValueTests(unittest.TestCase):
    def test_dotted_names_sanitize(self):
        self.assertEqual(sanitize_metric_name("service.lat.get"),
                         "service_lat_get")
        self.assertEqual(sanitize_metric_name("a:b"), "a:b")  # colons ok
        self.assertEqual(sanitize_metric_name("9lives"), "_9lives")
        self.assertEqual(sanitize_metric_name(""), "_")

    def test_label_names_reject_colons(self):
        self.assertEqual(sanitize_label_name("host:0"), "host_0")
        self.assertEqual(sanitize_label_name("7th"), "_7th")

    def test_label_value_escaping(self):
        self.assertEqual(escape_label_value('say "hi"'), 'say \\"hi\\"')
        self.assertEqual(escape_label_value("a\\b"), "a\\\\b")
        self.assertEqual(escape_label_value("two\nlines"), "two\\nlines")
        # Backslash first: escaping a quote must not re-escape its own
        # backslash.
        self.assertEqual(escape_label_value('\\"'), '\\\\\\"')

    def test_format_value(self):
        self.assertEqual(format_value(math.inf), "+Inf")
        self.assertEqual(format_value(-math.inf), "-Inf")
        self.assertEqual(format_value(float("nan")), "NaN")
        self.assertEqual(format_value(3.0), "3")
        self.assertEqual(format_value(0.5), "0.5")
        self.assertEqual(format_value(1e18), "1e+18")

    def test_escaped_labels_round_trip_through_checker(self):
        family = MetricFamily("dd_thing", "gauge")
        family.add(1.0, labels={"tenant": 'we"ird\\name\n'})
        text = render_families([family])
        self.assertEqual(check_exposition(text), [])


class HistogramFamilyTests(unittest.TestCase):
    def test_buckets_are_cumulative_and_inf_closed(self):
        hist = Histogram.wallclock_ns("lat")
        for value in (10, 100, 1000, 10_000, 10_000):
            hist.add(value)
        family = histogram_family("dd_lat", hist)
        buckets = [(labels["le"], value)
                   for suffix, labels, value in family.samples
                   if suffix == "_bucket"]
        self.assertEqual(buckets[-1][0], "+Inf")
        self.assertEqual(buckets[-1][1], float(hist.count))
        cumulative = [value for _, value in buckets]
        self.assertEqual(cumulative, sorted(cumulative))
        sums = [(suffix, value) for suffix, _, value in family.samples
                if suffix in ("_sum", "_count")]
        self.assertIn(("_sum", hist.total), sums)
        self.assertIn(("_count", 5.0), sums)
        self.assertEqual(check_exposition(render_families([family])), [])

    def test_wallclock_ns_bucket_boundaries(self):
        # A 1 ns sample sits exactly at lo: it must land in the underflow
        # bucket whose upper bound IS lo, not above it.
        hist = Histogram.wallclock_ns("edge")
        hist.add(1)
        bounds = hist.cumulative_buckets()
        self.assertEqual(bounds[0], (Histogram.WALLCLOCK_NS_LO, 1))
        self.assertEqual(bounds[-1], (math.inf, 1))
        # Just above lo: a finite bucket strictly above lo appears, and
        # the cumulative count at +Inf still equals the total count.
        hist.add(2)
        bounds = hist.cumulative_buckets()
        self.assertGreater(bounds[1][0], Histogram.WALLCLOCK_NS_LO)
        self.assertEqual(bounds[-1], (math.inf, 2))
        self.assertEqual(
            check_exposition(render_families(
                [histogram_family("dd_edge", hist)])), [])

    def test_empty_histogram_still_renders_validly(self):
        family = histogram_family("dd_empty", Histogram.wallclock_ns("e"))
        text = render_families([family])
        self.assertIn('dd_empty_bucket{le="+Inf"} 0', text)
        self.assertEqual(check_exposition(text), [])


class RegistryFamiliesTests(unittest.TestCase):
    def test_counters_series_summaries_histograms(self):
        registry = MetricsRegistry()
        registry.incr("tenant.gets", 7)
        registry.record("cache.used_blocks", 1.0, 42.0)
        registry.observe("op.cost", 3.0)
        registry.wallclock_histogram("service.lat.get").add(500)
        text = render_registry(registry, labels={"host": "host0"})
        self.assertEqual(check_exposition(text), [])
        self.assertIn('dd_tenant_gets_total{host="host0"} 7', text)
        self.assertIn('dd_cache_used_blocks{host="host0"} 42', text)
        self.assertIn('quantile="0.5"', text)
        self.assertIn("dd_service_lat_get_bucket", text)
        self.assertIn("# TYPE dd_tenant_gets_total counter", text)
        self.assertIn("# TYPE dd_cache_used_blocks gauge", text)
        self.assertIn("# TYPE dd_op_cost summary", text)
        self.assertIn("# TYPE dd_service_lat_get histogram", text)

    def test_empty_series_are_skipped(self):
        registry = MetricsRegistry()
        registry.series("never.sampled")
        self.assertNotIn("never_sampled",
                         render_registry(registry))

    def test_same_name_families_merge_under_one_type(self):
        registries = []
        for host in range(2):
            registry = MetricsRegistry()
            registry.incr("gets", 1 + host)
            registries.append(registry)
        families = []
        for index, registry in enumerate(registries):
            families.extend(registry_families(
                registry, labels={"host": f"host{index}"}))
        text = render_families(families)
        self.assertEqual(check_exposition(text), [])
        self.assertEqual(text.count("# TYPE dd_gets_total"), 1)
        self.assertIn('dd_gets_total{host="host0"} 1', text)
        self.assertIn('dd_gets_total{host="host1"} 2', text)

    def test_kind_mismatch_raises(self):
        with self.assertRaises(ValueError):
            render_families([MetricFamily("dd_x", "counter"),
                             MetricFamily("dd_x", "gauge")])


class CheckerTests(unittest.TestCase):
    def test_rejects_malformed_type_line(self):
        problems = check_exposition("# TYPE dd_x sideways\ndd_x 1\n")
        self.assertTrue(any("TYPE" in p for p in problems))

    def test_rejects_duplicate_samples(self):
        text = 'dd_x{t="a"} 1\ndd_x{t="a"} 2\n'
        problems = check_exposition(text)
        self.assertTrue(any("duplicate sample" in p for p in problems))

    def test_rejects_unparseable_line(self):
        problems = check_exposition("!!! not a sample\n")
        self.assertTrue(any("unparseable" in p for p in problems))

    def test_rejects_histogram_missing_inf(self):
        text = ("# TYPE dd_h histogram\n"
                'dd_h_bucket{le="10"} 1\n'
                "dd_h_sum 5\ndd_h_count 1\n")
        problems = check_exposition(text)
        self.assertTrue(any("+Inf" in p for p in problems))

    def test_rejects_non_cumulative_buckets(self):
        text = ("# TYPE dd_h histogram\n"
                'dd_h_bucket{le="10"} 5\n'
                'dd_h_bucket{le="20"} 3\n'
                'dd_h_bucket{le="+Inf"} 5\n'
                "dd_h_sum 5\ndd_h_count 5\n")
        problems = check_exposition(text)
        self.assertTrue(any("not cumulative" in p for p in problems))

    def test_rejects_inf_count_mismatch(self):
        text = ("# TYPE dd_h histogram\n"
                'dd_h_bucket{le="+Inf"} 5\n'
                "dd_h_sum 5\ndd_h_count 4\n")
        problems = check_exposition(text)
        self.assertTrue(any("_count" in p for p in problems))

    def test_accepts_multi_labelset_histograms(self):
        families = []
        for tenant in ("a", "b"):
            hist = Histogram.wallclock_ns(tenant)
            hist.add(100 if tenant == "a" else 100_000)
            families.append(histogram_family(
                "dd_lat", hist, labels={"tenant": tenant}))
        self.assertEqual(check_exposition(render_families(families)), [])


class CliTests(unittest.TestCase):
    def _run(self, argv):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer), \
                contextlib.redirect_stderr(buffer):
            status = exposition_main(argv)
        return status, buffer.getvalue()

    def test_valid_file_reports_ok(self):
        import tempfile
        from pathlib import Path

        registry = MetricsRegistry()
        registry.incr("gets", 3)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "metrics.prom"
            path.write_text(render_registry(registry))
            status, output = self._run([str(path)])
        self.assertEqual(status, 0)
        self.assertIn("OK (1 samples)", output)

    def test_invalid_file_reports_problems(self):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bad.prom"
            path.write_text("!!! nope\n")
            status, output = self._run([str(path)])
        self.assertEqual(status, 1)
        self.assertIn("INVALID", output)

    def test_usage_error_exits_2(self):
        status, _ = self._run([])
        self.assertEqual(status, 2)


if __name__ == "__main__":
    unittest.main()
