"""Tests for trace record/replay and VM ballooning."""

import io

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.workloads import (
    TraceRecord,
    TraceRecorder,
    TraceReplayWorkload,
    WebserverWorkload,
    dump_trace,
    load_trace,
)


def build(limit_mb=128, cache_mb=128, vm_mb=1024):
    ctx = SimContext(seed=23)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=cache_mb))
    vm = host.create_vm("vm1", memory_mb=vm_mb, vcpus=4)
    container = vm.create_container("c", limit_mb, CachePolicy.memory(100))
    return ctx, host, vm, container


class TestTraceFormat:
    def test_roundtrip(self):
        records = [
            TraceRecord(0.5, "r", 3, 0, 16),
            TraceRecord(1.0, "w", 3, 4, 2),
            TraceRecord(1.5, "a", 0, 42, 1),
        ]
        buffer = io.StringIO()
        assert dump_trace(records, buffer) == 3
        buffer.seek(0)
        assert load_trace(buffer) == records

    def test_load_skips_comments(self):
        buffer = io.StringIO("# header\n\n0.0 r 1 0 4\n")
        records = load_trace(buffer)
        assert len(records) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord.from_line("0.0 r 1")


class TestTraceRecorder:
    def test_records_reads_writes_anon(self):
        ctx, host, vm, container = build()
        recorder = TraceRecorder(container)
        recorder.attach()
        f = container.create_file(8)

        def driver():
            yield from container.read(f)
            yield from container.write(f, 0, 2, sync=True)
            yield from container.touch_anon([1, 2])
            return None

        ctx.env.run(until=ctx.env.process(driver()))
        ops = [r.op for r in recorder.records]
        assert ops == ["r", "s", "a", "a"]
        assert recorder.records[0].nblocks == 8

    def test_only_target_container_recorded(self):
        ctx, host, vm, container = build()
        other = vm.create_container("other", 64, CachePolicy.none())
        recorder = TraceRecorder(container)
        recorder.attach()
        f = other.create_file(4)
        ctx.env.run(until=ctx.env.process(other.read(f)))
        assert recorder.records == []

    def test_attach_idempotent(self):
        ctx, host, vm, container = build()
        recorder = TraceRecorder(container)
        recorder.attach()
        recorder.attach()
        f = container.create_file(2)
        ctx.env.run(until=ctx.env.process(container.read(f)))
        assert len(recorder.records) == 1


class TestTraceReplay:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload([])

    def test_replay_executes_ops(self):
        ctx, host, vm, container = build()
        records = [
            TraceRecord(0.0, "r", 1, 0, 8),
            TraceRecord(1.0, "w", 1, 0, 4),
            TraceRecord(2.0, "a", 0, 7, 1),
        ]
        workload = TraceReplayWorkload(records, loop=False, time_scale=1.0)
        workload.start(container, ctx.streams)
        ctx.run(until=30)
        assert workload.counters.ops >= 3
        assert container.cgroup.anon_blocks == 1

    def test_replay_preserves_gaps(self):
        ctx, host, vm, container = build()
        records = [
            TraceRecord(0.0, "r", 1, 0, 1),
            TraceRecord(10.0, "r", 1, 0, 1),
        ]
        workload = TraceReplayWorkload(records, loop=False)
        workload.start(container, ctx.streams)
        ctx.run(until=5)
        ops_at_5 = workload.counters.ops
        ctx.run(until=30)
        assert ops_at_5 == 1      # second op waited for the 10 s gap
        assert workload.counters.ops == 2

    def test_loop_wraps(self):
        ctx, host, vm, container = build()
        records = [TraceRecord(0.0, "r", 1, 0, 1)]
        workload = TraceReplayWorkload(records, loop=True, time_scale=0)
        workload.start(container, ctx.streams)
        ctx.run(until=1)
        assert workload.counters.ops > 1

    def test_record_then_replay_reproduces_behaviour(self):
        """End-to-end: record a webserver, replay it, compare block mix."""
        ctx, host, vm, container = build()
        recorder = TraceRecorder(container)
        recorder.attach()
        source = WebserverWorkload(nfiles=200, threads=1, reads_per_op=2)
        source.start(container, ctx.streams)
        ctx.run(until=20)
        source.stop()
        assert len(recorder.records) > 10

        ctx2, host2, vm2, container2 = build()
        replay = TraceReplayWorkload(list(recorder.records), loop=False)
        replay.start(container2, ctx2.streams)
        ctx2.run(until=40)
        assert replay.counters.ops > 0
        assert vm2.os.stats.pc_lookups > 0


class TestBallooning:
    def test_deflate_triggers_reclaim(self):
        ctx, host, vm, container = build(limit_mb=768, vm_mb=1024)
        f = container.create_file(8192)  # 512 MB
        ctx.env.run(until=ctx.env.process(container.read(f)))
        used_before = vm.os.total_usage_blocks()
        assert used_before > 0
        vm.set_memory_mb(256)
        ctx.run(until=ctx.now + 60)
        assert vm.os.total_usage_blocks() <= vm.os.memory_blocks
        # The deflated pages were pushed to the hypervisor cache.
        assert container.hvcache_mb > 0

    def test_inflate_raises_headroom(self):
        ctx, host, vm, container = build(vm_mb=512)
        before = vm.os.memory_blocks
        vm.set_memory_mb(1024)
        assert vm.os.memory_blocks > before

    def test_validation(self):
        ctx, host, vm, container = build()
        with pytest.raises(ValueError):
            vm.set_memory_mb(0)
        with pytest.raises(ValueError):
            vm.os.set_memory_blocks(0)
