"""PolicyEngine: unit tests + the extraction's differential pin.

The slow test here is the contract of the refactor that factored
Algorithm 1 / entitlement accounting out of ``DoubleDeckerCache`` into
:class:`repro.core.engine.PolicyEngine`: the simulated data path must be
byte-identical to the pre-extraction code.  The fingerprints below were
recorded on the commit immediately before the split (PYTHONHASHSEED=0,
scale 0.05, seed 42) and must never drift.
"""

import hashlib
import os
import unittest

import pytest

from repro.core import CachePolicy, PolicyEngine, StoreKind
from repro.core.victim import EvictionEntity

# sha256 of ExperimentResult.summary(plots=False), recorded pre-extraction.
PRE_EXTRACTION_FINGERPRINTS = {
    "caching_modes":
        "6a88bbb7a4a92cd81bb28c17ec4ae5eecbaf3cbe93df20e6c015bf88dc6cf9ff",
    "cooperative":
        "f12b2c29f3c89ec39b977f4c1e827fad576153ef0e014515039fc440c60b1dc7",
    "flexible_policy":
        "3373ac3abefde9a95f9f67266dbab48a36167b6ddfd1ac5080a91020d9e60dd8",
}


def make_engine(mem=100, ssd=400, **kwargs):
    return PolicyEngine({StoreKind.MEMORY: mem, StoreKind.SSD: ssd}, **kwargs)


class RegistryTests(unittest.TestCase):

    def test_register_vm_assigns_sequential_ids(self):
        engine = make_engine()
        self.assertEqual(engine.register_vm("a"), 1)
        self.assertEqual(engine.register_vm("b"), 2)
        self.assertEqual(sorted(engine.vms), [1, 2])

    def test_entitlements_follow_weights(self):
        # Shares are split over VMs that *actively use* the store: each
        # VM needs at least one pool configured on MEMORY to count.
        engine = make_engine(mem=100)
        a = engine.register_vm("a", weight=100.0)
        b = engine.register_vm("b", weight=300.0)
        engine.create_pool(a, "pa", CachePolicy(mem_weight=1))
        engine.create_pool(b, "pb", CachePolicy(mem_weight=1))
        self.assertEqual(engine.vm_entitlements[(a, StoreKind.MEMORY)], 25)
        self.assertEqual(engine.vm_entitlements[(b, StoreKind.MEMORY)], 75)
        engine.set_vm_weight(b, 100.0)
        self.assertEqual(engine.vm_entitlements[(a, StoreKind.MEMORY)], 50)

    def test_unregister_vm_refuses_while_pools_exist(self):
        engine = make_engine()
        vm = engine.register_vm("a")
        engine.create_pool(vm, "p", CachePolicy(mem_weight=1))
        with self.assertRaises(ValueError):
            engine.unregister_vm(vm)

    def test_negative_weight_rejected(self):
        engine = make_engine()
        vm = engine.register_vm("a")
        with self.assertRaises(ValueError):
            engine.set_vm_weight(vm, -1.0)

    def test_unknown_victim_policy_rejected(self):
        with self.assertRaises(ValueError):
            make_engine(victim_policy="lru")

    def test_require_vm_and_pool_raise_keyerror(self):
        engine = make_engine()
        with self.assertRaises(KeyError):
            engine.require_vm(99)
        vm = engine.register_vm("a")
        with self.assertRaises(KeyError):
            engine.require_pool(vm, 99)

    def test_pool_ids_are_host_unique(self):
        engine = make_engine()
        a = engine.register_vm("a")
        b = engine.register_vm("b")
        p1 = engine.create_pool(a, "p", CachePolicy(mem_weight=1))
        p2 = engine.create_pool(b, "q", CachePolicy(mem_weight=1))
        self.assertNotEqual(p1.pool_id, p2.pool_id)
        self.assertEqual(set(engine.pools), {p1.pool_id, p2.pool_id})

    def test_destroy_pool_deactivates_and_unlinks(self):
        engine = make_engine()
        vm = engine.register_vm("a")
        pool = engine.create_pool(vm, "p", CachePolicy(mem_weight=1))
        engine.destroy_pool(vm, pool.pool_id)
        self.assertFalse(pool.active)
        self.assertNotIn(pool.pool_id, engine.pools)
        self.assertNotIn(pool.pool_id, engine.vms[vm].pools)


class AdmissionPlumbingTests(unittest.TestCase):

    def test_builder_and_namer_drive_controller_lifecycle(self):
        built = []

        def builder(policy):
            controller = object()
            built.append(controller)
            return controller

        engine = make_engine(
            admission_builder=builder,
            admission_namer=lambda policy: policy.admission or "admit_all",
        )
        vm = engine.register_vm("a")
        pool = engine.create_pool(
            vm, "p", CachePolicy(ssd_weight=1, admission="admit_all"))
        first = pool.admission
        self.assertIs(first, built[-1])

        # Same resolved admission name: live controller survives.
        name = engine.set_pool_policy(
            vm, pool.pool_id,
            CachePolicy(ssd_weight=2, admission="admit_all"))
        self.assertEqual(name, "admit_all")
        self.assertIs(pool.admission, first)

        # Different name: a fresh controller is built.
        engine.set_pool_policy(
            vm, pool.pool_id,
            CachePolicy(ssd_weight=2, admission="second_access"))
        self.assertIsNot(pool.admission, first)


class DecisionTests(unittest.TestCase):

    def test_choose_store_hybrid_spills_to_ssd(self):
        engine = make_engine()
        vm = engine.register_vm("a")
        pool = engine.create_pool(
            vm, "p", CachePolicy(mem_weight=1, ssd_weight=1))
        pool.entitlement[StoreKind.MEMORY] = 2
        self.assertIs(engine.choose_store(pool), StoreKind.MEMORY)
        pool.used[StoreKind.MEMORY] = 2
        self.assertIs(engine.choose_store(pool), StoreKind.SSD)

    def test_choose_store_single_level_and_uncached(self):
        engine = make_engine()
        vm = engine.register_vm("a")
        mem = engine.create_pool(vm, "m", CachePolicy(mem_weight=1))
        ssd = engine.create_pool(vm, "s", CachePolicy(ssd_weight=1))
        off = engine.create_pool(vm, "o", CachePolicy())
        self.assertIs(engine.choose_store(mem), StoreKind.MEMORY)
        self.assertIs(engine.choose_store(ssd), StoreKind.SSD)
        self.assertIsNone(engine.choose_store(off))

    def test_select_victim_prefers_exceeders(self):
        engine = make_engine()
        over = EvictionEntity(ref="over", entitlement=10, used=20, weightage=1)
        under = EvictionEntity(ref="under", entitlement=10, used=5, weightage=1)
        victim = engine.select_victim([under, over], batch=4)
        self.assertIs(victim, over)

    def test_select_victim_max_used_policy(self):
        engine = make_engine(victim_policy="max_used")
        small = EvictionEntity(ref="s", entitlement=0, used=3, weightage=1)
        big = EvictionEntity(ref="b", entitlement=0, used=9, weightage=1)
        self.assertIs(engine.select_victim([small, big], batch=4), big)
        self.assertIsNone(engine.select_victim([], batch=4))

    def test_select_eviction_returns_none_on_empty_host(self):
        engine = make_engine()
        engine.register_vm("a")
        self.assertIsNone(engine.select_eviction(StoreKind.MEMORY, 4))

    def test_unweighted_holders_stay_reclaimable(self):
        # Blocks left in a store the policy no longer weights must still
        # be enumerated (weightage 0) or a full store wedges.
        engine = make_engine()
        vm = engine.register_vm("a")
        pool = engine.create_pool(vm, "p", CachePolicy(ssd_weight=1))
        pool.used[StoreKind.MEMORY] = 6  # e.g. left behind by set_policy
        entities = engine.vm_candidates(StoreKind.MEMORY)
        self.assertEqual(len(entities), 1)
        self.assertEqual(entities[0].weightage, 0.0)
        self.assertEqual(entities[0].used, 6)
        round_ = engine.select_eviction(StoreKind.MEMORY, 4)
        self.assertIsNotNone(round_)
        self.assertIs(round_.victim_pool, pool)

    def test_capacities_mutated_in_place_are_reread(self):
        caps = {StoreKind.MEMORY: 100, StoreKind.SSD: 0}
        engine = PolicyEngine(caps)
        vm = engine.register_vm("a")
        engine.create_pool(vm, "p", CachePolicy(mem_weight=1))
        self.assertEqual(engine.vm_entitlements[(vm, StoreKind.MEMORY)], 100)
        caps[StoreKind.MEMORY] = 40  # lending / dynamic resize
        engine.recompute()
        self.assertEqual(engine.vm_entitlements[(vm, StoreKind.MEMORY)], 40)


@pytest.mark.slow
@unittest.skipUnless(
    os.environ.get("PYTHONHASHSEED") == "0",
    "fingerprints are pinned under PYTHONHASHSEED=0")
class ExtractionDifferentialTests(unittest.TestCase):
    """The simulator path must be byte-identical to pre-extraction."""

    def _fingerprint(self, name):
        from repro.experiments import ALL_EXPERIMENTS

        experiment = ALL_EXPERIMENTS[name](scale=0.05, seed=42)
        result = experiment.run()
        text = result.summary(plots=False)
        return hashlib.sha256(text.encode()).hexdigest()

    def test_caching_modes_fingerprint_unchanged(self):
        self.assertEqual(
            self._fingerprint("caching_modes"),
            PRE_EXTRACTION_FINGERPRINTS["caching_modes"])

    def test_cooperative_fingerprint_unchanged(self):
        self.assertEqual(
            self._fingerprint("cooperative"),
            PRE_EXTRACTION_FINGERPRINTS["cooperative"])

    def test_flexible_policy_fingerprint_unchanged(self):
        self.assertEqual(
            self._fingerprint("flexible_policy"),
            PRE_EXTRACTION_FINGERPRINTS["flexible_policy"])


if __name__ == "__main__":
    unittest.main()
