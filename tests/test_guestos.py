"""Integration tests for the guest OS: IO paths, reclaim, cleancache hooks.

These exercise the invariants the whole reproduction rests on:
exclusivity between page cache and hypervisor cache, cgroup limit
enforcement, writeback ordering, swap behaviour.
"""


from repro.context import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.hypervisor import HostSpec


def build(mem_cache_mb=256, vm_mb=1024, limits=(256,), policies=None,
          seed=3):
    ctx = SimContext(seed=seed)
    host = ctx.create_host(HostSpec())
    cache = host.install_doubledecker(DDConfig(mem_capacity_mb=mem_cache_mb))
    vm = host.create_vm("vm1", memory_mb=vm_mb, vcpus=4)
    containers = []
    for idx, limit in enumerate(limits):
        policy = (policies[idx] if policies else CachePolicy.memory(100))
        containers.append(vm.create_container(f"c{idx}", limit, policy))
    return ctx, host, cache, vm, containers


def run(ctx, gen):
    return ctx.env.run(until=ctx.env.process(gen))


class TestReadPath:
    def test_first_read_comes_from_disk(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(16)
        result = run(ctx, c.read(f))
        assert result.disk_blocks == 16
        assert result.pc_hits == 0
        assert result.cc_hits == 0
        assert result.latency > 0

    def test_second_read_hits_page_cache(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(16)
        run(ctx, c.read(f))
        result = run(ctx, c.read(f))
        assert result.pc_hits == 16
        assert result.disk_blocks == 0

    def test_partial_range_read(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(16)
        result = run(ctx, c.read(f, 4, 8))
        assert result.blocks == 8

    def test_read_beyond_eof_truncated(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(4)
        result = run(ctx, c.read(f, 2, 100))
        assert result.blocks == 2


class TestExclusivity:
    def test_block_never_in_both_caches(self):
        """The central exclusivity invariant: any page-cache-resident
        block must be absent from the hypervisor cache."""
        ctx, host, cache, vm, (c,) = build(mem_cache_mb=64, limits=(64,))
        files = [c.create_file(256) for _ in range(3)]  # 48 MB total

        def driver():
            for _ in range(4):
                for f in files:
                    yield from c.read(f)
            return None

        run(ctx, driver())
        pool = cache._pools[c.pool_id]
        for key in vm.os.pagecache.entries:
            assert pool.lookup(*key) is None, f"{key} duplicated"

    def test_eviction_puts_then_reread_gets(self):
        ctx, host, cache, vm, (c,) = build(mem_cache_mb=256, limits=(64,))
        f = c.create_file(2048)  # 128 MB > 64 MB limit
        run(ctx, c.read(f))
        stats = c.cache_stats()
        assert stats.puts_stored > 0  # overflow went to the 2nd chance
        result = run(ctx, c.read(f))
        assert result.cc_hits > 0  # and was recovered from it
        # Exclusive: recovered blocks are gone from the hv cache.
        assert vm.os.stats.cc_hits > 0


class TestWritePath:
    def test_write_dirties_pages(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(8)
        run(ctx, c.write(f))
        assert len(vm.os.pagecache.dirty) == 8

    def test_fsync_cleans_and_writes(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(8)
        run(ctx, c.write(f))
        written = run(ctx, c.fsync(f))
        assert written == 8
        assert len(vm.os.pagecache.dirty) == 0
        assert host.hdd.stats.writes > 0

    def test_sync_write_combines(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(4)
        run(ctx, c.write(f, sync=True))
        assert len(vm.os.pagecache.dirty) == 0

    def test_overwrite_flushes_stale_hv_copy(self):
        """Writing a block not in the page cache must invalidate any stale
        hypervisor-cache copy (otherwise a later get returns old data)."""
        ctx, host, cache, vm, (c,) = build(mem_cache_mb=256, limits=(64,))
        f = c.create_file(2048)
        run(ctx, c.read(f))  # overflow pushed into hv cache
        pool_before = c.cache_stats().mem_used_blocks
        assert pool_before > 0
        # Overwrite the whole file; hv copies of cold blocks must vanish.
        run(ctx, c.write(f))
        stats = c.cache_stats()
        assert stats.flushes > 0

    def test_flusher_expires_dirty_pages(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(8)
        run(ctx, c.write(f))
        ctx.run(until=ctx.now + 60)  # dirty_expire (30 s) + flusher period
        assert len(vm.os.pagecache.dirty) == 0

    def test_append_extends_file(self):
        ctx, host, cache, vm, (c,) = build()
        f = c.create_file(1, append_slack=100)
        before = f.nblocks
        run(ctx, c.append(f, 4))
        assert f.nblocks == before + 4


class TestDelete:
    def test_delete_drops_pages_and_pool_content(self):
        ctx, host, cache, vm, (c,) = build(mem_cache_mb=256, limits=(64,))
        f = c.create_file(2048)
        run(ctx, c.read(f))
        assert c.cache_stats().mem_used_blocks > 0
        run(ctx, c.delete(f))
        assert c.cache_stats().mem_used_blocks == 0
        assert c.cgroup.file_blocks == 0
        assert vm.os.fs.get(f.inode) is None


class TestCgroupLimits:
    def test_file_pages_capped_by_limit(self):
        ctx, host, cache, vm, (c,) = build(limits=(64,))
        f = c.create_file(4096)  # 256 MB vs 64 MB limit
        run(ctx, c.read(f))
        limit = c.cgroup.limit_blocks
        assert c.cgroup.usage_blocks <= limit

    def test_anon_within_limit_no_swap(self):
        ctx, host, cache, vm, (c,) = build(limits=(64,))
        run(ctx, c.touch_anon(range(500)))  # ~31 MB < 64 MB
        assert c.cgroup.swap_out_blocks == 0
        assert c.cgroup.anon_blocks == 500

    def test_anon_over_limit_swaps(self):
        ctx, host, cache, vm, (c,) = build(limits=(64,))
        run(ctx, c.touch_anon(range(2000)))  # 125 MB > 64 MB
        assert c.cgroup.swap_out_blocks > 0
        assert c.cgroup.usage_blocks <= c.cgroup.limit_blocks

    def test_swapped_page_faults_back(self):
        ctx, host, cache, vm, (c,) = build(limits=(64,))
        run(ctx, c.touch_anon(range(2000)))
        swapped = next(iter(c.cgroup.anon.swapped))
        t0 = ctx.now
        run(ctx, c.touch_anon([swapped]))
        assert c.cgroup.anon.is_resident(swapped)
        assert ctx.now > t0  # swap-in cost real time
        assert c.cgroup.swap_in_blocks >= 1

    def test_mixed_anon_file_pressure_prefers_colder_class(self):
        ctx, host, cache, vm, (c,) = build(limits=(64,))
        run(ctx, c.touch_anon(range(400)))  # 25 MB anon, stays hot below
        f = c.create_file(2048)             # 128 MB of file traffic

        def driver():
            # Interleave: anon touched every round -> file pages colder.
            for start in range(0, 2048, 256):
                yield from c.read(f, start, 256)
                yield from c.touch_anon(range(400))
            return None

        run(ctx, driver())
        assert c.cgroup.swap_out_blocks == 0  # hot anon never swapped
        assert c.cgroup.anon_blocks == 400

    def test_dynamic_limit_change_applies_lazily(self):
        ctx, host, cache, vm, (c,) = build(limits=(128,))
        f = c.create_file(1600)
        run(ctx, c.read(f))
        c.set_memory_limit_mb(32)
        f2 = c.create_file(16)
        run(ctx, c.read(f2))  # next charge triggers reclaim to new limit
        assert c.cgroup.usage_blocks <= c.cgroup.limit_blocks


class TestVMLevelReclaim:
    def test_vm_capacity_enforced(self):
        ctx, host, cache, vm, containers = build(
            vm_mb=512, limits=(1024, 1024), mem_cache_mb=256
        )
        c1, c2 = containers
        f1 = c1.create_file(4096)
        f2 = c2.create_file(4096)

        def driver():
            yield from c1.read(f1)
            yield from c2.read(f2)
            return None

        run(ctx, driver())
        assert vm.os.total_usage_blocks() <= vm.os.memory_blocks


class TestMigration:
    def test_shared_file_migrates_pools(self):
        ctx, host, cache, vm, containers = build(
            limits=(64, 64),
            policies=[CachePolicy.memory(50), CachePolicy.memory(50)],
        )
        c1, c2 = containers
        f = c1.create_file(2048)
        run(ctx, c1.read(f))      # c1 owns hv copies
        assert cache._pools[c1.pool_id].used[StoreKind.MEMORY] > 0
        run(ctx, c2.read(f))      # c2 reads the shared file
        # MIGRATE_OBJECT re-homed the file: c1's pool no longer holds it.
        tree = cache._pools[c1.pool_id].files.get(f.inode)
        assert tree is None or len(tree) == 0
