"""Docs-code consistency: DESIGN.md's experiment index must reference
real files and experiments, and the README's example table must match
the examples directory."""

import re
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


class TestDesignIndex:
    def test_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert targets, "DESIGN.md lists no bench targets"
        for target in targets:
            assert (REPO / "benchmarks" / target).exists(), target

    def test_experiment_modules_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        modules = set(re.findall(r"experiments/(\w+)(?=\s|\|)", design))
        for module in modules - {"scenarios", "runner"}:
            path = REPO / "src" / "repro" / "experiments" / f"{module}.py"
            assert path.exists(), module

    def test_every_paper_artifact_indexed(self):
        design = (REPO / "DESIGN.md").read_text()
        for artifact in ("FIG-1", "FIG-2", "FIG-3", "TAB-1", "FIG-8",
                         "FIG-9", "TAB-2", "TAB-3", "FIG-10", "FIG-11",
                         "TAB-4", "FIG-12", "FIG-13"):
            assert artifact in design, f"{artifact} missing from DESIGN.md"


class TestReadme:
    def test_example_table_matches_directory(self):
        readme = (REPO / "README.md").read_text()
        listed = set(re.findall(r"`(\w+\.py)` \|", readme))
        actual = {p.name for p in (REPO / "examples").glob("*.py")}
        assert listed == actual

    def test_docs_links_resolve(self):
        readme = (REPO / "README.md").read_text()
        for link in re.findall(r"\]\(([\w/]+\.md)\)", readme):
            assert (REPO / link).exists(), link


class TestExperimentsRecord:
    def test_every_artifact_recorded(self):
        record = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("FIG-1", "FIG-3", "TAB-1", "FIG-8", "TAB-2",
                         "TAB-3", "FIG-10", "FIG-11", "TAB-4", "FIG-12",
                         "FIG-13"):
            assert artifact in record, f"{artifact} missing from EXPERIMENTS.md"

    def test_known_deviations_documented(self):
        record = (REPO / "EXPERIMENTS.md").read_text()
        assert "deviation" in record.lower()
