"""Tests for the fileserver and OLTP workload profiles."""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.workloads import FileserverWorkload, OLTPWorkload


def build(limit_mb=256):
    ctx = SimContext(seed=37)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=128))
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    container = vm.create_container("c", limit_mb, CachePolicy.memory(100))
    return ctx, host, vm, container


class TestFileserver:
    def test_mixed_read_write(self):
        ctx, host, vm, c = build()
        workload = FileserverWorkload(nfiles=300, threads=1)
        workload.start(c, ctx.streams)
        ctx.run(until=30)
        assert workload.counters.ops > 0
        assert workload.counters.bytes_read > 0
        assert workload.counters.bytes_written > 0
        # Churn: files created and deleted.
        assert vm.os.fs.deleted > 0

    def test_write_heavier_than_webserver(self):
        """The fileserver profile's write:read byte ratio must exceed the
        webserver's (its defining property)."""
        from repro.workloads import WebserverWorkload

        ctx, host, vm, c = build()
        fileserver = FileserverWorkload(nfiles=300, threads=1)
        fileserver.start(c, ctx.streams)
        ctx.run(until=30)
        fs_ratio = (fileserver.counters.bytes_written
                    / max(1, fileserver.counters.bytes_read))

        ctx2, host2, vm2, c2 = build()
        webserver = WebserverWorkload(nfiles=300, threads=1)
        webserver.start(c2, ctx2.streams)
        ctx2.run(until=30)
        web_ratio = (webserver.counters.bytes_written
                     / max(1, webserver.counters.bytes_read))
        assert fs_ratio > web_ratio


class TestOLTP:
    def test_validation(self):
        with pytest.raises(ValueError):
            OLTPWorkload(write_fraction=1.5)

    def test_random_small_reads(self):
        ctx, host, vm, c = build()
        workload = OLTPWorkload(datafile_mb=512, threads=2,
                                write_fraction=0.0)
        workload.start(c, ctx.streams)
        ctx.run(until=30)
        assert workload.counters.ops > 0
        assert workload.counters.bytes_written == 0
        # Random single-block reads dominate (no sequential streaks).
        assert host.hdd.stats.random_reads > host.hdd.stats.sequential_reads

    def test_commits_fsync_the_log(self):
        ctx, host, vm, c = build()
        workload = OLTPWorkload(datafile_mb=256, threads=1,
                                write_fraction=1.0, commit_every=1)
        workload.start(c, ctx.streams)
        ctx.run(until=30)
        assert host.hdd.stats.writes > 0
        assert workload.counters.bytes_written > 0

    def test_datafile_larger_than_container_uses_hvcache(self):
        ctx, host, vm, c = build(limit_mb=64)
        workload = OLTPWorkload(datafile_mb=256, threads=2,
                                write_fraction=0.1)
        workload.start(c, ctx.streams)
        ctx.run(until=60)
        stats = c.cache_stats()
        assert stats.puts_stored > 0  # overflow reached the 2nd chance
