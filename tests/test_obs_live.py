"""Live telemetry: wall-clock tracer, ops logging, snapshots, sidecar.

Unit tests inject a fake nanosecond clock so spans, slow-op windows, and
snapshot timestamps are exact; the integration tests at the bottom run a
real server with a :class:`LiveTracer` attached and push the resulting
trace through the same strict validator and Perfetto exporter the
simulated traces use.
"""

import asyncio
import io
import json
import tempfile
import unittest
from pathlib import Path

from repro.metrics import check_exposition
from repro.obs import (
    events_to_perfetto,
    parse_jsonl,
    to_jsonl,
    validate_trace,
)
from repro.obs.export import time_scale_us
from repro.obs.live import (
    LiveTracer,
    OpsLogger,
    SnapshotWriter,
    TelemetrySidecar,
    bind_store_probe,
    write_trace,
)
from repro.service import DiskStore, ServiceCache
from repro.service.server import CacheServer


class FakeClock:
    """Deterministic monotonic-ns clock: +step per call, settable."""

    def __init__(self, start=1_000, step=100):
        self.t = start
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class LiveTracerTests(unittest.TestCase):
    def test_span_records_wallclock_duration(self):
        clock = FakeClock(start=0, step=50)
        tracer = LiveTracer(clock=clock)
        with tracer.span("cmd.get", tenant="t0") as span:
            span.note(hit=True)
        (event,) = list(tracer.events)
        self.assertEqual(event["name"], "cmd.get")
        self.assertEqual(event["dur"], 50)
        self.assertEqual(event["args"]["tenant"], "t0")
        self.assertTrue(event["args"]["hit"])

    def test_span_closes_on_exception(self):
        tracer = LiveTracer(clock=FakeClock())
        with self.assertRaises(RuntimeError):
            with tracer.span("cmd.set"):
                raise RuntimeError("boom")
        self.assertEqual(tracer.open_spans, 0)
        self.assertEqual(len(tracer.events), 1)

    def test_meta_declares_ns_unit_and_validates(self):
        clock = FakeClock()
        tracer = LiveTracer(clock=clock)
        with tracer.span("cmd.get"):
            pass
        tracer.instant("conn.accept", tracer.clock(), conn=1)
        meta, events = parse_jsonl(to_jsonl(tracer))
        self.assertEqual(meta["time_unit"], "ns")
        self.assertEqual(validate_trace(meta, events), [])

    def test_time_scale_us_ns_vs_simulated(self):
        self.assertEqual(time_scale_us({"time_unit": "ns"}), 1e-3)
        self.assertEqual(time_scale_us({}), 1e6)

    def test_perfetto_export_scales_ns_to_us(self):
        tracer = LiveTracer(clock=FakeClock(start=0, step=500))
        with tracer.span("cmd.get"):
            pass
        meta, events = parse_jsonl(to_jsonl(tracer))
        payload = json.loads(events_to_perfetto(meta, events))
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        self.assertEqual(len(spans), 1)
        self.assertEqual(spans[0]["dur"], 0.5)  # 500 ns == 0.5 us

    def test_histograms_are_ns_bucketed(self):
        tracer = LiveTracer(clock=FakeClock())
        hist = tracer.histogram("svc.lat")
        hist.add(750)
        # A simulated-second histogram would park 750 (interpreted as
        # seconds' magnitude ns) far outside bucket 0; ns buckets keep
        # sub-microsecond resolution.
        self.assertNotIn(0, hist._counts)
        self.assertEqual(hist._lo, 1.0)

    def test_write_trace_round_trips(self):
        tracer = LiveTracer(clock=FakeClock())
        with tracer.span("cmd.get"):
            pass
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "trace.jsonl"
            write_trace(tracer, str(path))
            meta, events = parse_jsonl(path.read_text())
        self.assertEqual(validate_trace(meta, events), [])
        self.assertEqual(len(events), 1)


class OpsLoggerTests(unittest.TestCase):
    def _logger(self, **kwargs):
        stream = io.StringIO()
        clock = kwargs.pop("clock", FakeClock(start=0, step=1))
        return OpsLogger(stream=stream, clock=clock, **kwargs), stream, clock

    def test_log_is_one_json_object_per_line(self):
        ops, stream, _ = self._logger()
        ops.log("server.start", port=11311)
        ops.log("server.stop")
        lines = stream.getvalue().splitlines()
        self.assertEqual(len(lines), 2)
        first = json.loads(lines[0])
        self.assertEqual(first["event"], "server.start")
        self.assertEqual(first["port"], 11311)
        self.assertIn("t_ns", first)
        self.assertEqual(ops.emitted, 2)

    def test_slow_op_threshold(self):
        ops, stream, _ = self._logger(slow_op_ns=1_000_000)
        self.assertFalse(ops.slow_op("get", "t0", 999_999))
        self.assertTrue(ops.slow_op("get", "t0", 1_000_000))
        record = json.loads(stream.getvalue())
        self.assertEqual(record["event"], "slow_op")
        self.assertEqual(record["op"], "get")
        self.assertEqual(record["threshold_ns"], 1_000_000)

    def test_slow_op_rate_limit_and_window_reset(self):
        clock = FakeClock(start=0, step=1)
        ops, stream, _ = self._logger(slow_op_ns=1, slow_op_per_s=2,
                                      clock=clock)
        self.assertTrue(ops.slow_op("get", "t0", 10))
        self.assertTrue(ops.slow_op("get", "t0", 10))
        self.assertFalse(ops.slow_op("get", "t0", 10))  # over the limit
        self.assertEqual(ops.suppressed, 1)
        clock.t += 2_000_000_000  # two seconds later: fresh window
        self.assertTrue(ops.slow_op("get", "t0", 10))
        self.assertEqual(
            sum(1 for line in stream.getvalue().splitlines()
                if json.loads(line)["event"] == "slow_op"), 3)

    def test_rejects_nonpositive_rate(self):
        with self.assertRaises(ValueError):
            OpsLogger(stream=io.StringIO(), slow_op_per_s=0)


class SnapshotWriterTests(unittest.TestCase):
    def test_deltas_track_only_changed_counters(self):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=1.0)
            path = Path(tmp) / "snap.jsonl"
            ops_stream = io.StringIO()
            ops = OpsLogger(stream=ops_stream, clock=FakeClock())
            snap = SnapshotWriter(str(path), cache, ops=ops,
                                  clock=FakeClock())
            first = snap.write_once()
            # Seq 0 baselines the static host gauges; no tenant exists yet.
            self.assertTrue(all(key.startswith("_host.") for key in first),
                            first)
            cache.set("t0", "k", b"v")
            cache.get("t0", "k")
            second = snap.write_once()
            self.assertEqual(second["t0.puts"], 1)
            self.assertEqual(second["t0.gets"], 1)
            self.assertNotIn("t0.evictions", second)  # unchanged: no delta
            third = snap.write_once()
            self.assertEqual(third, {})
            records = [json.loads(line)
                       for line in path.read_text().splitlines()]
            self.assertEqual([r["seq"] for r in records], [0, 1, 2])
            self.assertEqual(records[1]["totals"]["t0.puts_stored"], 1)
            # No evictions happened, so no pressure event was logged.
            self.assertNotIn("eviction_pressure", ops_stream.getvalue())
            cache.close()

    def test_eviction_delta_emits_pressure_event(self):
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=4096 * 8 / (1 << 20),
                                 eviction_batch_mb=4096 / (1 << 20))
            path = Path(tmp) / "snap.jsonl"
            ops_stream = io.StringIO()
            ops = OpsLogger(stream=ops_stream, clock=FakeClock())
            snap = SnapshotWriter(str(path), cache, ops=ops,
                                  clock=FakeClock())
            snap.write_once()
            payload = b"x" * 4096
            for i in range(16):  # twice the capacity: must evict
                cache.set("t0", f"k{i}", payload)
            delta = snap.write_once()
            self.assertGreater(delta["t0.evictions"], 0)
            events = [json.loads(line)
                      for line in ops_stream.getvalue().splitlines()]
            pressure = [e for e in events
                        if e["event"] == "eviction_pressure"]
            self.assertEqual(len(pressure), 1)
            self.assertEqual(pressure[0]["evicted_blocks"],
                             delta["t0.evictions"])
            cache.close()

    def test_rejects_nonpositive_interval(self):
        with self.assertRaises(ValueError):
            SnapshotWriter("x.jsonl", cache=None, interval_s=0)


class StoreProbeTests(unittest.TestCase):
    def test_probe_records_spans_and_histograms(self):
        clock = FakeClock(start=10_000, step=10)
        tracer = LiveTracer(clock=clock)
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=1.0, tracer=tracer)
            tracer.bind_registry(cache.registry)
            bind_store_probe(store, tracer, registry=cache.registry)
            cache.set("t0", "k", b"value")
            cache.get("t0", "k")
            cache.close()
        names = {event["name"] for event in tracer.events}
        self.assertIn("store.set", names)
        self.assertIn("store.get", names)
        self.assertIn("svc.put", names)
        self.assertIn("svc.get", names)
        get_hist = cache.registry.wallclock_histogram("service.disk.get")
        self.assertGreaterEqual(get_hist.count, 1)
        # Probe spans re-base onto the tracer clock: every event's end
        # must be at or before "now" on that clock.
        now = clock.t
        for event in tracer.events:
            self.assertLessEqual(event["ts"] + event.get("dur", 0), now)


class SidecarTests(unittest.IsolatedAsyncioTestCase):
    async def asyncSetUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        store = DiskStore(self._tmp.name, sync_writes=False)
        self.cache = ServiceCache(store, capacity_mb=1.0)
        self.server = CacheServer(self.cache, port=0)
        await self.server.start()
        self.sidecar = TelemetrySidecar(
            self.cache, protocol=self.server.protocol, port=0)
        await self.sidecar.start()

    async def asyncTearDown(self):
        self.sidecar.close()
        await self.sidecar.wait_closed()
        await self.server.close()
        self._tmp.cleanup()

    async def http(self, request: str):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", self.sidecar.port)
        writer.write(request.encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split()[1])
        return status, head.decode(), body.decode()

    async def test_metrics_endpoint_is_valid_exposition(self):
        self.cache.set("tenant0", "k", b"v")
        self.cache.get("tenant0", "k")
        self.cache.get("tenant0", "missing")
        status, head, body = await self.http(
            "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        self.assertEqual(status, 200)
        self.assertIn("version=0.0.4", head)
        self.assertEqual(check_exposition(body), [])
        self.assertIn('dd_tenant_gets_total{tenant="tenant0"} 2', body)
        self.assertIn('dd_tenant_get_hits_total{tenant="tenant0"} 1', body)
        self.assertIn('dd_tenant_get_misses_total{tenant="tenant0"} 1',
                      body)
        self.assertIn("dd_cache_used_blocks", body)
        self.assertEqual(self.sidecar.scrapes, 1)

    async def test_healthz_and_stats_json(self):
        # Drive one set over the wire so the protocol layer records a
        # latency sample (in-process cache calls bypass those histograms).
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", self.server.port)
        writer.write(b"set k 0 0 1\r\nv\r\nquit\r\n")
        await writer.drain()
        await reader.read()
        writer.close()
        status, _, body = await self.http(
            "GET /healthz HTTP/1.0\r\n\r\n")
        self.assertEqual(status, 200)
        self.assertEqual(json.loads(body), {"ok": True})
        status, _, body = await self.http(
            "GET /stats.json HTTP/1.0\r\n\r\n")
        self.assertEqual(status, 200)
        payload = json.loads(body)
        self.assertEqual(payload["tenants"]["default"]["puts_stored"], 1)
        self.assertIn("used_blocks", payload["host"])
        self.assertEqual(payload["server"]["connections"], 1)
        self.assertIn("set", payload["latency"])
        self.assertGreater(payload["latency"]["set"]["p99_ns"], 0)

    async def test_unknown_path_404_and_post_405(self):
        status, _, _ = await self.http("GET /nope HTTP/1.0\r\n\r\n")
        self.assertEqual(status, 404)
        status, _, _ = await self.http("POST /metrics HTTP/1.0\r\n\r\n")
        self.assertEqual(status, 405)

    async def test_head_omits_body(self):
        status, head, body = await self.http(
            "HEAD /healthz HTTP/1.0\r\n\r\n")
        self.assertEqual(status, 200)
        self.assertEqual(body, "")
        self.assertIn("Content-Length:", head)


class LiveTraceEndToEndTests(unittest.IsolatedAsyncioTestCase):
    """A traced server under real traffic produces a strict-valid trace."""

    async def test_full_request_path_trace_validates(self):
        tracer = LiveTracer()
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=1.0, tracer=tracer)
            tracer.bind_registry(cache.registry)
            bind_store_probe(store, tracer, registry=cache.registry)
            server = CacheServer(cache, port=0, tracer=tracer)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"set k 0 0 3\r\nabc\r\nget k\r\nquit\r\n")
            await writer.drain()
            await reader.read()
            writer.close()
            await server.close()
        meta, events = parse_jsonl(to_jsonl(tracer))
        self.assertEqual(validate_trace(meta, events), [])  # strict
        names = {event["name"] for event in events}
        for expected in ("conn", "conn.accept", "cmd.set", "cmd.get",
                         "svc.put", "svc.get", "store.set", "store.get"):
            self.assertIn(expected, names)
        # Perfetto export of the live trace parses and carries ns->us.
        payload = json.loads(events_to_perfetto(meta, events))
        self.assertTrue(payload["traceEvents"])


if __name__ == "__main__":
    unittest.main()
