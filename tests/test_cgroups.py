"""Tests for the cgroup subsystem and its cleancache event wiring."""

import pytest

from repro.cgroups import Cgroup, CgroupSubsystem
from repro.core import CachePolicy


class FakeCleancache:
    """Records the control-path events the subsystem must emit."""

    def __init__(self):
        self.events = []
        self._next = 1

    def create_pool(self, name, policy):
        self.events.append(("create", name, policy))
        pool_id = self._next
        self._next += 1
        return pool_id

    def destroy_pool(self, pool_id):
        self.events.append(("destroy", pool_id))

    def set_policy(self, pool_id, policy):
        self.events.append(("set_policy", pool_id, policy))

    def get_stats(self, pool_id):
        self.events.append(("stats", pool_id))
        return None


class TestCgroup:
    def test_limit_validation(self):
        with pytest.raises(ValueError):
            Cgroup(1, "c", 0, CachePolicy.none())

    def test_usage_accounting(self):
        cgroup = Cgroup(1, "c", 100, CachePolicy.none())
        cgroup.file_blocks = 30
        cgroup.anon.map_new(1, 1)
        assert cgroup.usage_blocks == 31
        assert cgroup.headroom() == 69

    def test_set_limit(self):
        cgroup = Cgroup(1, "c", 100, CachePolicy.none())
        cgroup.set_limit(50)
        assert cgroup.limit_blocks == 50
        with pytest.raises(ValueError):
            cgroup.set_limit(0)


class TestCgroupSubsystem:
    def test_create_assigns_pool_id(self):
        cc = FakeCleancache()
        subsystem = CgroupSubsystem(cc)
        cgroup = subsystem.create("web", 100, CachePolicy.memory(50))
        assert cgroup.pool_id == 1
        assert cc.events[0][0] == "create"
        assert len(subsystem) == 1

    def test_duplicate_name_rejected(self):
        subsystem = CgroupSubsystem(FakeCleancache())
        subsystem.create("web", 100, CachePolicy.none())
        with pytest.raises(ValueError):
            subsystem.create("web", 100, CachePolicy.none())

    def test_destroy_emits_event_and_clears(self):
        cc = FakeCleancache()
        subsystem = CgroupSubsystem(cc)
        cgroup = subsystem.create("web", 100, CachePolicy.memory(50))
        cgroup.anon.map_new(1, 1)
        subsystem.destroy(cgroup)
        assert ("destroy", 1) in cc.events
        assert not cgroup.alive
        assert cgroup.anon.resident_pages == 0
        assert len(subsystem) == 0

    def test_destroy_idempotent(self):
        cc = FakeCleancache()
        subsystem = CgroupSubsystem(cc)
        cgroup = subsystem.create("web", 100, CachePolicy.none())
        subsystem.destroy(cgroup)
        subsystem.destroy(cgroup)  # second call is a no-op
        assert sum(1 for e in cc.events if e[0] == "destroy") == 1

    def test_set_policy_propagates(self):
        cc = FakeCleancache()
        subsystem = CgroupSubsystem(cc)
        cgroup = subsystem.create("web", 100, CachePolicy.memory(50))
        new_policy = CachePolicy.ssd(100)
        subsystem.set_policy(cgroup, new_policy)
        assert cgroup.policy is new_policy
        assert ("set_policy", 1, new_policy) in cc.events

    def test_by_name(self):
        subsystem = CgroupSubsystem(FakeCleancache())
        cgroup = subsystem.create("db", 100, CachePolicy.none())
        assert subsystem.by_name("db") is cgroup
        with pytest.raises(KeyError):
            subsystem.by_name("missing")

    def test_stats_delegates(self):
        cc = FakeCleancache()
        subsystem = CgroupSubsystem(cc)
        cgroup = subsystem.create("web", 100, CachePolicy.memory(50))
        subsystem.stats(cgroup)
        assert ("stats", 1) in cc.events

    def test_ids_monotonic(self):
        subsystem = CgroupSubsystem(FakeCleancache())
        c1 = subsystem.create("a", 10, CachePolicy.none())
        subsystem.destroy(c1)
        c2 = subsystem.create("b", 10, CachePolicy.none())
        assert c2.cgroup_id > c1.cgroup_id
