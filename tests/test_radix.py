"""Unit and property tests for the radix tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RadixTree


class TestRadixBasics:
    def test_empty_tree(self):
        tree = RadixTree()
        assert len(tree) == 0
        assert not tree
        assert tree.get(0) is None
        assert 5 not in tree

    def test_insert_get(self):
        tree = RadixTree()
        tree.insert(42, "x")
        assert tree.get(42) == "x"
        assert 42 in tree
        assert len(tree) == 1

    def test_insert_replaces(self):
        tree = RadixTree()
        tree.insert(7, "old")
        tree.insert(7, "new")
        assert tree.get(7) == "new"
        assert len(tree) == 1

    def test_negative_key_rejected(self):
        tree = RadixTree()
        with pytest.raises(ValueError):
            tree.insert(-1, "x")

    def test_none_value_rejected(self):
        tree = RadixTree()
        with pytest.raises(ValueError):
            tree.insert(1, None)

    def test_get_default(self):
        tree = RadixTree()
        assert tree.get(9, default="fallback") == "fallback"

    def test_remove_returns_value(self):
        tree = RadixTree()
        tree.insert(3, "v")
        assert tree.remove(3) == "v"
        assert tree.remove(3) is None
        assert len(tree) == 0

    def test_growth_preserves_small_keys(self):
        tree = RadixTree()
        tree.insert(1, "small")
        tree.insert(10**9, "big")
        assert tree.get(1) == "small"
        assert tree.get(10**9) == "big"

    def test_items_sorted(self):
        tree = RadixTree()
        keys = [500, 3, 64, 4096, 0, 2**30]
        for key in keys:
            tree.insert(key, key * 2)
        assert [k for k, _ in tree.items()] == sorted(keys)
        assert all(v == k * 2 for k, v in tree.items())

    def test_clear(self):
        tree = RadixTree()
        for key in range(100):
            tree.insert(key, key)
        tree.clear()
        assert len(tree) == 0
        assert tree.get(5) is None

    def test_remove_prunes_to_empty(self):
        tree = RadixTree()
        tree.insert(123456, "x")
        tree.remove(123456)
        assert tree._root is None  # fully pruned, no leak

    def test_dense_range(self):
        tree = RadixTree()
        for key in range(1000):
            tree.insert(key, key)
        assert len(tree) == 1000
        for key in range(1000):
            assert tree.get(key) == key
        for key in range(0, 1000, 2):
            tree.remove(key)
        assert len(tree) == 500
        assert tree.get(2) is None
        assert tree.get(3) == 3

    def test_keys_iterator(self):
        tree = RadixTree()
        tree.insert(5, "a")
        tree.insert(1, "b")
        assert list(tree.keys()) == [1, 5]


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=2**36), st.integers(),
                       max_size=200))
def test_radix_matches_dict(model):
    """The radix tree must behave exactly like a dict over int keys."""
    tree = RadixTree()
    for key, value in model.items():
        tree.insert(key, value + 1)  # +1 avoids forbidden None-ish issues
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.get(key) == value + 1
    assert dict(tree.items()) == {k: v + 1 for k, v in model.items()}


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "remove"]),
                  st.integers(min_value=0, max_value=5000)),
        max_size=300,
    )
)
def test_radix_random_ops_match_dict(ops):
    """Random interleavings of insert/remove stay consistent with a dict."""
    tree = RadixTree()
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key)
            model[key] = key
        else:
            assert tree.remove(key) == model.pop(key, None)
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
