"""Tests for deterministic RNG streams and the Zipf sampler."""

import collections

import pytest

from repro.simkernel import RandomStreams, zipf_ranks


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_same_seed_reproducible(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(3)
        s1.stream("first")
        v1 = s1.stream("second").random()
        s2 = RandomStreams(3)
        v2 = s2.stream("second").random()
        assert v1 == v2

    def test_spawn_namespaces_seeds(self):
        parent = RandomStreams(5)
        childa = parent.spawn("a").stream("x").random()
        childb = parent.spawn("b").stream("x").random()
        assert childa != childb


class TestZipf:
    def test_rejects_bad_parameters(self):
        streams = RandomStreams(0)
        with pytest.raises(ValueError):
            zipf_ranks(streams.stream("z"), 0)
        with pytest.raises(ValueError):
            zipf_ranks(streams.stream("z"), 10, theta=1.5)

    def test_samples_in_range(self):
        streams = RandomStreams(0)
        sample = zipf_ranks(streams.stream("z"), 100)
        for _ in range(2000):
            assert 0 <= sample() < 100

    def test_rank_zero_is_hottest(self):
        streams = RandomStreams(0)
        sample = zipf_ranks(streams.stream("z"), 1000)
        counts = collections.Counter(sample() for _ in range(20000))
        assert counts[0] == max(counts.values())

    def test_skew_increases_with_theta(self):
        streams = RandomStreams(0)
        mild = zipf_ranks(streams.stream("mild"), 1000, theta=0.5)
        hot = zipf_ranks(streams.stream("hot"), 1000, theta=0.99)
        mild_top = sum(1 for _ in range(10000) if mild() == 0)
        hot_top = sum(1 for _ in range(10000) if hot() == 0)
        assert hot_top > mild_top

    def test_single_item_always_zero(self):
        streams = RandomStreams(0)
        sample = zipf_ranks(streams.stream("z"), 1)
        assert all(sample() == 0 for _ in range(100))

    def test_large_n_uses_tail_approximation(self):
        streams = RandomStreams(0)
        sample = zipf_ranks(streams.stream("z"), 2_000_000)
        values = [sample() for _ in range(2000)]
        assert all(0 <= v < 2_000_000 for v in values)
        # Hot head still dominates even with the approximate zeta.
        assert sum(1 for v in values if v < 20) > 50
