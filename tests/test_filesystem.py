"""Unit tests for the guest filesystem (inodes, extents, appends)."""

import pytest

from repro.guest import Filesystem


class TestFilesystem:
    def test_create_assigns_unique_inodes(self):
        fs = Filesystem()
        f1 = fs.create_file(1, 10)
        f2 = fs.create_file(1, 10)
        assert f1.inode != f2.inode
        assert len(fs) == 2

    def test_extents_do_not_overlap(self):
        fs = Filesystem()
        files = [fs.create_file(1, 100) for _ in range(10)]
        spans = sorted(
            (f.disk_start, f.disk_start + f.max_blocks) for f in files
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_disk_base_offsets_extents(self):
        fs = Filesystem(disk_base=10_000)
        f = fs.create_file(1, 10)
        assert f.disk_start >= 10_000

    def test_negative_size_rejected(self):
        fs = Filesystem()
        with pytest.raises(ValueError):
            fs.create_file(1, -1)

    def test_keys_respect_range(self):
        fs = Filesystem()
        f = fs.create_file(1, 10)
        assert f.keys() == [(f.inode, b) for b in range(10)]
        assert f.keys(8, 5) == [(f.inode, 8), (f.inode, 9)]
        assert f.keys(2, 3) == [(f.inode, 2), (f.inode, 3), (f.inode, 4)]

    def test_disk_offset(self):
        fs = Filesystem()
        f = fs.create_file(1, 10)
        assert f.disk_offset(3) == f.disk_start + 3

    def test_extend_within_slack(self):
        fs = Filesystem()
        f = fs.create_file(1, 2, append_slack=8)
        start = fs.extend_file(f, 3)
        assert start == 2
        assert f.nblocks == 5

    def test_extend_caps_at_max_and_wraps(self):
        fs = Filesystem()
        f = fs.create_file(1, 0, append_slack=4)
        fs.extend_file(f, 4)
        assert f.nblocks == 4
        start = fs.extend_file(f, 2)  # full: wraps within the extent
        assert 0 <= start <= 2
        assert f.nblocks == 4

    def test_extend_validates(self):
        fs = Filesystem()
        f = fs.create_file(1, 1)
        with pytest.raises(ValueError):
            fs.extend_file(f, 0)

    def test_delete(self):
        fs = Filesystem()
        f = fs.create_file(1, 10)
        fs.delete_file(f)
        assert fs.get(f.inode) is None
        assert fs.deleted == 1
        fs.delete_file(f)  # idempotent
        assert fs.deleted == 1
