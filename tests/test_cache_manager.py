"""Unit + invariant tests for the DoubleDecker cache manager."""

import pytest

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.simkernel import Environment
from repro.storage import SSD

BLK = 64 * 1024  # 64 KiB blocks -> 16 blocks per MiB


def make_cache(mem_mb=1.0, ssd_mb=0.0, batch_mb=2.0, trickle=False, env=None):
    env = env or Environment()
    ssd = SSD(env, BLK) if ssd_mb > 0 else None
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=mem_mb, ssd_capacity_mb=ssd_mb,
                 eviction_batch_mb=batch_mb, trickle_down=trickle),
        BLK,
        ssd_device=ssd,
    )
    return env, cache


def run_gen(env, gen):
    """Drive a data-path generator to completion, returning its value."""
    return env.run(until=env.process(gen))


class TestLifecycle:
    def test_register_vm_assigns_ids(self):
        _, cache = make_cache()
        assert cache.register_vm("a") == 1
        assert cache.register_vm("b") == 2

    def test_unknown_vm_rejected(self):
        _, cache = make_cache()
        with pytest.raises(KeyError):
            cache.create_pool(99, "x", CachePolicy.memory(100))

    def test_pool_ids_unique_across_vms(self):
        _, cache = make_cache()
        vm1 = cache.register_vm("a")
        vm2 = cache.register_vm("b")
        p1 = cache.create_pool(vm1, "c1", CachePolicy.memory(100))
        p2 = cache.create_pool(vm2, "c2", CachePolicy.memory(100))
        assert p1 != p2

    def test_ssd_policy_without_ssd_rejected(self):
        _, cache = make_cache(mem_mb=1, ssd_mb=0)
        vm = cache.register_vm("a")
        with pytest.raises(ValueError):
            cache.create_pool(vm, "c", CachePolicy.ssd(100))

    def test_destroy_pool_frees_usage(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(8)]))
        assert cache.used[StoreKind.MEMORY] == 8
        cache.destroy_pool(vm, pool)
        assert cache.used[StoreKind.MEMORY] == 0

    def test_unregister_vm_destroys_pools(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        cache.unregister_vm(vm)
        assert cache.used[StoreKind.MEMORY] == 0
        assert vm not in cache.vms


class TestDataPath:
    def test_put_then_get_is_exclusive(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        keys = [(1, 0), (1, 1)]
        stored = run_gen(env, cache.put_many(vm, pool, keys))
        assert stored == 2
        found = run_gen(env, cache.get_many(vm, pool, keys))
        assert found == set(keys)
        # Exclusive: a second get misses.
        found2 = run_gen(env, cache.get_many(vm, pool, keys))
        assert found2 == set()
        assert cache.used[StoreKind.MEMORY] == 0

    def test_get_miss_returns_empty(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        assert run_gen(env, cache.get_many(vm, pool, [(9, 9)])) == set()

    def test_put_to_none_policy_rejected(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.none())
        assert run_gen(env, cache.put_many(vm, pool, [(1, 0)])) == 0

    def test_flush_removes_blocks(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0), (1, 1)]))
        assert cache.flush_many(vm, pool, [(1, 0)]) == 1
        assert cache.used[StoreKind.MEMORY] == 1

    def test_flush_inode_removes_whole_file(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(4)]))
        run_gen(env, cache.put_many(vm, pool, [(2, 0)]))
        assert cache.flush_inode(vm, pool, 1) == 4
        assert cache.used[StoreKind.MEMORY] == 1

    def test_migrate_moves_file_between_pools(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "c2", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, 0), (1, 1)]))
        moved = cache.migrate_objects(vm, p1, p2, 1)
        assert moved == 2
        assert run_gen(env, cache.get_many(vm, p2, [(1, 0), (1, 1)])) == {
            (1, 0), (1, 1)
        }

    def test_ssd_put_and_get(self):
        env, cache = make_cache(mem_mb=0, ssd_mb=10)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.ssd(100))
        stored = run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(5)]))
        assert stored == 5
        t0 = env.now
        found = run_gen(env, cache.get_many(vm, pool, [(1, i) for i in range(5)]))
        assert len(found) == 5
        assert env.now > t0  # SSD reads take simulated time


class TestEviction:
    def test_resource_conservative_growth(self):
        """A pool may exceed its entitlement while the store has room."""
        env, cache = make_cache(mem_mb=1)  # 16 blocks
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(50))
        cache.create_pool(vm, "c2", CachePolicy.memory(50))
        stored = run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(12)]))
        assert stored == 12  # entitlement is 8, but the store had room
        assert cache.store_counters[StoreKind.MEMORY].evictions == 0

    def test_eviction_only_when_full(self):
        env, cache = make_cache(mem_mb=1, batch_mb=0.125)  # batch = 2 blocks
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "c2", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(16)]))
        assert cache.used[StoreKind.MEMORY] == 16
        # p2's put forces eviction; victim must be the over-used p1.
        run_gen(env, cache.put_many(vm, p2, [(2, 0)]))
        assert cache._pools[p1].stats.evictions > 0
        assert cache._pools[p2].stats.evictions == 0
        assert cache.used[StoreKind.MEMORY] <= 16

    def test_victim_fifo_order(self):
        env, cache = make_cache(mem_mb=1, batch_mb=0.125)
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "c2", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(16)]))
        run_gen(env, cache.put_many(vm, p2, [(2, 0), (2, 1)]))
        # Oldest of p1 (blocks 0,1) must be gone; newest survive.
        found = run_gen(env, cache.get_many(vm, p1, [(1, 0), (1, 1), (1, 15)]))
        assert (1, 15) in found
        assert (1, 0) not in found

    def test_capacity_never_exceeded(self):
        env, cache = make_cache(mem_mb=1)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(100)]))
        assert cache.used[StoreKind.MEMORY] <= cache.capacities[StoreKind.MEMORY]

    def test_two_level_selection_picks_overused_vm(self):
        env, cache = make_cache(mem_mb=1, batch_mb=0.125)
        vm1 = cache.register_vm("vm1", weight=50)
        vm2 = cache.register_vm("vm2", weight=50)
        p1 = cache.create_pool(vm1, "c1", CachePolicy.memory(100))
        p2 = cache.create_pool(vm2, "c2", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm1, p1, [(1, i) for i in range(16)]))
        run_gen(env, cache.put_many(vm2, p2, [(2, 0)]))
        assert cache._pools[p1].stats.evictions > 0
        assert cache._pools[p2].stats.evictions == 0

    def test_shrink_capacity_evicts(self):
        env, cache = make_cache(mem_mb=2)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(32)]))
        cache.set_capacity(StoreKind.MEMORY, 1.0)
        assert cache.used[StoreKind.MEMORY] <= 16


class TestHybridAndTrickle:
    def test_hybrid_spills_to_ssd_after_mem_entitlement(self):
        env, cache = make_cache(mem_mb=1, ssd_mb=10)
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.hybrid(100, 100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(20)]))
        p = cache._pools[pool]
        assert p.used[StoreKind.MEMORY] == 16  # mem entitlement filled first
        assert p.used[StoreKind.SSD] == 4      # overflow spilled

    def test_trickle_down_rehomes_evicted_blocks(self):
        env, cache = make_cache(mem_mb=1, ssd_mb=10, batch_mb=0.125,
                                trickle=True)
        vm = cache.register_vm("a")
        p1 = cache.create_pool(vm, "c1", CachePolicy.memory(50))
        p2 = cache.create_pool(vm, "c2", CachePolicy.memory(50))
        run_gen(env, cache.put_many(vm, p1, [(1, i) for i in range(16)]))
        run_gen(env, cache.put_many(vm, p2, [(2, 0)]))
        p = cache._pools[p1]
        assert p.used[StoreKind.SSD] > 0  # evicted blocks trickled down
        # And they are still retrievable.
        found = run_gen(env, cache.get_many(vm, p1, [(1, 0)]))
        assert found == {(1, 0)}

    def test_policy_switch_to_none_drops_content(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0)]))
        cache.set_policy(vm, pool, CachePolicy.none())
        assert cache.used[StoreKind.MEMORY] == 0


class TestStats:
    def test_pool_stats_counts(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, 0), (1, 1)]))
        run_gen(env, cache.get_many(vm, pool, [(1, 0), (9, 9)]))
        stats = cache.pool_stats(vm, pool)
        assert stats.puts == 2
        assert stats.puts_stored == 2
        assert stats.gets == 2
        assert stats.get_hits == 1
        assert stats.hit_ratio == pytest.approx(0.5)

    def test_pool_used_mb(self):
        env, cache = make_cache()
        vm = cache.register_vm("a")
        pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
        run_gen(env, cache.put_many(vm, pool, [(1, i) for i in range(16)]))
        assert cache.pool_used_mb(pool) == pytest.approx(1.0)
        assert cache.vm_used_mb(vm) == pytest.approx(1.0)

    def test_store_stats_capacity(self):
        _, cache = make_cache(mem_mb=2)
        stats = cache.store_stats()
        assert stats[StoreKind.MEMORY].capacity_blocks == 32
