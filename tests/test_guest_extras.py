"""Additional guest-OS edge cases: appends, wraps, fsync corners,
flusher interactions, multi-container file sharing accounting."""


from repro import SimContext
from repro.core import CachePolicy, DDConfig


def build(limit_mb=128, seed=81):
    ctx = SimContext(seed=seed)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=128))
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    c = vm.create_container("c", limit_mb, CachePolicy.memory(100))
    return ctx, host, vm, c


def run(ctx, gen):
    return ctx.env.run(until=ctx.env.process(gen))


class TestAppendSemantics:
    def test_append_wraps_in_circular_log(self):
        ctx, host, vm, c = build()
        log = c.create_file(0, append_slack=8)

        def driver():
            for _ in range(20):  # way past the 8-block extent
                yield from c.append(log, 1)
            return None

        run(ctx, driver())
        assert log.nblocks == 8  # capped at the extent

    def test_append_with_sync_lands_on_disk(self):
        ctx, host, vm, c = build()
        log = c.create_file(0, append_slack=64)
        writes_before = host.hdd.stats.writes
        run(ctx, c.append(log, 2, sync=True))
        assert host.hdd.stats.writes > writes_before


class TestFsyncCorners:
    def test_fsync_clean_file_is_free(self):
        ctx, host, vm, c = build()
        f = c.create_file(8)
        run(ctx, c.read(f))
        t0 = ctx.now
        written = run(ctx, c.fsync(f))
        assert written == 0
        assert ctx.now == t0  # nothing to write

    def test_double_fsync_writes_once(self):
        ctx, host, vm, c = build()
        f = c.create_file(8)

        def driver():
            yield from c.write(f)
            first = yield from c.fsync(f)
            second = yield from c.fsync(f)
            return (first, second)

        first, second = run(ctx, driver())
        assert first == 8
        assert second == 0

    def test_rewrite_after_fsync_dirties_again(self):
        ctx, host, vm, c = build()
        f = c.create_file(4)

        def driver():
            yield from c.write(f, sync=True)
            yield from c.write(f, 0, 2)
            return None

        run(ctx, driver())
        assert len(vm.os.pagecache.dirty) == 2


class TestSharedFiles:
    def test_pages_charged_to_first_toucher(self):
        ctx, host, vm, c1 = build()
        c2 = vm.create_container("c2", 128, CachePolicy.memory(50))
        f = c1.create_file(16)
        run(ctx, c1.read(f))
        assert c1.cgroup.file_blocks == 16
        # The second reader hits c1's pages: no double charging.
        run(ctx, c2.read(f))
        assert c2.cgroup.file_blocks == 0
        assert c1.cgroup.file_blocks == 16

    def test_delete_shared_file_uncharges_owner(self):
        ctx, host, vm, c1 = build()
        c2 = vm.create_container("c2", 128, CachePolicy.memory(50))
        f = c1.create_file(16)
        run(ctx, c1.read(f))
        run(ctx, c2.delete(f))  # deleted by the non-owner
        assert c1.cgroup.file_blocks == 0
        assert len(vm.os.pagecache) == 0


class TestFlusherInteraction:
    def test_flusher_only_writes_expired_pages(self):
        ctx, host, vm, c = build()
        f = c.create_file(8)
        run(ctx, c.write(f))
        # Well before dirty_expire (30 s): still dirty.
        ctx.run(until=ctx.now + 10)
        assert len(vm.os.pagecache.dirty) == 8
        ctx.run(until=ctx.now + 40)
        assert len(vm.os.pagecache.dirty) == 0

    def test_reclaim_of_dirty_pages_writes_before_put(self):
        ctx, host, vm, c = build(limit_mb=4)  # 64-block container
        f = c.create_file(256)
        writes_before = host.hdd.stats.writes
        run(ctx, c.write(f))  # dirties 256 blocks through a 64-block limit
        # Reclaim had to write back the overflow before evicting it.
        assert host.hdd.stats.writes > writes_before
        stats = c.cache_stats()
        assert stats.puts_stored > 0  # and then offered it to the cache


class TestIOResultAccounting:
    def test_fields_partition_the_blocks(self):
        ctx, host, vm, c = build()
        f = c.create_file(32)
        result = run(ctx, c.read(f))
        assert result.blocks == 32
        assert result.pc_hits + result.cc_hits + result.disk_blocks == 32
        result2 = run(ctx, c.read(f))
        assert result2.pc_hits == 32
        assert result2.latency < result.latency


class TestMultiVMIsolation:
    def test_vm_page_caches_are_disjoint(self):
        ctx = SimContext(seed=83)
        host = ctx.create_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm1 = host.create_vm("vm1", memory_mb=512)
        vm2 = host.create_vm("vm2", memory_mb=512)
        c1 = vm1.create_container("a", 64, CachePolicy.memory(100))
        c2 = vm2.create_container("b", 64, CachePolicy.memory(100))
        f1 = c1.create_file(16)
        f2 = c2.create_file(16)
        run(ctx, c1.read(f1))
        run(ctx, c2.read(f2))
        # Same inode numbers in different VMs must not collide.
        assert f1.inode == f2.inode
        assert len(vm1.os.pagecache) == 16
        assert len(vm2.os.pagecache) == 16

    def test_same_inode_different_vms_in_cache(self):
        """Pool namespacing: identical (inode, block) keys from two VMs
        coexist in the hypervisor cache without cross-talk."""
        ctx = SimContext(seed=84)
        host = ctx.create_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=256))
        vm1 = host.create_vm("vm1", memory_mb=512)
        vm2 = host.create_vm("vm2", memory_mb=512)
        c1 = vm1.create_container("a", 16, CachePolicy.memory(100))
        c2 = vm2.create_container("b", 16, CachePolicy.memory(100))
        f1 = c1.create_file(1024)
        f2 = c2.create_file(1024)
        run(ctx, c1.read(f1))
        run(ctx, c2.read(f2))
        s1 = c1.cache_stats()
        s2 = c2.cache_stats()
        assert s1.mem_used_blocks > 0
        assert s2.mem_used_blocks > 0
        # A get from VM1 must never return VM2's blocks.
        before = s2.mem_used_blocks
        run(ctx, c1.read(f1))
        assert c2.cache_stats().mem_used_blocks >= before - 64
