"""Calendar-queue timeline tests.

The calendar queue replaced the binary heap as the kernel's event
queue; fixed-seed fingerprints depend on its pop order being *exactly*
the tuple-lexicographic order heapq produced.  These tests pin the
equivalence: same-tick FIFO ordering, cancellation behaviour at the
kernel level, bucket rollover, far-future overflow spill/refill, and a
randomized 100k-event differential against a heapq reference.
"""

import heapq
import random

import pytest

from repro.simkernel.core import Environment, NORMAL, URGENT
from repro.simkernel.timeline import CalendarTimeline, DEFAULT_TICK


def drain(timeline):
    """Pop everything, returning the entries in pop order."""
    out = []
    while True:
        entry = timeline.pop()
        if entry is None:
            return out
        out.append(entry)


class TestSameTickFifo:
    def test_ties_pop_in_eid_order(self):
        """Same (time, priority) entries pop FIFO by insertion id."""
        tl = CalendarTimeline(tick=1.0)
        entries = [(0.5, NORMAL, eid, object()) for eid in range(32)]
        shuffled = entries[:]
        random.Random(7).shuffle(shuffled)
        # eids are assigned at push time in the kernel, so push in eid
        # order (shuffling the *objects* but keeping eid monotone).
        for entry in sorted(shuffled, key=lambda e: e[2]):
            tl.push(entry)
        assert drain(tl) == entries

    def test_urgent_overtakes_pending_normal_same_time(self):
        """An urgent push while draining lands before queued normal
        entries of the same time — exactly as in the heap."""
        tl = CalendarTimeline(tick=1.0)
        normals = [(0.25, NORMAL, eid, "n") for eid in range(4)]
        for entry in normals:
            tl.push(entry)
        first = tl.pop()
        assert first == normals[0]
        urgent = (0.25, URGENT, 99, "u")
        tl.push(urgent)  # same tick as the bucket being drained
        assert tl.pop() == urgent
        assert drain(tl) == normals[1:]

    def test_priority_orders_within_tick(self):
        tl = CalendarTimeline(tick=1.0)
        a = (0.5, URGENT, 1, "a")
        b = (0.5, NORMAL, 0, "b")
        tl.push(b)
        tl.push(a)
        assert drain(tl) == [a, b]

    def test_len_and_bool(self):
        tl = CalendarTimeline(tick=1.0)
        assert not tl and len(tl) == 0
        tl.push((0.0, NORMAL, 0, None))
        tl.push((5.0, NORMAL, 1, None))
        assert tl and len(tl) == 2
        tl.pop()
        assert len(tl) == 1
        tl.pop()
        assert tl.pop() is None and len(tl) == 0


class TestCancellation:
    def test_interrupt_orphans_timeout_without_reordering(self):
        """Interrupting a process leaves its timeout in the queue; the
        orphaned entry fires with no callbacks and the clock still
        advances through it in order."""
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(10.0)
                log.append(("woke", env.now))
            except Exception:
                log.append(("interrupted", env.now))
                yield env.timeout(0.5)
                log.append(("resumed", env.now))

        def other():
            yield env.timeout(3.0)
            log.append(("other", env.now))

        proc = env.process(sleeper())
        env.process(other())

        def interrupter():
            yield env.timeout(1.0)
            proc.interrupt("stop")

        env.process(interrupter())
        env.run(until=20.0)
        assert log == [
            ("interrupted", 1.0),
            ("resumed", 1.5),
            ("other", 3.0),
        ]
        assert env.now == 20.0

    def test_processed_events_pop_as_inert_entries(self):
        """A popped entry whose event was already processed (callbacks
        None) is simply inert — the timeline itself never skips or
        reorders anything."""
        tl = CalendarTimeline(tick=1.0)
        sentinel = object()
        entries = [(float(i), NORMAL, i, sentinel) for i in range(5)]
        for entry in entries:
            tl.push(entry)
        assert drain(tl) == entries


class TestRollover:
    def test_pops_cross_bucket_boundaries_in_time_order(self):
        tl = CalendarTimeline(tick=1.0)
        entries = [(float(i) + 0.5, NORMAL, i, None) for i in range(20)]
        shuffled = entries[:]
        random.Random(3).shuffle(shuffled)
        for entry in sorted(shuffled, key=lambda e: e[2]):
            tl.push(entry)
        assert drain(tl) == entries

    def test_push_into_current_bucket_while_draining(self):
        tl = CalendarTimeline(tick=1.0)
        tl.push((0.1, NORMAL, 0, None))
        tl.push((0.9, NORMAL, 1, None))
        assert tl.pop() == (0.1, NORMAL, 0, None)
        # Lands between the pending 0.9 entry and the already-popped one.
        tl.push((0.5, NORMAL, 2, None))
        assert tl.pop() == (0.5, NORMAL, 2, None)
        assert tl.pop() == (0.9, NORMAL, 1, None)

    def test_sparse_buckets_skip_empty_ticks(self):
        tl = CalendarTimeline(tick=1.0)
        far = [(1000.0, NORMAL, 0, None), (5000.0, NORMAL, 1, None)]
        for entry in far:
            tl.push(entry)
        assert drain(tl) == far


class TestOverflow:
    def test_far_future_entries_spill_and_refill(self):
        tl = CalendarTimeline(tick=1.0, horizon=4)
        near = (0.5, NORMAL, 0, None)
        far = (100.5, NORMAL, 1, None)  # beyond the 4-tick window
        tl.push(far)
        tl.push(near)
        assert len(tl._overflow) == 1
        assert tl.pop() == near
        assert tl.pop() == far  # refilled on rollover
        assert not tl._overflow
        assert tl.pop() is None

    def test_overflow_merges_with_later_in_window_push(self):
        """An entry overflows based on the window *at push time*; a later
        push can target the same tick through the bucket dict.  The two
        sources must merge into one sorted bucket."""
        tl = CalendarTimeline(tick=1.0, horizon=4)
        late = (10.7, NORMAL, 0, None)
        tl.push(late)  # tick 10 is past the initial 4-tick window
        stepper = (6.0, NORMAL, 1, None)
        tl.push(stepper)
        assert tl.pop() == stepper  # window now reaches tick 10
        early_same_tick = (10.2, NORMAL, 2, None)
        tl.push(early_same_tick)  # same tick, via the bucket dict
        assert tl.pop() == early_same_tick
        assert tl.pop() == late

    def test_peek_time_sees_all_three_sources(self):
        tl = CalendarTimeline(tick=1.0, horizon=4)
        assert tl.peek_time() == float("inf")
        tl.push((50.0, NORMAL, 0, None))  # overflow
        assert tl.peek_time() == 50.0
        tl.push((2.5, NORMAL, 1, None))  # future bucket
        assert tl.peek_time() == 2.5
        tl.push((0.25, NORMAL, 2, None))  # current bucket
        assert tl.peek_time() == 0.25
        tl.pop()
        assert tl.peek_time() == 2.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CalendarTimeline(tick=0.0)
        with pytest.raises(ValueError):
            CalendarTimeline(horizon=0)


class TestHeapDifferential:
    N_EVENTS = 100_000

    @pytest.mark.slow
    def test_pop_order_identical_to_heapq_on_100k_events(self):
        """Randomized push/pop mix: the calendar queue must reproduce
        heapq's pop order exactly over 100k seeded events with a
        forward-moving clock and delays spanning sub-tick to far beyond
        the overflow horizon."""
        rng = random.Random(0xDD)
        tl = CalendarTimeline(tick=DEFAULT_TICK, horizon=256)
        heap = []
        now = 0.0
        eid = 0
        pushed = popped = 0
        while pushed < self.N_EVENTS or heap:
            do_push = pushed < self.N_EVENTS and (not heap or rng.random() < 0.55)
            if do_push:
                roll = rng.random()
                if roll < 0.30:
                    delay = 0.0  # same-instant trigger
                elif roll < 0.80:
                    delay = rng.random() * DEFAULT_TICK * 4  # hot band
                elif roll < 0.95:
                    delay = rng.random() * DEFAULT_TICK * 128  # device band
                else:
                    delay = rng.random() * DEFAULT_TICK * 100_000  # overflow
                prio = URGENT if rng.random() < 0.05 else NORMAL
                entry = (now + delay, prio, eid, None)
                eid += 1
                tl.push(entry)
                heapq.heappush(heap, entry)
                pushed += 1
            else:
                expected = heapq.heappop(heap)
                got = tl.pop()
                assert got == expected, f"divergence at pop {popped}"
                now = got[0]
                popped += 1
        assert tl.pop() is None
        assert popped == pushed == self.N_EVENTS
