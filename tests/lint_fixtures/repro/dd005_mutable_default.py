"""DD005 fixture: mutable default arguments (3 findings)."""

from typing import Dict, List, Optional


def enqueue(item: int, queue: List[int] = []) -> List[int]:  # finding
    queue.append(item)
    return queue


def tally(counts: Dict[str, int] = {}, *, seen: set = set()) -> int:  # 2 findings
    return len(counts) + len(seen)


def safe(item: int, queue: Optional[List[int]] = None) -> List[int]:  # clean
    queue = [] if queue is None else queue
    queue.append(item)
    return queue
