"""Suppression fixture: pragma without justification -> DD000 warning.

The DD001 finding itself is silenced, but strict mode still fails the
file because the suppression carries no reason.
"""

import time


def profile_wall_clock() -> float:
    return time.time()  # dd-lint: disable=DD001
