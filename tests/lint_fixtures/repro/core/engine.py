"""TC001 fixture: the extracted PolicyEngine is typed-core.

The path (``.../repro/core/engine.py``) places this file in the
typed-core set, so the missing annotations below must fire TC001 —
pinning that the policy-core extraction did not escape the gate.
"""


def select_eviction(kind, batch: int):  # finding: kind + return
    return (kind, batch)


class Engine:
    def recompute(self, capacities):  # finding: capacities + return
        return dict(capacities)

    def annotated(self, vm_id: int) -> int:  # clean
        return vm_id
