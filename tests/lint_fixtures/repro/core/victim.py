"""TC001 fixture: a typed-core module with incomplete annotations.

The path (``.../repro/core/victim.py``) places this file in the
typed-core set, so the missing annotations below must fire TC001.
"""


def exceed_value(entity, eviction_size: int):  # finding: entity + return
    return entity.used + eviction_size


class Picker:
    def pick(self, entities):  # finding: entities + return (self exempt)
        return entities[0]

    def annotated(self, entities: list) -> object:  # clean
        return entities[0]
