"""DD009 fixture: linear-time list operations in a hot-path module.

Five findings expected: two ``pop(0)`` (local + self attribute), two
membership tests (``in`` / ``not in``), one per-element ``del``.
The negative cases at the bottom must stay silent.
"""

from collections import deque


class EventQueue:
    def __init__(self):
        self.pending = []
        self.ready = deque()

    def next_pending(self):
        return self.pending.pop(0)  # BAD: O(n) front pop on a list attr

    def next_ready(self):
        return self.ready.popleft()  # OK: deque popleft is O(1)


def drain(n):
    backlog = [object() for _ in range(n)]
    while backlog:
        backlog.pop(0)  # BAD: O(n) front pop on a local list


def admit(key, resident_keys_hint):
    cached = list(resident_keys_hint)
    if key in cached:  # BAD: linear membership scan of a list
        return False
    seen = {}
    if key not in seen:  # OK: dict membership is O(1)
        seen[key] = True
    hot = [k for k in cached if k]
    return key not in hot  # BAD: linear membership scan of a list


def compact(entries):
    live = sorted(entries)
    index = {}
    while live:
        del live[0]  # BAD: per-element del shifts the tail
    del live[:]  # OK: slice delete is wholesale, not per-element
    if index:
        del index["gone"]  # OK: dict delete is O(1)
    return live


def unknown_receiver(queue):
    # OK: ``queue`` is a parameter of unknown type; no inference, no finding.
    return queue.pop(0)
