"""DD007 fixture: bare/swallowed exception handlers (3 findings)."""


def run_loop(events: list) -> int:
    processed = 0
    for event in events:
        try:
            event()
            processed += 1
        except:                    # finding: bare except
            pass
    return processed


def drain(queue: list) -> None:
    try:
        queue.pop()
    except Exception:              # finding: broad + swallowed
        pass


def drain_ellipsis(queue: list) -> None:
    try:
        queue.pop()
    except (Exception, ValueError):  # finding: broad tuple + swallowed
        ...


def ok_narrow(queue: list) -> None:
    try:
        queue.pop()
    except IndexError:             # clean: narrow swallow is a choice
        pass


def ok_handled(queue: list) -> str:
    try:
        queue.pop()
    except Exception as exc:       # clean: broad but surfaced
        return f"failed: {exc}"
    return "ok"
