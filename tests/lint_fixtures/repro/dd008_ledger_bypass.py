"""DD008 fixture: ledger-field writes outside the owning modules (3 findings)."""

from typing import Any


def fudge_stats(stats: Any) -> None:
    stats.puts += 1                    # finding: ledger write outside owners
    stats.put_rejected_capacity = 0    # finding: resetting a rejection bucket
    stats.puts_stored += 1             # finding: bypasses put_many
    stats.gets += 1                    # clean: not a put-ledger field
