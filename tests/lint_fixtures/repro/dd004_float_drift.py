"""DD004 fixture: float accumulation into integer counters (3 findings)."""


class PoolAccounting:
    def __init__(self) -> None:
        self.used = 0
        self._size = 0
        self.bytes_written = 0
        self.hit_ratio = 0.0

    def charge(self, blocks: int, compression: float) -> None:
        self.used += blocks / 2            # finding: true division drifts
        self._size += blocks * 0.5         # finding: float literal
        self.bytes_written += float(blocks)  # finding: explicit float()
        self.used += blocks // 2           # clean: integer division
        self._size += int(blocks * compression)  # clean: explicit int()
        self.hit_ratio += 0.1              # clean: not an integer counter
