"""Suppression fixture: every violation is justified, so lint is clean."""

import time

# dd-lint: disable-file=DD002 (fixture demonstrates file-wide suppression)
import random


def profile_wall_clock() -> float:
    return time.time()  # dd-lint: disable=DD001 (host-side profiling example)


def jitter() -> float:
    # dd-lint: disable-next-line=DD002 (covered by the file-wide pragma anyway)
    return random.random()
