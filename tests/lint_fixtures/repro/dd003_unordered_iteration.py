"""DD003 fixture: unordered iteration in decision paths (4 errors, 1 warning)."""

from typing import Dict, List, Set


class EvictionPlanner:
    def __init__(self) -> None:
        self.candidates: Set[int] = set()
        self.pools: Dict[int, str] = {}

    def select_victim(self, resident: List[int]) -> int:
        best = -1
        for vm in set(resident):          # finding: set() call iterated
            best = max(best, vm)
        for vm in self.candidates:        # finding: set-valued attribute
            best = max(best, vm)
        for pool in self.pools.keys():    # warning: dict.keys() in decision path
            best = max(best, pool)
        return best

    def migrate_candidates(self) -> List[int]:
        stranded = {1, 2, 3}
        return [vm for vm in stranded]    # finding: local set iterated

    def admit_batch(self) -> List[int]:
        return sorted(self.candidates)    # clean: sorted() sanctions the set

    def evict_round(self) -> List[int]:
        return [x for x in {"a", "b"}]    # finding: set literal iterated


def unrelated_bookkeeping(items: Set[int]) -> int:
    # Clean: not a decision-path function, set iteration is fine here.
    total = 0
    for item in items:
        total += item
    return total
