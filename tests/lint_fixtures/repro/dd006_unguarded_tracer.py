"""DD006 fixture: tracer calls missing the zero-cost guard (2 findings)."""

from typing import Any, Optional


def get_tracer() -> Optional[Any]:
    return None


class CacheOps:
    def __init__(self) -> None:
        self._tracer: Optional[Any] = None

    def put_unguarded(self, key: int) -> None:
        tracer = get_tracer()
        tracer.instant("put.outcome", key=key)       # finding: no guard

    def put_attr_unguarded(self, key: int) -> None:
        self._tracer.span_begin()                    # finding: no guard

    def put_guarded(self, key: int) -> None:
        tracer = get_tracer()
        if tracer is not None:
            tracer.instant("put.outcome", key=key)   # clean: guarded

    def put_ifexp(self, key: int) -> None:
        tracer = get_tracer()
        _ = tracer.note(key) if tracer is not None else None  # clean

    def put_early_exit(self, key: int) -> None:
        tracer = get_tracer()
        if tracer is None:
            return
        tracer.instant("put.outcome", key=key)       # clean: early exit

    def put_and_guard(self, key: int) -> None:
        tracer = get_tracer()
        _ = tracer is not None and tracer.note(key)  # clean: boolop guard
