"""Allowlist fixture: wall-clock reads and broad handlers are *correct*
in ``repro/service/`` modules, which live on real time and real sockets.

Every construct below fires DD001 or DD007 elsewhere in ``repro/``
(see ``dd001_wall_clock.py`` and ``dd007_swallowed_errors.py``); here
the ``REALTIME_MODULES`` allowlist must keep the file clean.
"""

import time


def measure_latency() -> int:
    started = time.perf_counter_ns()   # allowed: real service latency
    _ = time.monotonic()               # allowed: admission clock
    return time.perf_counter_ns() - started


def serve_one(handler) -> None:
    try:
        handler()
    except Exception:  # allowed: a server must outlive bad clients
        pass
