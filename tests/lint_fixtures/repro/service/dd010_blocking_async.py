"""DD010 fixture: blocking calls inside ``async def`` bodies.

The service event loop is single-threaded; each construct below parks
it — sleeping, opening files, fsyncing, or running the synchronous
DiskStore data path — and must fire DD010 exactly once.  The sync-def
and ``asyncio.sleep`` counter-examples at the bottom must stay clean.
"""

import asyncio
import os
import time


async def nap_between_retries() -> None:
    time.sleep(0.5)  # BAD: stalls every connection for 500ms


async def append_audit_line(line: str) -> None:
    log = open("/tmp/audit.log", "a")  # BAD: disk I/O on the event loop
    log.write(line)
    log.close()


async def force_durable(fd: int) -> None:
    os.fsync(fd)  # BAD: blocks until the kernel flushes


class Handler:
    def __init__(self, store) -> None:
        self.store = store

    async def handle_set(self, tenant: str, key: str, value: bytes) -> None:
        self.store.set(tenant, key, value)  # BAD: SQLite txn + blob write


# -- clean counter-examples ---------------------------------------------


async def polite_nap() -> None:
    await asyncio.sleep(0.5)  # fine: yields the loop


def sync_setup(path: str):
    time.sleep(0.01)     # fine: not on the event loop
    return open(path)    # fine: sync entry point owns file I/O


async def spawn_worker() -> None:
    def flush_later(fd: int) -> None:
        os.fsync(fd)  # fine: a nested sync def only blocks if called

    asyncio.get_running_loop().run_in_executor(None, flush_later, 3)
