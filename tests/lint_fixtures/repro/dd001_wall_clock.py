"""DD001 fixture: wall-clock reads in simulated code (4 findings)."""

import time
import datetime
from time import perf_counter


def sample_latency() -> float:
    started = time.time()            # finding: time.time()
    _ = perf_counter()               # finding: bare-imported perf_counter()
    _ = datetime.datetime.now()      # finding: datetime.now()
    return time.monotonic() - started  # finding: time.monotonic()
