"""DD002 fixture: module-global random use (3 findings, 1 clean)."""

import random
from random import randint


def jitter() -> float:
    random.seed(0)            # finding: even seeding the global generator
    value = random.random()   # finding: module-global stream
    value += randint(0, 3)    # finding: bare-imported module-global fn
    rng = random.Random(42)   # clean: explicitly seeded instance
    return value + rng.random()
