"""Known-bad fixture: DD012 read-modify-write across awaits.

The lock-guarded variant and the helper are the clean counterexamples;
everything else splits a shared-attribute RMW across a suspension point.
"""

import asyncio


class RacyCounter:
    def __init__(self) -> None:
        self.ops = 0
        self.total = 0
        self._lock = asyncio.Lock()

    async def bump_stale(self) -> None:
        count = self.ops              # load
        await asyncio.sleep(0)        # another handler may run here
        self.ops = count + 1          # DD012: commits the stale read

    async def bump_inline(self) -> None:
        self.total = self.total + await self._delay()   # DD012: RMW + await in one statement

    async def bump_aug(self) -> None:
        self.ops += await self._delay()                 # DD012: augmented RMW awaits

    async def bump_locked(self) -> None:
        async with self._lock:        # clean: the lock serializes the section
            count = self.ops
            await asyncio.sleep(0)
            self.ops = count + 1

    async def _delay(self) -> int:
        await asyncio.sleep(0)
        return 1
