# dd-lint: disable-file=all (fixture package marker)
