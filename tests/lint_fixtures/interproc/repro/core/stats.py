"""Known-bad fixture: DD014 — one ledger counter the auditor ignores."""

from dataclasses import dataclass


@dataclass
class PoolStats:
    name: str
    checked_counter: int = 0
    ghost_counter: int = 0    # DD014: no invariant in audit.py touches it
    used_blocks: int = 0      # gauge: exempt from coverage by design
