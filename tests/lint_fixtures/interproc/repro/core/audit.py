"""Fixture auditor: cross-checks ``checked_counter`` but not the ghost."""

from typing import List


def check_pool(stats) -> List[str]:
    violations: List[str] = []
    if stats.checked_counter < 0:
        violations.append("checked_counter went negative")
    return violations
