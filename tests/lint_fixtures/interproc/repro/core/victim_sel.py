"""Known-bad fixture: DD011 cross-module two-hop taint into a sink."""

from .helpers import seeded_floor, two_hop


def select_victim(entries):
    bias = two_hop()          # DD011: time.time -> jitter -> two_hop -> sink
    floor = seeded_floor(7)   # clean helper: no finding
    best = None
    for entry in entries:
        if best is None or entry.score + bias < best.score + floor:
            best = entry
    return best


def pick_candidate(keys):
    for key in set(keys):     # DD011: unordered-set iteration in a sink
        return key
    return None


def pick_candidate_sorted(keys):
    for key in sorted(set(keys)):   # clean: sorted() cleanses the order
        return key
    return None
