"""Known-bad fixture: taint helpers feeding the DD011 chains.

``jitter`` is a direct wall-clock source (DD001 also fires on it
per-file — expected, this is the bad-snippet corpus) and ``two_hop``
launders it through one more call so the cross-module chain into
``victim_sel.select_victim`` is two hops deep.
"""

import time


def jitter() -> float:
    return time.time()


def two_hop() -> float:
    return jitter()


def seeded_floor(seed: int) -> int:
    return seed * 2
