"""Known-bad fixture: DD011 one-hop hash() taint and attribute taint."""


def key_fingerprint(key) -> int:
    return hash(key)


class HashAdmission:
    def __init__(self) -> None:
        self._salt = 0

    def reseed(self) -> None:
        # Not a sink itself, but poisons self._salt for the whole class.
        self._salt = key_fingerprint("salt")

    def admit(self, key) -> bool:
        return key_fingerprint(key) % 2 == 0   # DD011: one-hop hash()

    def admit_salted(self, key) -> bool:
        return (key + self._salt) % 2 == 0     # DD011: tainted attribute read
