"""Known-bad fixture: DD013 generator-protocol misuse.

``flat_wrapper`` is generator-valued without containing a ``yield`` (the
flattened-delegation idiom), so the fixed point must classify it too.
"""


def delegate(env):
    yield "step"


def flat_wrapper(env):
    return delegate(env)


def broken_yield(env):
    yield delegate(env)          # DD013: parks the process on a generator


def broken_wrapper_yield(env):
    yield flat_wrapper(env)      # DD013: same, through the flat wrapper


def broken_discard(env):
    delegate(env)                # DD013: generator discarded, body never runs
    yield "done"


def proper(env):
    yield from delegate(env)             # clean
    result = yield from flat_wrapper(env)  # clean
    return result
