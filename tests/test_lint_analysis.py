"""Whole-program sim-lint suite: call-graph resolution, interprocedural
taint (DD011), await-interleaving races (DD012), generator-protocol
misuse (DD013), auditor coverage (DD014), the SARIF 2.1.0 emitter, and
the CLI flags that drive them (--interprocedural, --changed, --budget,
--list-rules --format json)."""

import contextlib
import io
import json
import subprocess
import tempfile
import textwrap
import unittest
from collections import Counter
from pathlib import Path

from repro.lint.__main__ import main as lint_main
from repro.lint.analysis import (
    WHOLE_PROGRAM_RULE_IDS,
    analyze_paths,
    analyze_project,
)
from repro.lint.callgraph import CallGraph, Project
from repro.lint.engine import (
    Finding,
    WitnessHop,
    format_findings_json,
    format_findings_text,
    iter_python_files,
)
from repro.lint.rules import INTERPROC_RULES, rule_catalog
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    format_findings_sarif,
)

REPO = Path(__file__).resolve().parent.parent
INTERPROC_FIXTURES = REPO / "tests" / "lint_fixtures" / "interproc"


def make_project(tmp, files):
    """Write ``{relpath: source}`` under ``tmp/repro`` and load it."""
    root = Path(tmp)
    for rel, source in files.items():
        path = root / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        init = path.parent / "__init__.py"
        while not init.exists() and init.parent != root:
            init.write_text("")
            init = init.parent.parent / "__init__.py"
    paths = sorted((root / "repro").rglob("*.py"))
    return Project.load(paths, root=root)


def fixture_report(rule_ids=None):
    return analyze_paths([INTERPROC_FIXTURES], root=REPO, rule_ids=rule_ids)


class CallGraphTests(unittest.TestCase):
    """Call-site resolution: each strategy in the documented order."""

    def _edges_of(self, project, qual):
        graph = CallGraph(project)
        return {edge.callee for edge in graph.callees_of(qual)}

    def test_local_function_call_resolves(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
            """})
            self.assertIn("repro.mod:helper",
                          self._edges_of(project, "repro.mod:caller"))

    def test_from_import_as_resolves_cross_module(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {
                "util.py": """
                    def jitter():
                        return 1
                """,
                "mod.py": """
                    from repro.util import jitter as j

                    def caller():
                        return j()
                """,
            })
            self.assertIn("repro.util:jitter",
                          self._edges_of(project, "repro.mod:caller"))

    def test_module_alias_resolves(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {
                "util.py": """
                    def jitter():
                        return 1
                """,
                "mod.py": """
                    import repro.util as u

                    def caller():
                        return u.jitter()
                """,
            })
            self.assertIn("repro.util:jitter",
                          self._edges_of(project, "repro.mod:caller"))

    def test_relative_import_resolves(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {
                "core/util.py": """
                    def jitter():
                        return 1
                """,
                "core/mod.py": """
                    from .util import jitter

                    def caller():
                        return jitter()
                """,
            })
            self.assertIn("repro.core.util:jitter",
                          self._edges_of(project, "repro.core.mod:caller"))

    def test_self_method_dispatch_through_base_chain(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                class Base:
                    def helper(self):
                        return 1

                class Child(Base):
                    def caller(self):
                        return self.helper()
            """})
            self.assertIn("repro.mod:Base.helper",
                          self._edges_of(project, "repro.mod:Child.caller"))

    def test_receiver_name_heuristic_matches_class(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                class Tracker:
                    def curve(self):
                        return 1

                def caller(tracker):
                    return tracker.curve()
            """})
            self.assertIn("repro.mod:Tracker.curve",
                          self._edges_of(project, "repro.mod:caller"))

    def test_builtin_method_names_never_resolve_by_uniqueness(self):
        # The DD013 false-positive storm regression: 'rows.append' must
        # not resolve to the only project method named 'append', because
        # 'append' is a builtin-list method name.
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                class Container:
                    def append(self, item):
                        yield item

                def caller(rows):
                    rows.append(1)
            """})
            self.assertEqual(self._edges_of(project, "repro.mod:caller"),
                             set())

    def test_matching_receiver_still_resolves_builtin_name(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                class Container:
                    def append(self, item):
                        yield item

                def caller(container):
                    container.append(1)
            """})
            self.assertIn("repro.mod:Container.append",
                          self._edges_of(project, "repro.mod:caller"))

    def test_ambiguous_unique_name_produces_no_edge(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                class A:
                    def curve(self):
                        return 1

                class B:
                    def curve(self):
                        return 2

                def caller(thing):
                    return thing.curve()
            """})
            self.assertEqual(self._edges_of(project, "repro.mod:caller"),
                             set())

    def test_generator_valued_fixed_point_covers_flat_wrappers(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                def gen():
                    yield 1

                def wrapper():
                    return gen()

                def wrapper2():
                    return wrapper()

                def plain():
                    return 1
            """})
            graph = CallGraph(project)
            self.assertTrue(graph.is_generator_valued("repro.mod:gen"))
            self.assertTrue(graph.is_generator_valued("repro.mod:wrapper"))
            self.assertTrue(graph.is_generator_valued("repro.mod:wrapper2"))
            self.assertFalse(graph.is_generator_valued("repro.mod:plain"))

    def test_nested_def_yield_does_not_mark_outer(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"mod.py": """
                def outer():
                    def inner():
                        yield 1
                    return inner
            """})
            graph = CallGraph(project)
            self.assertFalse(graph.is_generator_valued("repro.mod:outer"))

    def test_module_name_collision_noted_first_wins(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            for prefix in ("a", "b"):
                path = root / prefix / "repro" / "mod.py"
                path.parent.mkdir(parents=True)
                (path.parent / "__init__.py").write_text("")
                path.write_text("def f():\n    return 1\n")
            paths = sorted(root.rglob("*.py"))
            project = Project.load(paths, root=root)
            self.assertEqual(len(project.modules), 2)  # repro + repro.mod
            self.assertTrue(
                any("collision" in note for note in project.notes))


class TaintTests(unittest.TestCase):
    """DD011: interprocedural nondeterminism taint with witness paths."""

    @classmethod
    def setUpClass(cls):
        cls.findings = [f for f in fixture_report(["DD011"]).findings
                        if f.rule_id == "DD011"]

    def _in_file(self, name):
        return [f for f in self.findings if f.path.endswith(name)]

    def test_fixture_corpus_fires_exactly_four(self):
        self.assertEqual(len(self.findings), 4,
                         [f.message for f in self.findings])

    def test_two_hop_cross_module_witness_is_complete(self):
        hits = [f for f in self._in_file("victim_sel.py")
                if "two_hop" in f.message]
        self.assertEqual(len(hits), 1)
        witness = hits[0].witness
        # source -> jitter -> two_hop chain, rendered innermost-last.
        self.assertGreaterEqual(len(witness), 2)
        notes = " | ".join(hop.note for hop in witness)
        self.assertIn("two_hop", notes)
        self.assertIn("jitter", notes)
        self.assertIn("time.time", notes)
        self.assertTrue(
            all(hop.path.endswith("helpers.py") for hop in witness[1:]),
            [hop.path for hop in witness])

    def test_set_iteration_order_taint_fires(self):
        hits = [f for f in self._in_file("victim_sel.py")
                if "set" in f.message.lower()]
        self.assertEqual(len(hits), 1)
        self.assertEqual(hits[0].line, 17)

    def test_sorted_cleanses_order_taint(self):
        lines = {f.line for f in self._in_file("victim_sel.py")}
        self.assertNotIn(23, lines)  # pick_candidate_sorted stays clean

    def test_one_hop_hash_taint_fires(self):
        hits = [f for f in self._in_file("admitter.py")]
        self.assertEqual(len(hits), 2, [f.message for f in hits])
        # The hash() provenance lives in the witness chain.
        evidence = " | ".join(hop.note for f in hits for hop in f.witness)
        self.assertIn("hash", evidence)

    def test_attribute_taint_reaches_other_method(self):
        # reseed() poisons self._salt; admit_salted() reads it.
        hits = [f for f in self._in_file("admitter.py")
                if "_salt" in f.message or "_salt" in " ".join(
                    hop.note for hop in f.witness)]
        self.assertEqual(len(hits), 1, [f.message for f in hits])

    def test_realtime_modules_are_exempt(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"service/handler.py": """
                import time

                def select_candidate(entries):
                    bias = time.time()
                    return [e for e in entries if e > bias]
            """})
            report = analyze_project(project, rule_ids=["DD011"])
            self.assertEqual(report.findings, [],
                             [f.message for f in report.findings])

    def test_suppression_pragma_silences_dd011(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"core/mod.py": """
                import time

                def select_candidate(entries):
                    bias = time.time()  # dd-lint: disable=DD011 (test shim)
                    return [e for e in entries if e > bias]
            """})
            report = analyze_project(project, rule_ids=["DD011"])
            self.assertEqual(report.findings, [],
                             [f.message for f in report.findings])

    def test_non_sink_functions_stay_clean(self):
        # helpers.py is all sources and laundering — no decision sink, so
        # DD011 anchors in the sink files only.
        self.assertEqual(self._in_file("helpers.py"), [])


class AsyncSafeTests(unittest.TestCase):
    """DD012: read-modify-write across awaits in realtime modules."""

    @classmethod
    def setUpClass(cls):
        cls.findings = [f for f in fixture_report(["DD012"]).findings
                        if f.rule_id == "DD012"]

    def test_fixture_corpus_fires_exactly_three(self):
        self.assertEqual(len(self.findings), 3,
                         [f.message for f in self.findings])
        lines = sorted(f.line for f in self.findings)
        self.assertEqual(lines, [19, 22, 25])

    def test_cross_segment_witness_has_load_await_store(self):
        stale = [f for f in self.findings if f.line == 19]
        self.assertEqual(len(stale), 1)
        notes = [hop.note for hop in stale[0].witness]
        self.assertEqual(len(notes), 3, notes)
        self.assertTrue(any("read" in n or "load" in n for n in notes))
        self.assertTrue(any("await" in n for n in notes))
        self.assertTrue(any("store" in n or "writ" in n for n in notes))

    def test_lock_guarded_section_is_clean(self):
        # bump_locked spans lines 27-31; no finding may anchor there.
        self.assertFalse([f for f in self.findings if 27 <= f.line <= 31])

    def test_non_realtime_async_code_is_out_of_scope(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"core/racer.py": """
                import asyncio

                class C:
                    def __init__(self):
                        self.n = 0

                    async def bump(self):
                        n = self.n
                        await asyncio.sleep(0)
                        self.n = n + 1
            """})
            report = analyze_project(project, rule_ids=["DD012"])
            self.assertEqual(report.findings, [])


class GeneratorProtocolTests(unittest.TestCase):
    """DD013: yield-of-generator and discarded generator calls."""

    @classmethod
    def setUpClass(cls):
        cls.findings = [f for f in fixture_report(["DD013"]).findings
                        if f.rule_id == "DD013"]

    def test_fixture_corpus_fires_exactly_three(self):
        self.assertEqual(len(self.findings), 3,
                         [f.message for f in self.findings])

    def test_yield_through_flat_wrapper_is_caught(self):
        # broken_wrapper_yield yields flat_wrapper(env): only the
        # generator-valuedness fixed point can classify flat_wrapper.
        hits = [f for f in self.findings if "flat_wrapper" in f.message]
        self.assertEqual(len(hits), 1)

    def test_discarded_generator_is_caught(self):
        hits = [f for f in self.findings if "discard" in f.message]
        self.assertEqual(len(hits), 1)

    def test_yield_from_stays_clean(self):
        lines = {f.line for f in self.findings}
        self.assertFalse(lines & {30, 31})  # proper()'s yield-froms

    def test_witness_points_at_generator_definition(self):
        for finding in self.findings:
            self.assertEqual(len(finding.witness), 1)
            self.assertIn("generator-valued", finding.witness[0].note)


class AuditCoverageTests(unittest.TestCase):
    """DD014: every monotone ledger counter needs an auditor invariant."""

    def test_fixture_ghost_counter_fires_exactly_once(self):
        findings = [f for f in fixture_report(["DD014"]).findings
                    if f.rule_id == "DD014"]
        self.assertEqual(len(findings), 1, [f.message for f in findings])
        self.assertIn("ghost_counter", findings[0].message)

    def test_gauges_are_exempt(self):
        findings = fixture_report(["DD014"]).findings
        self.assertFalse(
            [f for f in findings if "used_blocks" in f.message])

    def test_partial_project_skips_with_note(self):
        with tempfile.TemporaryDirectory() as tmp:
            project = make_project(tmp, {"core/other.py": """
                def f():
                    return 1
            """})
            report = analyze_project(project, rule_ids=["DD014"])
            self.assertEqual(report.findings, [])
            self.assertTrue(
                any("DD014 skipped" in note for note in report.notes),
                report.notes)


class FixtureCorpusTests(unittest.TestCase):
    def test_full_corpus_counts_pin_every_rule(self):
        report = fixture_report()
        counts = Counter(f.rule_id for f in report.findings)
        self.assertEqual(dict(counts),
                         {"DD011": 4, "DD012": 3, "DD013": 3, "DD014": 1})

    def test_shipped_tree_is_interprocedurally_clean(self):
        # The acceptance gate: src/ and tests/ carry zero whole-program
        # findings (fixtures are pruned from the walk).
        report = analyze_paths([REPO / "src", REPO / "tests"], root=REPO)
        self.assertEqual(report.findings, [],
                         "\n".join(f"{f.path}:{f.line}: {f.rule_id} "
                                   f"{f.message}"
                                   for f in report.findings))

    def test_fixture_walk_is_pruned_from_default_lint(self):
        files = list(iter_python_files([REPO / "tests"]))
        self.assertFalse([p for p in files if "interproc" in str(p)])


class WitnessFormatTests(unittest.TestCase):
    def _finding(self):
        return Finding(
            rule_id="DD011", severity="error", path="repro/core/a.py",
            line=10, col=4, message="tainted decision",
            witness=(WitnessHop("repro/core/a.py", 10, "sink here"),
                     WitnessHop("repro/core/b.py", 3, "source here")))

    def test_text_rendering_shows_every_hop(self):
        text = format_findings_text([self._finding()])
        self.assertIn("witness: repro/core/a.py:10: sink here", text)
        self.assertIn("-> repro/core/b.py:3: source here", text)

    def test_json_round_trip_preserves_witness(self):
        finding = self._finding()
        payload = json.loads(format_findings_json([finding], strict=True))
        rebuilt = Finding.from_dict(payload["findings"][0])
        self.assertEqual(rebuilt, finding)

    def test_witness_key_absent_for_per_file_findings(self):
        bare = Finding(rule_id="DD001", severity="error", path="x.py",
                       line=1, col=0, message="m")
        self.assertNotIn("witness", bare.as_dict())


class SarifTests(unittest.TestCase):
    """Self-check against the shape SARIF 2.1.0 makes mandatory."""

    @classmethod
    def setUpClass(cls):
        report = fixture_report()
        cls.findings = report.findings
        cls.doc = json.loads(format_findings_sarif(cls.findings))

    def test_toplevel_shape(self):
        self.assertEqual(self.doc["version"], SARIF_VERSION)
        self.assertEqual(self.doc["$schema"], SARIF_SCHEMA_URI)
        self.assertEqual(len(self.doc["runs"]), 1)

    def test_driver_carries_full_catalog(self):
        driver = self.doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "sim-lint")
        rule_ids = [rule["id"] for rule in driver["rules"]]
        self.assertEqual(len(rule_ids), len(set(rule_ids)))
        for entry in rule_catalog():
            self.assertIn(entry["id"], rule_ids)
        self.assertIn("DD000", rule_ids)

    def test_results_reference_rules_by_index(self):
        driver = self.doc["runs"][0]["tool"]["driver"]
        for result in self.doc["runs"][0]["results"]:
            self.assertIn(result["level"], ("error", "warning", "note"))
            self.assertTrue(result["message"]["text"])
            index = result["ruleIndex"]
            self.assertEqual(driver["rules"][index]["id"], result["ruleId"])
            location = result["locations"][0]["physicalLocation"]
            self.assertTrue(location["artifactLocation"]["uri"])
            self.assertGreaterEqual(location["region"]["startLine"], 1)

    def test_witnesses_become_code_flows(self):
        with_witness = [f for f in self.findings if f.witness]
        self.assertTrue(with_witness)
        by_key = {(f.path, f.line, f.rule_id): f for f in with_witness}
        for result in self.doc["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"][
                "artifactLocation"]["uri"]
            line = result["locations"][0]["physicalLocation"][
                "region"]["startLine"]
            finding = by_key.get((uri, line, result["ruleId"]))
            if finding is None:
                continue
            flows = result["codeFlows"]
            locations = flows[0]["threadFlows"][0]["locations"]
            self.assertEqual(len(locations), len(finding.witness))
            for hop, loc in zip(finding.witness, locations):
                self.assertEqual(loc["location"]["message"]["text"],
                                 hop.note)

    def test_columns_are_one_based(self):
        for result in self.doc["runs"][0]["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            if "startColumn" in region:
                self.assertGreaterEqual(region["startColumn"], 1)
        self.assertEqual(self.doc["runs"][0]["columnKind"],
                         "utf16CodeUnits")

    def test_cli_sarif_output_parses(self):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer), \
                contextlib.redirect_stderr(io.StringIO()):
            status = lint_main([str(INTERPROC_FIXTURES),
                                "--interprocedural", "--format", "sarif"])
        self.assertEqual(status, 1)
        doc = json.loads(buffer.getvalue())
        rule_ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
        self.assertTrue({"DD011", "DD012", "DD013", "DD014"} <= rule_ids)


class CliTests(unittest.TestCase):
    def _run(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = lint_main(argv)
        return status, out.getvalue(), err.getvalue()

    def test_interprocedural_fires_on_fixtures(self):
        status, out, _ = self._run(
            [str(INTERPROC_FIXTURES), "--interprocedural",
             "--format", "json"])
        self.assertEqual(status, 1)
        payload = json.loads(out)
        fired = {f["rule"] for f in payload["findings"]}
        self.assertTrue(set(WHOLE_PROGRAM_RULE_IDS) <= fired, fired)

    def test_interprocedural_witness_in_json(self):
        _, out, _ = self._run(
            [str(INTERPROC_FIXTURES), "--rule", "DD011",
             "--format", "json"])
        payload = json.loads(out)
        two_hop = [f for f in payload["findings"]
                   if "two_hop" in f["message"]]
        self.assertTrue(two_hop)
        self.assertTrue(two_hop[0]["witness"])
        self.assertTrue(all({"path", "line", "note"} <= set(h)
                            for h in two_hop[0]["witness"]))

    def test_whole_program_rule_id_implies_interprocedural(self):
        status, out, _ = self._run(
            [str(INTERPROC_FIXTURES), "--rule", "DD013",
             "--format", "json"])
        self.assertEqual(status, 1)
        payload = json.loads(out)
        self.assertEqual({f["rule"] for f in payload["findings"]},
                         {"DD013"})

    def test_shipped_tree_passes_strict_interprocedural(self):
        status, out, _ = self._run(
            ["src", "tests", "--interprocedural", "--strict"])
        self.assertEqual(status, 0, out)

    def test_budget_overrun_fails(self):
        status, _, err = self._run(
            [str(INTERPROC_FIXTURES / "repro" / "core" / "helpers.py"),
             "--rule", "DD002", "--budget", "0.0"])
        self.assertEqual(status, 1)
        self.assertIn("--budget", err)

    def test_list_rules_json_includes_whole_program_rules(self):
        status, out, _ = self._run(["--list-rules", "--format", "json"])
        self.assertEqual(status, 0)
        payload = json.loads(out)
        by_id = {entry["id"]: entry for entry in payload["rules"]}
        for rule in INTERPROC_RULES:
            self.assertIn(rule.rule_id, by_id)
            entry = by_id[rule.rule_id]
            self.assertEqual(entry["scope"], "whole-program")
            self.assertTrue(entry["witness"],
                            f"{rule.rule_id} must document its witness "
                            f"format")

    def test_changed_lints_only_differing_files(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            subprocess.run(["git", "init", "-q"], cwd=root, check=True)
            subprocess.run(["git", "-c", "user.email=t@t",
                            "-c", "user.name=t", "commit", "-q",
                            "--allow-empty", "-m", "seed"],
                           cwd=root, check=True)
            pkg = root / "src" / "repro" / "core"
            pkg.mkdir(parents=True)
            for part in (root / "src" / "repro", pkg):
                (part / "__init__.py").write_text("")
            (pkg / "bad.py").write_text(
                "import time\n\n"
                "def pick():\n"
                "    return time.time()\n")
            proc = subprocess.run(
                [sys_executable(), "-m", "repro.lint", "src",
                 "--changed", "--format", "json"],
                cwd=root, capture_output=True, text=True,
                env=_env_with_src())
            self.assertEqual(proc.returncode, 1, proc.stderr)
            payload = json.loads(proc.stdout)
            self.assertTrue(payload["findings"])
            self.assertTrue(all("bad.py" in f["path"]
                                for f in payload["findings"]))
            self.assertIn("--changed=HEAD", proc.stderr + proc.stdout)

    def test_changed_with_interprocedural_notes_full_tree_fallback(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            subprocess.run(["git", "init", "-q"], cwd=root, check=True)
            subprocess.run(["git", "-c", "user.email=t@t",
                            "-c", "user.name=t", "commit", "-q",
                            "--allow-empty", "-m", "seed"],
                           cwd=root, check=True)
            (root / "clean.py").write_text("X = 1\n")
            proc = subprocess.run(
                [sys_executable(), "-m", "repro.lint", ".",
                 "--changed", "--interprocedural"],
                cwd=root, capture_output=True, text=True,
                env=_env_with_src())
            self.assertIn("cannot run incrementally",
                          proc.stdout + proc.stderr)


def sys_executable():
    import sys

    return sys.executable


def _env_with_src():
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.setdefault("PYTHONHASHSEED", "0")
    return env


if __name__ == "__main__":
    unittest.main()
