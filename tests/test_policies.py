"""Tests for MRC/SHARDS/WSS estimation and the adaptive controllers."""

import random

import pytest
from hypothesis import strategies as st

from repro import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.hypervisor import HostSpec
from repro.policies import (
    AdaptiveWeightController,
    BalloonController,
    MissRatioCurve,
    ReuseDistanceTracker,
    ShardsEstimator,
    WSSEstimator,
)
from repro.workloads import RedisWorkload, WebserverWorkload


class TestMissRatioCurve:
    def test_interpolation(self):
        curve = MissRatioCurve([0, 100], [1.0, 0.0], 1000)
        assert curve.miss_ratio_at(0) == 1.0
        assert curve.miss_ratio_at(50) == pytest.approx(0.5)
        assert curve.miss_ratio_at(100) == 0.0
        assert curve.miss_ratio_at(1000) == 0.0

    def test_empty_curve_is_all_misses(self):
        assert MissRatioCurve([], [], 0).miss_ratio_at(10) == 1.0

    def test_marginal_gain(self):
        curve = MissRatioCurve([0, 100], [1.0, 0.0], 1000)
        assert curve.marginal_gain(0, 50) == pytest.approx(0.5)
        assert curve.marginal_gain(100, 50) == 0.0
        assert curve.marginal_gain(0, 0) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MissRatioCurve([1], [0.5, 0.2], 10)


class TestReuseDistanceTracker:
    def test_cold_misses_counted(self):
        tracker = ReuseDistanceTracker()
        for key in range(10):
            assert tracker.access(key) is None
        assert tracker.cold_misses == 10

    def test_immediate_reuse_distance_zero(self):
        tracker = ReuseDistanceTracker()
        tracker.access("a")
        assert tracker.access("a") == 0

    def test_stack_distance_counts_distinct(self):
        tracker = ReuseDistanceTracker()
        for key in ("a", "b", "c", "a"):
            distance = tracker.access(key)
        # 'a' re-accessed after distinct {b, c} -> distance 2
        assert distance == 2

    def test_repeated_interleave(self):
        tracker = ReuseDistanceTracker()
        # a b a b a b : every reuse has distance 1
        distances = [tracker.access(k) for k in "ababab"]
        assert distances[2:] == [1, 1, 1, 1]

    def test_curve_monotone_nonincreasing(self):
        tracker = ReuseDistanceTracker()
        rng = random.Random(3)
        for _ in range(3000):
            tracker.access(rng.randrange(200))
        curve = tracker.curve()
        for earlier, later in zip(curve.miss_ratios, curve.miss_ratios[1:]):
            assert later <= earlier + 1e-12

    def test_curve_converges_for_small_set(self):
        """A working set of 50 keys -> near-zero misses at size >= 50."""
        tracker = ReuseDistanceTracker()
        rng = random.Random(7)
        for _ in range(5000):
            tracker.access(rng.randrange(50))
        curve = tracker.curve()
        assert curve.miss_ratio_at(60) < 0.05
        assert curve.miss_ratio_at(1) > 0.5


class TestShards:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ShardsEstimator(initial_rate=0)

    def test_sampling_reduces_tracked_accesses(self):
        est = ShardsEstimator(initial_rate=0.1, fixed_size=None)
        for key in range(20_000):
            est.access(key)
        assert est.sampled_accesses < est.accesses * 0.2
        assert est.sampled_accesses > est.accesses * 0.02

    def test_fixed_size_adapts_rate_down(self):
        est = ShardsEstimator(initial_rate=0.5, fixed_size=256)
        for key in range(50_000):
            est.access(key)
        assert est.rate < 0.5
        assert len(est._sampled) <= 256

    def test_curve_roughly_matches_exact(self):
        """SHARDS' curve should agree with the exact tracker on a
        zipf-ish trace within coarse tolerance."""
        rng = random.Random(11)
        trace = [int(rng.paretovariate(1.2)) % 500 for _ in range(30_000)]
        exact = ReuseDistanceTracker()
        approx = ShardsEstimator(initial_rate=0.1, fixed_size=None)
        for key in trace:
            exact.access(key)
            approx.access(key)
        exact_curve = exact.curve()
        approx_curve = approx.curve()
        for size in (50, 150, 400):
            assert approx_curve.miss_ratio_at(size) == pytest.approx(
                exact_curve.miss_ratio_at(size), abs=0.15
            )

    def test_working_set_estimate(self):
        est = ShardsEstimator(initial_rate=0.2, fixed_size=None)
        for key in range(5000):
            est.access(key)
        assert est.working_set_estimate() == pytest.approx(5000, rel=0.4)


class TestWSS:
    def test_validation(self):
        with pytest.raises(ValueError):
            WSSEstimator(window_s=0)
        with pytest.raises(ValueError):
            WSSEstimator(epochs=0)

    def test_distinct_counting(self):
        wss = WSSEstimator(window_s=100, epochs=4)
        for key in [1, 2, 3, 1, 2]:
            wss.access(key, now=0.0)
        assert wss.working_set(0.0) == 3

    def test_window_expiry(self):
        wss = WSSEstimator(window_s=100, epochs=4)
        wss.access("old", now=0.0)
        assert wss.working_set(10.0) == 1
        # Far beyond the window, the old key is forgotten.
        assert wss.working_set(500.0) == 0

    def test_hot_set_is_recent_epoch(self):
        wss = WSSEstimator(window_s=100, epochs=4)
        wss.access("a", now=0.0)
        wss.access("b", now=30.0)  # new epoch
        assert wss.hot_set() == 1
        assert wss.working_set(30.0) == 2


class TestAdaptiveController:
    def _stack(self):
        ctx = SimContext(seed=13)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=128, eviction_batch_mb=0.5)
        )
        vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
        hot = vm.create_container("hot", 64, CachePolicy.memory(50))
        cold = vm.create_container("cold", 64, CachePolicy.memory(50))
        return ctx, host, cache, vm, hot, cold

    def test_controller_shifts_weight_to_the_reuser(self):
        """A container whose misses have reuse (cacheable) should win
        weight over one that misses cold (uncacheable stream)."""
        ctx, host, cache, vm, hot, cold = self._stack()
        # hot: cyclic re-reads of a 128 MB file (beyond its 64 MB cgroup).
        hot_file = hot.create_file(2048)
        # cold: one pass over an endless stream of new files.
        controller = AdaptiveWeightController(
            ctx.env, [hot, cold],
            total_cache_blocks=cache.capacities[StoreKind.MEMORY],
            interval_s=30.0, sample_rate=0.5,
        )
        controller.attach()

        rng = random.Random(4)

        def hot_loop(env):
            # Random re-reads (not a cyclic scan, which is LRU-hostile and
            # correctly yields a flat MRC): the MRC shows real reuse.
            while True:
                start = rng.randrange(hot_file.nblocks - 32)
                yield from hot.read(hot_file, start, 32)
                yield env.timeout(0.05)

        def cold_loop(env):
            while True:
                stream = cold.create_file(64)
                yield from cold.read(stream)
                yield from cold.delete(stream)
                yield env.timeout(0.2)

        ctx.env.process(hot_loop(ctx.env))
        ctx.env.process(cold_loop(ctx.env))
        ctx.run(until=200)
        assert controller.rounds >= 3
        hot_w = controller.profiles["hot"].weight
        cold_w = controller.profiles["cold"].weight
        assert hot_w > cold_w
        # And the weights actually landed in the hypervisor cache.
        assert cache._pools[hot.pool_id].policy.mem_weight == pytest.approx(
            hot_w
        )

    def test_validation(self):
        ctx, host, cache, vm, hot, cold = self._stack()
        with pytest.raises(ValueError):
            AdaptiveWeightController(ctx.env, [], 100)
        with pytest.raises(ValueError):
            AdaptiveWeightController(ctx.env, [hot], 100, interval_s=0)

    def test_stop_halts_rounds(self):
        ctx, host, cache, vm, hot, cold = self._stack()
        controller = AdaptiveWeightController(
            ctx.env, [hot, cold], 100, interval_s=10.0
        )
        controller.attach()
        ctx.run(until=25)
        controller.stop()
        rounds = controller.rounds
        ctx.run(until=100)
        assert controller.rounds == rounds


class TestBalloonController:
    def test_grows_the_swapper(self):
        ctx = SimContext(seed=17)
        host = ctx.create_host(HostSpec())
        host.install_doubledecker(DDConfig(mem_capacity_mb=256))
        vm = host.create_vm("vm1", memory_mb=2048, vcpus=4)
        anon = vm.create_container("anon", 128, CachePolicy.none())
        filey = vm.create_container("filey", 512, CachePolicy.memory(100))
        redis = RedisWorkload(nrecords=256_000, threads=1)   # 256 MB WSS
        web = WebserverWorkload(nfiles=3000, threads=1)
        redis.start(anon, ctx.streams)
        web.start(filey, ctx.streams)
        controller = BalloonController(ctx.env, [anon, filey],
                                       interval_s=30.0, step_mb=64.0)
        ctx.run(until=300)
        assert controller.moves > 0
        # The swapping container's limit grew; the donor's shrank.
        block_mb = vm.block_bytes / (1 << 20)
        assert anon.cgroup.limit_blocks * block_mb > 128
        assert filey.cgroup.limit_blocks * block_mb < 512

    def test_needs_two_containers(self):
        ctx = SimContext(seed=1)
        host = ctx.create_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("only", 128)
        with pytest.raises(ValueError):
            BalloonController(ctx.env, [c])


class TestShardsHashDeterminism:
    """sim-lint follow-up: SHARDS spatial hashing must not depend on
    PYTHONHASHSEED (which keys get *sampled* — and therefore the MRC the
    adaptive controller acts on — must be identical in every process)."""

    def test_int_tuple_keys_keep_historical_hash(self):
        # BlockKey-style keys take the structural-hash fast path; pinning
        # the Fibonacci spread of hash() proves fixed-seed experiment
        # fingerprints are byte-identical before/after the DD fix.
        for key in [0, 7, (0, 0), (1, 4), (2, 3), (123456, 789)]:
            expected = (hash(key) * 2654435761) % (1 << 32)
            assert ShardsEstimator._hash(key) == expected

    def test_string_keys_are_seed_independent(self):
        # str/bytes hash() is randomized per process; the estimator must
        # route them through the CRC basis.  Re-derive in subprocesses
        # with different PYTHONHASHSEED values and demand equality.
        import os
        import subprocess
        import sys

        program = (
            "from repro.policies.mrc import ShardsEstimator as S;"
            "print([S._hash(k) for k in"
            " ('alpha', ('db', 7), b'raw', ('mixed', (1, 'x')))])"
        )
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [env.get("PYTHONPATH"), "src"]))
            proc = subprocess.run(
                [sys.executable, "-c", program], env=env,
                capture_output=True, text=True, check=True,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

    def test_sampling_decisions_stable_for_mixed_keys(self):
        est = ShardsEstimator(initial_rate=0.5, fixed_size=None)
        for key in [("c1", 1), ("c1", 2), ("c2", 1), (1, 2), "plain"]:
            est.access(key)
        # Same estimator state regardless of this process's hash seed:
        # the sampled set derives only from the seed-independent hash.
        resampled = ShardsEstimator(initial_rate=0.5, fixed_size=None)
        for key in [("c1", 1), ("c1", 2), ("c2", 1), (1, 2), "plain"]:
            resampled.access(key)
        assert est.sampled_accesses == resampled.sampled_accesses
        assert sorted(map(repr, est._sampled)) == sorted(map(repr, resampled._sampled))
