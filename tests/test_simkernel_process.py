"""Unit tests for simulation processes (generators, interrupts, returns)."""

import pytest

from repro.simkernel import Environment, Interrupt


class TestProcessBasics:
    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_return_value_propagates(self):
        env = Environment()

        def child(env):
            yield env.timeout(1)
            return 99

        def parent(env, out):
            value = yield env.process(child(env))
            out.append(value)

        out = []
        env.process(parent(env, out))
        env.run(until=5)
        assert out == [99]

    def test_process_is_alive_until_done(self):
        env = Environment()

        def proc(env):
            yield env.timeout(3)

        process = env.process(proc(env))
        assert process.is_alive
        env.run(until=5)
        assert not process.is_alive

    def test_exception_in_process_propagates_to_waiter(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env, out):
            try:
                yield env.process(bad(env))
            except ValueError as exc:
                out.append(str(exc))

        out = []
        env.process(waiter(env, out))
        env.run(until=5)
        assert out == ["inner"]

    def test_unwaited_failure_crashes_simulation(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1)
            raise ValueError("lost")

        env.process(bad(env))
        with pytest.raises(ValueError, match="lost"):
            env.run(until=5)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(RuntimeError, match="not an Event"):
            env.run(until=1)

    def test_processes_share_clock(self):
        env = Environment()
        stamps = []

        def proc(env, delay):
            yield env.timeout(delay)
            stamps.append(env.now)

        env.process(proc(env, 1))
        env.process(proc(env, 2))
        env.run(until=5)
        assert stamps == [1.0, 2.0]

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        out = []
        trigger = env.event()
        trigger.succeed("early")

        def late(env):
            yield env.timeout(1)
            value = yield trigger
            out.append(value)

        env.process(late(env))
        env.run(until=5)
        assert out == ["early"]


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        out = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                out.append((env.now, interrupt.cause))

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run(until=10)
        assert out == [(2.0, "wake up")]

    def test_interrupting_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run(until=5)
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        out = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            out.append(env.now)

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run(until=10)
        assert out == [3.0]

    def test_interrupt_detaches_from_original_event(self):
        """After an interrupt, the original awaited event must not resume
        the process a second time."""
        env = Environment()
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(5)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(10)

        def killer(env, victim):
            yield env.timeout(1)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run(until=20)
        assert resumes == ["interrupt"]
