"""The shadow-accounting auditor and differential reference models.

Three layers of defense are exercised here:

* **Differential testing** — the production caches and their brute-force
  reference models (:mod:`repro.core.audit`) are driven with identical
  seeded random op streams and must agree on every return value, every
  FIFO order, every counter, and every occupancy figure.  The
  DoubleDecker suite covers all corners of {dedup, compression,
  trickle-down}; the baselines get their own streams.
* **Invariant auditing** — :func:`check_cache` recomputes ground truth
  from first principles; deliberate corruptions of each accounting layer
  must be caught, and clean caches must audit clean (including via the
  periodic ``audit_interval`` process and the experiment fixture).
* **Regression tests** — the stranded-block eviction leak, the
  flush-stats skew, and the ``migrate_objects`` edge cases fixed in this
  change each get a test that fails on the pre-fix code.
"""

import random

import pytest

from repro.core import (
    CachePolicy,
    CompressionModel,
    DDConfig,
    DoubleDeckerCache,
    GlobalCache,
    InvariantViolation,
    ReferenceCache,
    ReferenceGlobalCache,
    ReferenceStaticCache,
    StaticPartitionCache,
    StoreKind,
    assert_consistent,
    check_cache,
    set_audit_interval,
)
from repro.simkernel import Environment
from repro.storage import SSD

BLK = 64 * 1024
MEMORY = StoreKind.MEMORY
SSD_KIND = StoreKind.SSD

STAT_FIELDS = ("gets", "get_hits", "puts", "puts_stored", "flushes",
               "flush_requests", "evictions", "migrated_in", "migrated_out",
               "migrated_rejected",
               "put_rejected_policy", "put_rejected_capacity",
               "put_rejected_admission", "put_rejected_backpressure",
               "trickle_rejected_admission", "ssd_writes")


def run_gen(env, gen):
    return env.run(until=env.process(gen))


def make_dd(env=None, **overrides):
    env = env or Environment()
    overrides.setdefault("mem_capacity_mb", 1.0)
    overrides.setdefault("ssd_capacity_mb", 2.0)
    overrides.setdefault("eviction_batch_mb", 0.25)
    # Differential runs assume SSD writes are never rejected for buffer
    # space; the reference model does not track the write buffer.
    overrides.setdefault("ssd_write_buffer_mb", 10000.0)
    config = DDConfig(**overrides)
    ssd = SSD(env, BLK) if config.ssd_capacity_mb > 0 else None
    return env, DoubleDeckerCache(env, config, BLK, ssd_device=ssd)


# ----------------------------------------------------------------------
# Differential suite: DoubleDeckerCache vs ReferenceCache
# ----------------------------------------------------------------------

class DifferentialDriver:
    """Drive a DUT/reference pair with one seeded random op stream.

    The driver respects the per-VM ``(inode, block)`` uniqueness contract
    the guest stack guarantees (each VM has one filesystem): it never
    puts a key that a sibling pool still holds, which a split migration
    can otherwise arrange.  The auditor flags exactly that state.
    """

    POLICIES = [
        CachePolicy.memory(100.0),
        CachePolicy.ssd(100.0),
        CachePolicy.hybrid(60.0, 40.0),
        CachePolicy.memory(30.0),
    ]

    def __init__(self, env, dut, ref, seed):
        self.env = env
        self.dut = dut
        self.ref = ref
        self.rng = random.Random(seed)
        self.pools = []  # (vm_id, pool_id)
        for weight, name in ((100.0, "vm-a"), (200.0, "vm-b")):
            vm_dut = dut.register_vm(name, weight)
            vm_ref = ref.register_vm(name, weight)
            assert vm_dut == vm_ref
            for i in range(2):
                policy = self.POLICIES[len(self.pools) % len(self.POLICIES)]
                p_dut = dut.create_pool(vm_dut, f"ctr{i}", policy)
                p_ref = ref.create_pool(vm_ref, f"ctr{i}", policy)
                assert p_dut == p_ref
                self.pools.append((vm_dut, p_dut))
        # Disjoint per-pool inode ranges; migration transfers ownership.
        self.own = {
            pid: set(range(idx * 10 + 1, idx * 10 + 6))
            for idx, (_, pid) in enumerate(self.pools)
        }

    def siblings(self, vm_id, pool_id):
        return [q for v, q in self.pools if v == vm_id and q != pool_id]

    def keys_for(self, pool_id):
        inodes = sorted(self.own[pool_id])
        if not inodes:
            return []
        count = self.rng.randint(1, 12)
        return [(self.rng.choice(inodes), self.rng.randrange(40))
                for _ in range(count)]

    def put_keys(self, vm_id, pool_id):
        return [
            key for key in self.keys_for(pool_id)
            if not any(self.dut._pools[q].lookup(*key) is not None
                       for q in self.siblings(vm_id, pool_id))
        ]

    def step(self, step_no):
        rng = self.rng
        roll = rng.random()
        vm, pid = self.pools[rng.randrange(len(self.pools))]
        if roll < 0.45:
            keys = self.put_keys(vm, pid)
            got = run_gen(self.env, self.dut.put_many(vm, pid, keys))
            want = self.ref.put_many(vm, pid, keys)
            assert got == want, (step_no, "put", got, want)
        elif roll < 0.80:
            keys = self.keys_for(pid)
            got = run_gen(self.env, self.dut.get_many(vm, pid, keys))
            want = self.ref.get_many(vm, pid, keys)
            assert got == want, (step_no, "get", got, want)
        elif roll < 0.88:
            keys = self.keys_for(pid)
            assert (self.dut.flush_many(vm, pid, keys)
                    == self.ref.flush_many(vm, pid, keys)), (step_no, "flush")
        elif roll < 0.93:
            inodes = sorted(self.own[pid])
            if inodes:
                inode = rng.choice(inodes)
                assert (self.dut.flush_inode(vm, pid, inode)
                        == self.ref.flush_inode(vm, pid, inode)), (
                            step_no, "flush_inode")
        elif roll < 0.97:
            sibs = self.siblings(vm, pid)
            inodes = sorted(self.own[pid])
            if sibs and inodes:
                target = rng.choice(sibs)
                inode = rng.choice(inodes)
                moved = self.dut.migrate_objects(vm, pid, target, inode)
                assert moved == self.ref.migrate_objects(vm, pid, target, inode), (
                    step_no, "migrate")
                if moved:
                    self.own[target].add(inode)
                if self.dut._pools[pid].files.get(inode) is None:
                    self.own[pid].discard(inode)
        else:
            policy = self.POLICIES[rng.randrange(len(self.POLICIES))]
            self.dut.set_policy(vm, pid, policy)
            self.ref.set_policy(vm, pid, policy)

    def compare_full_state(self, step_no):
        dut, ref = self.dut, self.ref
        assert dut.used == ref.used, (step_no, dut.used, ref.used)
        assert dut._mem_units_used == ref._units_used, (
            step_no, dut._mem_units_used, ref._units_used)
        for _, pid in self.pools:
            dp = dut._pools[pid]
            rp = ref.pools[pid]
            for kind in (MEMORY, SSD_KIND):
                assert list(dp.fifos[kind]) == rp.order[kind], (
                    step_no, pid, kind)
            stats = dp.snapshot_stats()
            for field in STAT_FIELDS:
                assert getattr(stats, field) == rp.stats[field], (
                    step_no, pid, field)
            # Admission controllers must exist (or not) in lockstep and
            # agree on their full ledger and ghost contents.
            assert (dp.admission is None) == (rp.admission is None), (
                step_no, pid, "admission presence")
            if dp.admission is not None:
                assert dp.admission.name == rp.admission.name, (step_no, pid)
                for field in ("attempts", "admitted", "rejected"):
                    assert (getattr(dp.admission, field)
                            == getattr(rp.admission, field)), (
                        step_no, pid, "admission", field)
                if hasattr(dp.admission, "_ghost"):
                    assert list(dp.admission._ghost) == rp.admission.ghost, (
                        step_no, pid, "ghost")

    def run(self, ops, audit_every=100):
        for step_no in range(ops):
            self.step(step_no)
            if step_no % audit_every == 0:
                assert_consistent(self.dut, where=f"step {step_no}")
                self.compare_full_state(step_no)
        assert_consistent(self.dut, where="end")
        self.compare_full_state(ops)


CORNERS = [
    # (dedup, compression, trickle_down, admission)
    # ``write_throttle`` is deliberately absent: it depends on the
    # simulation clock, which the untimed reference cannot mirror.
    pytest.param(False, False, False, None, id="plain"),
    pytest.param(True, False, False, None, id="dedup"),
    pytest.param(False, True, False, None, id="compression"),
    pytest.param(False, False, True, None, id="trickle"),
    pytest.param(True, True, False, None, id="dedup+compression"),
    pytest.param(True, True, True, None, id="all-on"),
    pytest.param(False, False, False, "admit_all", id="admit-all"),
    pytest.param(False, False, False, "second_access", id="second-access"),
    pytest.param(False, False, True, "second_access",
                 id="second-access+trickle"),
]

#: 9 corners x 2000 ops = 18k random ops against the reference model.
OPS_PER_CORNER = 2000


class TestDifferentialDoubleDecker:
    @pytest.mark.parametrize("dedup,compression,trickle,admission", CORNERS)
    def test_matches_reference(self, dedup, compression, trickle, admission):
        overrides = dict(
            trickle_down=trickle,
            dedup=dedup,
            dedup_fingerprint=(
                (lambda ns, inode, block: (inode * 7 + block) % 23)
                if dedup else None
            ),
            compression=CompressionModel() if compression else None,
            admission=admission,
        )
        env, dut = make_dd(**overrides)
        ref = ReferenceCache(dut.config, BLK, has_ssd=True)
        DifferentialDriver(env, dut, ref, seed=7).run(OPS_PER_CORNER)

    def test_admission_policy_switch_matches_reference(self):
        """Per-pool ``CachePolicy.admission`` swaps the controller on a
        name change and keeps its ghost state otherwise — on both sides."""
        env, dut = make_dd()
        ref = ReferenceCache(dut.config, BLK, has_ssd=True)
        driver = DifferentialDriver(env, dut, ref, seed=13)
        switches = [
            CachePolicy.ssd(100.0, admission="second_access"),
            CachePolicy.ssd(100.0, admission="second_access"),  # kept
            CachePolicy.hybrid(40.0, 60.0, admission="admit_all"),
            CachePolicy.ssd(100.0),  # back to no controller
            CachePolicy.hybrid(60.0, 40.0, admission="second_access"),
        ]
        for round_no, policy in enumerate(switches):
            vm, pid = driver.pools[round_no % len(driver.pools)]
            dut.set_policy(vm, pid, policy)
            ref.set_policy(vm, pid, policy)
            for step_no in range(250):
                driver.step((round_no, step_no))
            assert_consistent(dut, where=f"switch {round_no}")
            driver.compare_full_state(f"switch {round_no}")

    def test_capacity_resize_matches_reference(self):
        env, dut = make_dd()
        ref = ReferenceCache(dut.config, BLK, has_ssd=True)
        driver = DifferentialDriver(env, dut, ref, seed=11)
        for round_no, (mem_mb, ssd_mb) in enumerate(
                [(1.0, 2.0), (0.5, 1.0), (2.0, 0.5), (0.25, 2.0)]):
            dut.set_capacity(MEMORY, mem_mb)
            ref.set_capacity(MEMORY, mem_mb)
            dut.set_capacity(SSD_KIND, ssd_mb)
            ref.set_capacity(SSD_KIND, ssd_mb)
            assert_consistent(dut, where=f"resize {round_no}")
            driver.compare_full_state(f"resize {round_no}")
            for step_no in range(300):
                driver.step((round_no, step_no))
            assert_consistent(dut)
            driver.compare_full_state(round_no)

    def test_destroy_pool_matches_reference(self):
        env, dut = make_dd(dedup=True)
        ref = ReferenceCache(dut.config, BLK, has_ssd=True)
        driver = DifferentialDriver(env, dut, ref, seed=3)
        for step_no in range(400):
            driver.step(step_no)
        vm, pid = driver.pools[0]
        dut.destroy_pool(vm, pid)
        ref.destroy_pool(vm, pid)
        driver.pools.remove((vm, pid))
        del driver.own[pid]
        assert_consistent(dut, where="after destroy")
        driver.compare_full_state("after destroy")
        for step_no in range(400):
            driver.step(step_no)
        assert_consistent(dut)
        driver.compare_full_state("end")


# ----------------------------------------------------------------------
# Differential suite: baselines vs their references
# ----------------------------------------------------------------------

class BaselineDriver:
    """Random op stream for the (memory-only, policy-less) baselines."""

    def __init__(self, env, dut, ref, seed):
        self.env = env
        self.dut = dut
        self.ref = ref
        self.rng = random.Random(seed)
        self.pools = []
        for weight, name in ((100.0, "vm-a"), (100.0, "vm-b")):
            vm_dut = dut.register_vm(name, weight)
            vm_ref = ref.register_vm(name, weight)
            assert vm_dut == vm_ref
            for i in range(2):
                p_dut = dut.create_pool(vm_dut, f"ctr{i}", CachePolicy.memory(100.0))
                p_ref = ref.create_pool(vm_ref, f"ctr{i}", CachePolicy.memory(100.0))
                assert p_dut == p_ref
                self.pools.append((vm_dut, p_dut))

    def keys(self, pool_id):
        count = self.rng.randint(1, 12)
        base = pool_id * 10
        return [(base + self.rng.randrange(1, 6), self.rng.randrange(40))
                for _ in range(count)]

    def run(self, ops, audit_every=100):
        rng = self.rng
        for step_no in range(ops):
            roll = rng.random()
            vm, pid = self.pools[rng.randrange(len(self.pools))]
            if roll < 0.45:
                keys = self.keys(pid)
                got = run_gen(self.env, self.dut.put_many(vm, pid, keys))
                assert got == self.ref.put_many(vm, pid, keys), (step_no, "put")
            elif roll < 0.80:
                keys = self.keys(pid)
                got = run_gen(self.env, self.dut.get_many(vm, pid, keys))
                assert got == self.ref.get_many(vm, pid, keys), (step_no, "get")
            elif roll < 0.90:
                keys = self.keys(pid)
                assert (self.dut.flush_many(vm, pid, keys)
                        == self.ref.flush_many(vm, pid, keys)), (step_no, "flush")
            else:
                inode = pid * 10 + rng.randrange(1, 6)
                assert (self.dut.flush_inode(vm, pid, inode)
                        == self.ref.flush_inode(vm, pid, inode)), (
                            step_no, "flush_inode")
            if step_no % audit_every == 0:
                assert_consistent(self.dut, where=f"step {step_no}")
                self.compare(step_no)
        assert_consistent(self.dut, where="end")
        self.compare(ops)

    def compare(self, step_no):
        assert self.dut.used_blocks == self.ref.used_blocks, step_no
        for _, pid in self.pools:
            dp = self.dut._pools[pid]
            rp = self.ref.pools[pid]
            assert list(dp.fifos[MEMORY]) == rp.order[MEMORY], (step_no, pid)
            stats = dp.snapshot_stats()
            for field in STAT_FIELDS:
                assert getattr(stats, field) == rp.stats[field], (
                    step_no, pid, field)
        if hasattr(self.dut, "_fifo"):
            assert list(self.dut._fifo) == self.ref._fifo, step_no


class TestDifferentialBaselines:
    @pytest.mark.parametrize("exclusive", [True, False],
                             ids=["exclusive", "inclusive"])
    def test_global_cache_matches_reference(self, exclusive):
        env = Environment()
        dut = GlobalCache(env, 1.0, BLK, per_vm_cap_mb=0.75, exclusive=exclusive)
        ref = ReferenceGlobalCache(1.0, BLK, per_vm_cap_mb=0.75,
                                   exclusive=exclusive)
        BaselineDriver(env, dut, ref, seed=5).run(1500)

    def test_static_partition_matches_reference(self):
        env = Environment()
        dut = StaticPartitionCache(env, 2.0, BLK)
        ref = ReferenceStaticCache(2.0, BLK)
        driver = BaselineDriver(env, dut, ref, seed=9)
        for _, pid in driver.pools:
            dut.set_partition(pid, 0.4)
            ref.set_partition(pid, 0.4)
        driver.run(1500)


# ----------------------------------------------------------------------
# Regression tests for the fixed bugs
# ----------------------------------------------------------------------

class TestStrandedBlockEviction:
    def fill(self, env, cache, vm, pool, count, start_inode=1):
        keys = [(start_inode, block) for block in range(count)]
        return run_gen(env, cache.put_many(vm, pool, keys))

    def test_policy_switch_strands_are_evictable(self):
        """Pre-fix: blocks kept in a store after a ``set_policy`` store
        switch were invisible to ``_evict_round`` (it enumerated pools by
        policy weight), so ``_make_room`` wedged with the store full."""
        env, cache = make_dd(mem_capacity_mb=1.0, ssd_capacity_mb=2.0)
        vm = cache.register_vm("vm")
        ctr_a = cache.create_pool(vm, "a", CachePolicy.memory(100.0))
        ctr_b = cache.create_pool(vm, "b", CachePolicy.none())
        cap = cache.capacities[MEMORY]
        assert self.fill(env, cache, vm, ctr_a, cap) == cap
        # Store switch: the pool moves to SSD but its memory-resident
        # blocks legitimately stay (they age out FIFO under pressure).
        cache.set_policy(vm, ctr_a, CachePolicy.ssd(100.0))
        assert cache.used[MEMORY] == cap  # blocks kept, store full
        assert_consistent(cache)
        # Another pool now wants the store: eviction must find the strands.
        cache.set_policy(vm, ctr_b, CachePolicy.memory(100.0))
        stored = self.fill(env, cache, vm, ctr_b, 8, start_inode=2)
        assert stored == 8, "store wedged: stranded blocks were not evicted"
        assert cache.pool_stats(vm, ctr_a).evictions > 0
        assert_consistent(cache)

    def test_policy_none_still_drains(self):
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "a", CachePolicy.memory(100.0))
        self.fill(env, cache, vm, pool, 8)
        cache.set_policy(vm, pool, CachePolicy.none())
        assert cache.used[MEMORY] == 0
        assert_consistent(cache)

    def test_trickle_down_strands_are_evictable(self):
        """Trickle-down re-homes memory-evicted blocks into the pool's SSD
        FIFO even when the pool is memory-only; those blocks must remain
        reclaimable when the SSD store later fills."""
        env, cache = make_dd(mem_capacity_mb=0.5, ssd_capacity_mb=0.5,
                             trickle_down=True)
        vm = cache.register_vm("vm")
        mem_only = cache.create_pool(vm, "mem", CachePolicy.memory(100.0))
        mem_cap = cache.capacities[MEMORY]
        ssd_cap = cache.capacities[SSD_KIND]
        # Overfill memory: evictions trickle into the memory-only pool's
        # SSD FIFO until the SSD store is full too.
        self.fill(env, cache, vm, mem_only, mem_cap + ssd_cap + 8)
        assert cache._pools[mem_only].used[SSD_KIND] > 0
        assert cache.used[SSD_KIND] == ssd_cap
        assert_consistent(cache)
        # An SSD pool arrives; its puts must displace the strands.
        ssd_pool = cache.create_pool(vm, "ssd", CachePolicy.ssd(100.0))
        stored = self.fill(env, cache, vm, ssd_pool, 4, start_inode=2)
        assert stored == 4, "SSD store wedged on trickled-down strands"
        assert_consistent(cache)

    def test_vm_level_strands_are_evictable(self):
        """A whole VM whose pools all left a store keeps its blocks
        visible at the VM level of Algorithm 1 too."""
        env, cache = make_dd(mem_capacity_mb=1.0, ssd_capacity_mb=2.0)
        vm_a = cache.register_vm("a")
        vm_b = cache.register_vm("b")
        pool_a = cache.create_pool(vm_a, "ctr", CachePolicy.memory(100.0))
        cap = cache.capacities[MEMORY]
        self.fill(env, cache, vm_a, pool_a, cap)
        # The whole VM leaves the memory store; its blocks stay behind.
        cache.set_policy(vm_a, pool_a, CachePolicy.ssd(100.0))
        assert cache.used[MEMORY] == cap
        pool_b = cache.create_pool(vm_b, "ctr", CachePolicy.memory(100.0))
        stored = self.fill(env, cache, vm_b, pool_b, 8, start_inode=3)
        assert stored == 8
        assert_consistent(cache)


class TestFlushStats:
    def test_flush_many_counts_drops_and_requests(self):
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        keys = [(1, block) for block in range(10)]
        run_gen(env, cache.put_many(vm, pool, keys))
        dropped = cache.flush_many(vm, pool, keys + [(2, 0), (2, 1)])
        assert dropped == 10
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 10
        assert stats.flush_requests == 12

    def test_flush_inode_consistent_with_flush_many(self):
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(6)]))
        run_gen(env, cache.put_many(vm, pool, [(2, b) for b in range(4)]))
        assert cache.flush_inode(vm, pool, 1) == 6
        stats = cache.pool_stats(vm, pool)
        # Without a request size, residency is the best available proxy.
        assert stats.flushes == 6
        assert stats.flush_requests == 6
        cache.flush_many(vm, pool, [(2, b) for b in range(4)])
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 10
        assert stats.flush_requests == 10

    def test_flush_inode_counts_requested_blocks(self):
        """Regression (inconsistent flush_requests semantics): with the
        file size supplied, a whole-file flush of a partially resident
        inode counts *asks* into ``flush_requests`` — same requested
        semantics as flush_many — while ``flushes`` still counts drops."""
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        # 4 of the file's 9 blocks are resident.
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(4)]))
        assert cache.flush_inode(vm, pool, 1, nblocks=9) == 4
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 4
        assert stats.flush_requests == 9
        # flush_many of a 9-key batch with 4 resident reports identically.
        run_gen(env, cache.put_many(vm, pool, [(2, b) for b in range(4)]))
        assert cache.flush_many(vm, pool,
                                [(2, b) for b in range(9)]) == 4
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 8
        assert stats.flush_requests == 18
        assert_consistent(cache)

    def test_flush_inode_requested_semantics_in_baselines(self):
        env = Environment()
        cache = GlobalCache(env, 1.0, BLK)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(5, b) for b in range(3)]))
        assert cache.flush_inode(vm, pool, 5, nblocks=7) == 3
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 3
        assert stats.flush_requests == 7

    def test_baseline_flush_stats_same_convention(self):
        env = Environment()
        cache = GlobalCache(env, 1.0, BLK)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        keys = [(1, block) for block in range(8)]
        run_gen(env, cache.put_many(vm, pool, keys))
        assert cache.flush_many(vm, pool, keys + [(3, 3)]) == 8
        stats = cache.pool_stats(vm, pool)
        assert stats.flushes == 8
        assert stats.flush_requests == 9


class TestMigrateObjects:
    def setup_pools(self, **overrides):
        env, cache = make_dd(**overrides)
        vm = cache.register_vm("vm")
        a = cache.create_pool(vm, "a", CachePolicy.memory(100.0))
        b = cache.create_pool(vm, "b", CachePolicy.memory(100.0))
        return env, cache, vm, a, b

    def test_self_migration_is_noop(self):
        env, cache, vm, a, _ = self.setup_pools(ssd_capacity_mb=0.0)
        keys = [(1, block) for block in range(6)]
        run_gen(env, cache.put_many(vm, a, keys))
        order_before = list(cache._pools[a].fifos[MEMORY])
        assert cache.migrate_objects(vm, a, a, 1) == 0
        # Pre-fix, self-migration reinserted every block, resetting its
        # FIFO residence order (artificially youngest) and inflating stats.
        assert list(cache._pools[a].fifos[MEMORY]) == order_before
        stats = cache.pool_stats(vm, a)
        assert stats.migrated_in == 0 and stats.migrated_out == 0
        assert_consistent(cache)

    def test_migration_updates_both_pools_stats(self):
        env, cache, vm, a, b = self.setup_pools(ssd_capacity_mb=0.0)
        run_gen(env, cache.put_many(vm, a, [(1, block) for block in range(5)]))
        assert cache.migrate_objects(vm, a, b, 1) == 5
        assert cache.pool_stats(vm, a).migrated_out == 5
        assert cache.pool_stats(vm, b).migrated_in == 5
        assert cache._pools[a].used[MEMORY] == 0
        assert cache._pools[b].used[MEMORY] == 5
        assert cache.used[MEMORY] == 5
        assert_consistent(cache)

    def test_zero_weight_target_rejects_blocks(self):
        """Migration must not manufacture stranded blocks: a block whose
        current store the target policy does not weight stays put."""
        env, cache = make_dd()
        vm = cache.register_vm("vm")
        hybrid = cache.create_pool(vm, "h", CachePolicy.hybrid(50.0, 50.0))
        mem_only = cache.create_pool(vm, "m", CachePolicy.memory(100.0))
        mem_ent = cache._pools[hybrid].entitlement[MEMORY]
        # Overfill the hybrid pool so the same inode spans both stores.
        run_gen(env, cache.put_many(
            vm, hybrid, [(1, block) for block in range(mem_ent + 4)]))
        assert cache._pools[hybrid].used[SSD_KIND] > 0
        ssd_blocks = cache._pools[hybrid].used[SSD_KIND]
        mem_blocks = cache._pools[hybrid].used[MEMORY]
        moved = cache.migrate_objects(vm, hybrid, mem_only, 1)
        # Only the memory-resident blocks moved; SSD blocks were rejected.
        assert moved == mem_blocks
        assert cache._pools[hybrid].used[SSD_KIND] == ssd_blocks
        assert cache._pools[mem_only].used[SSD_KIND] == 0
        assert cache.pool_stats(vm, hybrid).migrated_out == mem_blocks
        assert cache.pool_stats(vm, mem_only).migrated_in == mem_blocks
        # The rejects are no longer silent: the source pool counts them.
        assert cache.pool_stats(vm, hybrid).migrated_rejected == ssd_blocks
        assert cache.pool_stats(vm, mem_only).migrated_rejected == 0
        assert_consistent(cache)

    def test_partial_migration_records_rejects_in_ledger(self):
        """Regression (silent partial migration): the obs ledger and the
        ``migrate`` instant must record per-block rejects, so a caller can
        distinguish a full migration from a partial one."""
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)
        try:
            env, cache = make_dd()
            vm = cache.register_vm("vm")
            hybrid = cache.create_pool(vm, "h", CachePolicy.hybrid(50.0, 50.0))
            mem_only = cache.create_pool(vm, "m", CachePolicy.memory(100.0))
            mem_ent = cache._pools[hybrid].entitlement[MEMORY]
            run_gen(env, cache.put_many(
                vm, hybrid, [(1, block) for block in range(mem_ent + 4)]))
            ssd_blocks = cache._pools[hybrid].used[SSD_KIND]
            assert ssd_blocks > 0
            moved = cache.migrate_objects(vm, hybrid, mem_only, 1)
            ledger = tracer.ledger[cache._obs_label]
            assert ledger[hybrid]["migrated_out"] == moved
            assert ledger[hybrid]["migrated_rejected"] == ssd_blocks
            assert ledger[mem_only]["migrated_in"] == moved
            instants = [event for event in tracer.events
                        if event["name"] == "migrate"]
            assert instants and instants[-1]["args"]["rejected"] == ssd_blocks
            assert instants[-1]["args"]["moved"] == moved
            assert_consistent(cache)
        finally:
            set_tracer(None)

    def test_unknown_pool_still_raises(self):
        env, cache, vm, a, _ = self.setup_pools(ssd_capacity_mb=0.0)
        with pytest.raises(KeyError):
            cache.migrate_objects(vm, a, 999, 1)


# ----------------------------------------------------------------------
# The auditor itself
# ----------------------------------------------------------------------

class TestAuditor:
    def populated(self, **overrides):
        env, cache = make_dd(**overrides)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(8)]))
        return env, cache, vm, pool

    def test_clean_cache_audits_clean(self):
        _, cache, _, _ = self.populated()
        assert check_cache(cache) == []

    def test_manager_used_drift_is_caught(self):
        _, cache, _, _ = self.populated()
        cache.used[MEMORY] += 1
        assert any("manager.used" in v for v in check_cache(cache))

    def test_pool_used_drift_is_caught(self):
        _, cache, _, pool = self.populated()
        cache._pools[pool].used[MEMORY] += 1
        violations = check_cache(cache)
        assert any("FIFO holds" in v for v in violations)

    def test_fifo_index_divergence_is_caught(self):
        _, cache, _, pool = self.populated()
        # Drop a key from the file index but not the slab FIFO.
        tree = cache._pools[pool].files[1]
        del tree[0]
        assert any("FIFO key" in v or "index" in v for v in check_cache(cache))

    def test_mem_units_drift_is_caught(self):
        _, cache, _, _ = self.populated()
        cache._mem_units_used += 1
        assert any("_mem_units_used" in v for v in check_cache(cache))

    def test_dedup_index_drift_is_caught(self):
        _, cache, _, _ = self.populated(dedup=True)
        key = next(iter(cache.dedup._placed))
        fp = cache.dedup._placed.pop(key)
        cache.dedup.logical_blocks -= 1
        violations = check_cache(cache)
        assert any("dedup index out of sync" in v for v in violations)
        cache.dedup._placed[key] = fp
        cache.dedup.logical_blocks += 1
        assert check_cache(cache) == []

    def test_stale_entitlements_are_caught(self):
        _, cache, vm, _ = self.populated()
        # Bypass set_vm_weight's _recompute to simulate a missed refresh.
        cache.vms[vm].weight = 50.0
        cache.vms[vm].pools[next(iter(cache.vms[vm].pools))]  # touch
        cache.register_vm("other")  # second VM so shares actually change
        cache.create_pool(2, "c", CachePolicy.memory(100.0))
        cache._vm_entitlements[(vm, MEMORY)] += 7
        assert any("stale" in v.lower() for v in check_cache(cache))

    def test_audit_is_side_effect_free(self):
        _, cache, _, pool = self.populated()
        before = dict(cache._pools[pool].entitlement)
        vm_before = dict(cache._vm_entitlements)
        assert check_cache(cache) == []
        assert cache._pools[pool].entitlement == before
        assert cache._vm_entitlements == vm_before

    def test_baseline_used_blocks_drift_is_caught(self):
        env = Environment()
        cache = GlobalCache(env, 1.0, BLK)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(4)]))
        assert check_cache(cache) == []
        cache.used_blocks += 1
        assert any("used_blocks" in v for v in check_cache(cache))

    def test_baseline_untracked_fifo_block_is_caught(self):
        env = Environment()
        cache = GlobalCache(env, 1.0, BLK)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(4)]))
        # A block the global FIFO forgot can never be evicted.
        del cache._fifo[(pool, 1, 0)]
        assert any("never be evicted" in v for v in check_cache(cache))

    def test_assert_consistent_raises_with_report(self):
        _, cache, _, _ = self.populated()
        cache.used[MEMORY] += 2
        with pytest.raises(InvariantViolation, match="manager.used"):
            assert_consistent(cache, where="unit test")

    # -- store-counter ledger (DD014 coverage) -------------------------

    def evicting(self):
        """Overfill the memory tier so eviction rounds actually run."""
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        # 1 MB / 64 KB = 16 blocks of capacity; 32 puts force evictions.
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(32)]))
        assert cache.store_counters[MEMORY].evictions > 0
        return env, cache, vm, pool

    def test_store_eviction_round_tamper_is_caught(self):
        _, cache, _, _ = self.populated()
        cache.store_counters[MEMORY].eviction_rounds += 1
        assert any("eviction rounds" in v for v in check_cache(cache))

    def test_store_evictions_without_round_is_caught(self):
        _, cache, _, _ = self.populated()
        cache.store_counters[MEMORY].evictions += 1
        assert any("outside any eviction round" in v
                   for v in check_cache(cache))

    def test_store_rejected_puts_drift_is_caught(self):
        _, cache, _, _ = self.populated()
        cache.store_counters[MEMORY].rejected_puts += 1
        assert any("rejected_puts do not reconcile" in v
                   for v in check_cache(cache))

    def test_store_rejection_bucket_overflow_is_caught(self):
        _, cache, _, _ = self.populated()
        cache.store_counters[MEMORY].rejected_admission += 1
        violations = check_cache(cache)
        assert any("sub-buckets exceed" in v or "rejected_admission" in v
                   for v in violations)

    def test_store_counters_reconcile_across_destroy_pool(self):
        """The regression the destroyed-pool accumulators exist for: the
        per-store ledger must still reconcile after the pools whose
        activity it aggregates are gone."""
        _, cache, vm, pool = self.evicting()
        assert check_cache(cache) == []
        cache.destroy_pool(vm, pool)
        assert check_cache(cache) == []

    # -- endurance invariants ------------------------------------------

    def populated_ssd(self, **overrides):
        env, cache = make_dd(**overrides)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.ssd(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(8)]))
        return env, cache, vm, pool

    def test_put_ledger_leak_is_caught(self):
        _, cache, _, pool = self.populated_ssd()
        assert check_cache(cache) == []
        cache._pools[pool].stats.puts += 1
        assert any("put ledger leaks" in v for v in check_cache(cache))

    def test_rejection_misclassification_is_caught(self):
        """Moving a rejection between buckets without a matching put is
        exactly the drift the ledger exists to catch."""
        _, cache, _, pool = self.populated_ssd()
        cache._pools[pool].stats.put_rejected_backpressure += 1
        assert any("put ledger leaks" in v for v in check_cache(cache))

    def test_pool_ssd_writes_drift_is_caught(self):
        _, cache, _, pool = self.populated_ssd()
        cache._pools[pool].stats.ssd_writes += 1
        assert any("do not reconcile" in v for v in check_cache(cache))

    def test_backend_buffer_leak_is_caught(self):
        env, cache, _, _ = self.populated_ssd()
        env.run(until=10.0)  # let the write buffer drain
        assert check_cache(cache) == []
        cache.ssd_backend.blocks_written += 1
        assert any("write buffer leaks" in v for v in check_cache(cache))

    def test_wear_desync_is_caught(self):
        env, cache, _, _ = self.populated_ssd()
        env.run(until=10.0)
        wear = cache.ssd_backend.device.wear
        assert wear.host_bytes_written > 0  # the drain charged wear
        wear.host_bytes_written += BLK
        assert any("wear model out of sync" in v for v in check_cache(cache))

    def test_admission_ledger_leak_is_caught(self):
        _, cache, _, pool = self.populated_ssd(admission="second_access")
        assert check_cache(cache) == []
        cache._pools[pool].admission.attempts += 1
        assert any("admission ledger leaks" in v for v in check_cache(cache))

    def test_destroyed_pool_writes_stay_reconciled(self):
        env, cache, vm, pool = self.populated_ssd()
        assert cache._pools[pool].stats.ssd_writes > 0
        cache.destroy_pool(vm, pool)
        assert check_cache(cache) == []


class TestPeriodicAudit:
    def test_audit_interval_wires_a_process(self):
        env, cache = make_dd(audit_interval=5.0, ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(8)]))
        env.run(until=20.0)  # several audit firings over a clean cache

    def test_periodic_audit_raises_on_corruption(self):
        env, cache = make_dd(audit_interval=5.0, ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(8)]))
        cache.used[MEMORY] += 1
        with pytest.raises(InvariantViolation):
            env.run(until=20.0)

    def test_global_switch_covers_new_caches(self):
        set_audit_interval(3.0)
        try:
            env, cache = make_dd(ssd_capacity_mb=0.0)
            vm = cache.register_vm("vm")
            pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
            run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(4)]))
            cache._mem_units_used += 1
            with pytest.raises(InvariantViolation):
                env.run(until=10.0)
        finally:
            set_audit_interval(0.0)

    def test_interval_zero_is_off(self):
        env, cache = make_dd(ssd_capacity_mb=0.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        run_gen(env, cache.put_many(vm, pool, [(1, b) for b in range(4)]))
        cache.used[MEMORY] += 1  # corrupted, but nobody is watching
        env.run(until=50.0)
        cache.used[MEMORY] -= 1


# ----------------------------------------------------------------------
# Experiment integration: fixture-driven audited run + the --audit flag
# ----------------------------------------------------------------------

@pytest.fixture
def audited_simulation():
    """Enable the global audit switch for every cache built in the test."""
    set_audit_interval(10.0)
    yield
    set_audit_interval(0.0)


class TestAuditedExperiments:
    @pytest.mark.slow
    def test_caching_modes_small_scale_audits_clean(self, audited_simulation):
        from repro.experiments.caching_modes import CachingModesExperiment

        result = CachingModesExperiment(
            scale=0.02, seed=11, warmup_s=10.0, duration_s=15.0).run()
        assert result is not None

    @pytest.mark.slow
    def test_cli_audit_flag(self, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["motivation", "--scale", "0.05", "--no-plots",
                     "--audit", "10", "--out", str(tmp_path)])
        assert code == 0
        # The switch must not leak into later, non-audited runs.
        from repro.core import global_audit_interval
        assert global_audit_interval() == 0.0

    def test_cli_audit_validation(self):
        from repro.experiments.__main__ import main

        assert main(["motivation", "--audit", "-1"]) == 2
