"""Tests for workload models: counters, filesets, op behaviour."""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.hypervisor import HostSpec
from repro.workloads import (
    MongoWorkload,
    MySQLWorkload,
    RedisWorkload,
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from repro.workloads.base import Workload
from repro.workloads.filebench import Fileset


def build(limit_mb=256, cache_mb=128, vm_mb=2048):
    ctx = SimContext(seed=11)
    host = ctx.create_host(HostSpec())
    host.install_doubledecker(DDConfig(mem_capacity_mb=cache_mb))
    vm = host.create_vm("vm1", memory_mb=vm_mb, vcpus=4)
    container = vm.create_container("c", limit_mb, CachePolicy.memory(100))
    return ctx, container


class TestWorkloadBase:
    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            WebserverWorkload(threads=0)

    def test_snapshot_rates(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=50, mean_size_kb=64, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        s0 = workload.snapshot()
        ctx.run(until=30)
        rates = workload.snapshot().rates_since(s0)
        assert rates["ops_per_s"] > 0
        assert rates["mb_per_s"] > 0
        assert rates["mean_latency_ms"] > 0

    def test_rates_since_zero_interval(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=10, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=5)
        snap = workload.snapshot()
        assert snap.rates_since(snap)["ops_per_s"] == 0.0

    def test_stop_halts_ops(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=10, threads=2)
        workload.start(container, ctx.streams)
        ctx.run(until=5)
        workload.stop()
        ops = workload.counters.ops
        ctx.run(until=20)
        assert workload.counters.ops == ops


class TestFileset:
    def test_sizes_positive(self):
        ctx, container = build()
        fileset = Fileset(container, 100, 64.0, ctx.streams.stream("fs"))
        assert len(fileset) == 100
        assert all(f.nblocks >= 1 for f in fileset.files)
        assert fileset.total_mb > 0

    def test_mean_size_roughly_respected(self):
        ctx, container = build()
        fileset = Fileset(container, 2000, 256.0, ctx.streams.stream("fs"))
        mean_kb = fileset.total_blocks * container.vm.block_bytes / 1024 / 2000
        # ceil-to-block inflates small files; allow a loose band.
        assert 200 < mean_kb < 500

    def test_replace_swaps_file(self):
        ctx, container = build()
        fileset = Fileset(container, 10, 64.0, ctx.streams.stream("fs"))
        old, new = fileset.replace()
        assert old not in fileset.files
        assert new in fileset.files
        assert len(fileset) == 10

    def test_needs_at_least_one_file(self):
        ctx, container = build()
        with pytest.raises(ValueError):
            Fileset(container, 0, 64.0, ctx.streams.stream("fs"))


class TestFilebenchProfiles:
    def test_webserver_reads_and_appends(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=100, threads=1, reads_per_op=3)
        workload.start(container, ctx.streams)
        ctx.run(until=20)
        assert workload.counters.ops > 0
        assert workload.counters.bytes_read > 0
        assert workload.counters.bytes_written > 0

    def test_webproxy_churns_files(self):
        ctx, container = build()
        workload = WebproxyWorkload(nfiles=100, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=20)
        assert container.vm.os.fs.deleted > 0
        assert workload.counters.ops > 0

    def test_varmail_fsyncs(self):
        ctx, container = build()
        workload = VarmailWorkload(nfiles=100, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=20)
        assert workload.counters.ops > 0
        # fsyncs force synchronous disk writes
        host_disk = container.vm.os.disk
        assert host_disk.stats.writes > 0

    def test_videoserver_streams_sequentially(self):
        ctx, container = build()
        workload = VideoserverWorkload(
            nvideos=2, video_mb=16, threads=1, writer_interval_s=0
        )
        workload.start(container, ctx.streams)
        ctx.run(until=20)
        assert workload.counters.ops > 0
        disk = container.vm.os.disk
        assert disk.stats.sequential_reads > 0

    def test_videoserver_writer_creates_and_retires(self):
        ctx, container = build()
        workload = VideoserverWorkload(
            nvideos=2, video_mb=4, threads=1, writer_interval_s=5,
            stream_pace_ms=0.1,
        )
        workload.start(container, ctx.streams)
        ctx.run(until=30)
        fs = container.vm.os.fs
        assert fs.created > 2  # ingest files appeared
        assert fs.deleted > 0  # and were retired


class TestYCSBApps:
    def test_redis_pure_anon(self):
        ctx, container = build()
        workload = RedisWorkload(nrecords=64_000, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        assert workload.counters.ops > 0
        assert container.anon_mb > 0
        assert container.file_mb == 0  # no file IO at all

    def test_redis_read_fraction_validated(self):
        with pytest.raises(ValueError):
            RedisWorkload(nrecords=10, read_fraction=1.5)

    def test_mongo_file_backed(self):
        ctx, container = build()
        workload = MongoWorkload(nrecords=64_000, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        assert workload.counters.ops > 0
        assert container.file_mb > 0
        assert container.anon_mb == 0  # mmap store: no anon

    def test_mysql_mixed(self):
        ctx, container = build()
        workload = MySQLWorkload(
            nrecords=64_000, buffer_pool_mb=16, threads=1
        )
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        assert workload.counters.ops > 0
        assert container.anon_mb > 0  # buffer pool
        assert container.file_mb > 0  # data file + redo

    def test_mysql_respects_pool_capacity(self):
        ctx, container = build()
        workload = MySQLWorkload(
            nrecords=640_000, buffer_pool_mb=4, threads=1
        )
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        assert len(workload._pool) <= workload._pool_slots

    def test_zipf_read_update_mix(self):
        ctx, container = build()
        workload = RedisWorkload(nrecords=64_000, read_fraction=0.5, threads=1)
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        total = workload.reads + workload.updates
        # An op may be mid-flight at the run cutoff (counted in the mix
        # but not yet in ops).
        assert abs(total - workload.counters.ops) <= workload.threads
        assert 0.3 < workload.reads / total < 0.7


class TestRateLimiting:
    def test_target_rate_respected(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=100, threads=2, reads_per_op=1)
        workload.target_ops_per_s = 50.0
        workload.start(container, ctx.streams)
        ctx.run(until=20)
        snap0 = workload.snapshot()
        ctx.run(until=60)
        rate = workload.snapshot().rates_since(snap0)["ops_per_s"]
        assert rate <= 55.0           # never above target (+slack)
        assert rate >= 35.0           # and the system can sustain it

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            Workload.__init__(
                WebserverWorkload(nfiles=10), "x", 1, target_ops_per_s=-1
            )

    def test_zero_target_is_closed_loop(self):
        ctx, container = build()
        workload = WebserverWorkload(nfiles=50, threads=1, reads_per_op=1)
        workload.start(container, ctx.streams)
        ctx.run(until=10)
        snap0 = workload.snapshot()
        ctx.run(until=20)
        # Unlimited: far faster than any modest target.
        assert workload.snapshot().rates_since(snap0)["ops_per_s"] > 100


class TestPrepareGating:
    def test_threads_wait_for_prepare(self):
        """Non-zero threads must not run ops before prepare() finishes."""
        ctx, container = build()

        class SlowPrepare(WebserverWorkload):
            def prepare(self):
                yield self.env.timeout(5.0)  # slow dataset setup
                result = super().prepare()
                # super().prepare is a generator; drive it (it's instant).
                try:
                    while True:
                        next(result)
                except StopIteration:
                    pass

        workload = SlowPrepare(nfiles=50, threads=3)
        workload.start(container, ctx.streams)
        ctx.run(until=4.0)
        assert workload.counters.ops == 0  # nobody jumped the gun
        ctx.run(until=20.0)
        assert workload.counters.ops > 0
