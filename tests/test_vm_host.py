"""Tests for Host / VirtualMachine / Container wiring."""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.hypervisor import HostSpec


def build_host(seed=1):
    ctx = SimContext(seed=seed)
    host = ctx.create_host(HostSpec())
    return ctx, host


class TestHost:
    def test_default_cache_is_null(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        assert c.hvcache_mb == 0.0

    def test_duplicate_vm_name_rejected(self):
        ctx, host = build_host()
        host.create_vm("vm1", memory_mb=512)
        with pytest.raises(ValueError):
            host.create_vm("vm1", memory_mb=512)

    def test_vms_get_disjoint_disk_regions(self):
        ctx, host = build_host()
        vm1 = host.create_vm("vm1", memory_mb=512)
        vm2 = host.create_vm("vm2", memory_mb=512)
        f1 = vm1.os.fs.create_file(1, 10)
        f2 = vm2.os.fs.create_file(1, 10)
        assert abs(f1.disk_start - f2.disk_start) >= (1 << 31)

    def test_destroy_vm_unregisters_cache(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        vm.create_container("c", 128, CachePolicy.memory(100))
        host.destroy_vm(vm)
        assert vm.vm_id not in cache.vms
        assert "vm1" not in host.vms

    def test_set_vm_cache_weight(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512, cache_weight=100)
        host.set_vm_cache_weight(vm, 40)
        assert cache.vms[vm.vm_id].weight == 40

    def test_block_bytes_from_spec(self):
        ctx = SimContext()
        host = ctx.create_host(HostSpec(block_kb=128))
        assert host.block_bytes == 128 * 1024


class TestVM:
    def test_duplicate_container_rejected(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        vm.create_container("c", 128)
        with pytest.raises(ValueError):
            vm.create_container("c", 128)

    def test_kernel_reserve_reduces_usable_memory(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512, kernel_reserve_mb=64)
        expected_blocks = int(448 * 1024 * 1024) // host.block_bytes
        assert vm.os.memory_blocks == expected_blocks

    def test_destroy_container_frees_memory_and_pool(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        f = c.create_file(512)
        ctx.env.run(until=ctx.env.process(c.read(f)))
        pool_id = c.pool_id
        vm.destroy_container(c)
        assert "c" not in vm.containers
        assert pool_id not in cache._pools
        assert vm.os.total_usage_blocks() == 0

    def test_container_accessors(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("web", 128)
        assert vm.container("web") is c
        assert c.name == "web"
        assert c.anon_mb == 0.0
        assert c.file_mb == 0.0


class TestPolicyControl:
    def test_set_cache_policy_reaches_hypervisor(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=64, ssd_capacity_mb=1024)
        )
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        c.set_cache_policy(CachePolicy.ssd(100))
        pool = cache._pools[c.pool_id]
        assert pool.policy.ssd_weight == 100

    def test_set_memory_limit(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128)
        c.set_memory_limit_mb(64)
        assert c.cgroup.limit_blocks == (64 << 20) // host.block_bytes

    def test_cache_stats_roundtrip(self):
        ctx, host = build_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        stats = c.cache_stats()
        assert stats is not None
        assert stats.name == "c"
