"""Tests for Host / VirtualMachine / Container wiring."""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.hypervisor import HostSpec


def build_host(seed=1):
    ctx = SimContext(seed=seed)
    host = ctx.create_host(HostSpec())
    return ctx, host


class TestHost:
    def test_default_cache_is_null(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        assert c.hvcache_mb == 0.0

    def test_duplicate_vm_name_rejected(self):
        ctx, host = build_host()
        host.create_vm("vm1", memory_mb=512)
        with pytest.raises(ValueError):
            host.create_vm("vm1", memory_mb=512)

    def test_vms_get_disjoint_disk_regions(self):
        ctx, host = build_host()
        vm1 = host.create_vm("vm1", memory_mb=512)
        vm2 = host.create_vm("vm2", memory_mb=512)
        f1 = vm1.os.fs.create_file(1, 10)
        f2 = vm2.os.fs.create_file(1, 10)
        assert abs(f1.disk_start - f2.disk_start) >= (1 << 31)

    def test_destroy_vm_unregisters_cache(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        vm.create_container("c", 128, CachePolicy.memory(100))
        host.destroy_vm(vm)
        assert vm.vm_id not in cache.vms
        assert "vm1" not in host.vms

    def test_set_vm_cache_weight(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512, cache_weight=100)
        host.set_vm_cache_weight(vm, 40)
        assert cache.vms[vm.vm_id].weight == 40

    def test_block_bytes_from_spec(self):
        ctx = SimContext()
        host = ctx.create_host(HostSpec(block_kb=128))
        assert host.block_bytes == 128 * 1024


class TestVM:
    def test_duplicate_container_rejected(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        vm.create_container("c", 128)
        with pytest.raises(ValueError):
            vm.create_container("c", 128)

    def test_kernel_reserve_reduces_usable_memory(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512, kernel_reserve_mb=64)
        expected_blocks = int(448 * 1024 * 1024) // host.block_bytes
        assert vm.os.memory_blocks == expected_blocks

    def test_destroy_container_frees_memory_and_pool(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        f = c.create_file(512)
        ctx.env.run(until=ctx.env.process(c.read(f)))
        pool_id = c.pool_id
        vm.destroy_container(c)
        assert "c" not in vm.containers
        assert pool_id not in cache._pools
        assert vm.os.total_usage_blocks() == 0

    def test_container_accessors(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("web", 128)
        assert vm.container("web") is c
        assert c.name == "web"
        assert c.anon_mb == 0.0
        assert c.file_mb == 0.0


class TestPolicyControl:
    def test_set_cache_policy_reaches_hypervisor(self):
        ctx, host = build_host()
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=64, ssd_capacity_mb=1024)
        )
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        c.set_cache_policy(CachePolicy.ssd(100))
        pool = cache._pools[c.pool_id]
        assert pool.policy.ssd_weight == 100

    def test_set_memory_limit(self):
        ctx, host = build_host()
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128)
        c.set_memory_limit_mb(64)
        assert c.cgroup.limit_blocks == (64 << 20) // host.block_bytes

    def test_cache_stats_roundtrip(self):
        ctx, host = build_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        stats = c.cache_stats()
        assert stats is not None
        assert stats.name == "c"


class TestDestroyVmResidue:
    """Regression (destroy_vm leak audit): a destroyed VM must leave zero
    host-side residue — cache registration, virtual-disk region, pool
    FIFO slabs, dedup refcounts, and the per-VM RNG stream all retire."""

    def test_create_destroy_churn_returns_to_baseline(self):
        from repro.core import assert_host_clean

        ctx, host = build_host()
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=16, ssd_capacity_mb=16, dedup=True)
        )
        env = ctx.env

        def churn(vm, pool_id):
            yield from cache.put_many(vm.vm_id, pool_id,
                                      [(1, b) for b in range(40)])
            yield from cache.get_many(vm.vm_id, pool_id,
                                      [(1, b) for b in range(10)])

        baseline = (
            dict(cache.used), cache._mem_units_used,
            len(cache.vms), len(cache._pools),
            len(host.streams._streams), host._vm_count,
        )
        for index in range(100):
            vm = host.create_vm(f"churn{index}", memory_mb=128.0)
            c = vm.create_container("app", 64.0, CachePolicy.hybrid(50, 50))
            env.run(until=env.process(churn(vm, c.pool_id)))
            host.destroy_vm(vm)
            assert_host_clean(host, where=f"cycle {index}")
        assert cache.dedup is not None
        assert len(cache.dedup._refcounts) == 0
        after = (
            dict(cache.used), cache._mem_units_used,
            len(cache.vms), len(cache._pools),
            len(host.streams._streams),
            # Region reuse: 100 sequential VMs consume ONE region slot.
            baseline[5] + 1,
        )
        assert after == (*baseline[:5], baseline[5] + 1)
        assert host._free_disk_bases == [0]

    def test_destroy_vm_disables_cleancache_client(self):
        ctx, host = build_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=16))
        vm = host.create_vm("vm1", memory_mb=128.0)
        vm.create_container("app", 64.0, CachePolicy.memory(100))
        host.destroy_vm(vm)
        # A guest process still in flight degrades to no-ops instead of
        # hitting the cache with a stale vm_id.
        assert vm.cleancache.enabled is False
        assert vm.cleancache.get_stats(1) is None

    def test_disk_regions_are_reused_lowest_first(self):
        ctx, host = build_host()
        vm1 = host.create_vm("a", memory_mb=128.0)
        vm2 = host.create_vm("b", memory_mb=128.0)
        base1, base2 = vm1.disk_base_block, vm2.disk_base_block
        host.destroy_vm(vm2)
        host.destroy_vm(vm1)
        vm3 = host.create_vm("c", memory_mb=128.0)
        vm4 = host.create_vm("d", memory_mb=128.0)
        assert vm3.disk_base_block == min(base1, base2)
        assert vm4.disk_base_block == max(base1, base2)
        assert host._vm_count == 2
