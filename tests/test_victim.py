"""Tests for Algorithm 1 (victim selection) — the paper's eviction core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EvictionEntity, exceed_value, fallback_victim, get_victim


def entity(entitlement, used, weight, tag=None):
    return EvictionEntity(ref=tag, entitlement=entitlement, used=used,
                          weightage=weight)


class TestExceedValue:
    def test_basic_formula(self):
        e = entity(100, 150, 50)
        # used + evsize - (entitlement + b*w/cw)
        assert exceed_value(e, 10, 40, 100) == pytest.approx(
            150 + 10 - (100 + 40 * 50 / 100)
        )

    def test_zero_cumulative_weight_no_redistribution(self):
        e = entity(100, 150, 0)
        assert exceed_value(e, 10, 40, 0) == pytest.approx(150 + 10 - 100)


class TestGetVictim:
    def test_eviction_size_must_be_positive(self):
        with pytest.raises(ValueError):
            get_victim([entity(10, 20, 50)], 0)

    def test_single_overused_entity_selected(self):
        over = entity(100, 200, 50, "over")
        under = entity(100, 10, 50, "under")
        victim = get_victim([over, under], 8)
        assert victim is over

    def test_most_overused_wins(self):
        a = entity(100, 120, 50, "a")
        b = entity(100, 300, 50, "b")
        assert get_victim([a, b], 8) is b

    def test_underused_slack_protects_heavier_weight(self):
        """Redistribution raises the effective entitlement proportionally to
        weight: the high-weight over-user is protected relative to the
        low-weight one."""
        heavy = entity(100, 200, 90, "heavy")
        light = entity(100, 200, 10, "light")
        slack = entity(1000, 10, 50, "slack")  # big underused buffer
        victim = get_victim([heavy, light, slack], 8)
        assert victim is light

    def test_no_overused_returns_none(self):
        entities = [entity(100, 10, 50), entity(100, 20, 50)]
        assert get_victim(entities, 8) is None

    def test_overused_but_empty_not_selected(self):
        ghost = entity(0, 0, 50, "ghost")  # 0 < 0 + 8 -> "overused", empty
        holder = entity(100, 150, 50, "holder")
        assert get_victim([ghost, holder], 8) is holder

    def test_at_entitlement_counts_as_overused(self):
        """entitlement < used + eviction_size triggers with used == ent."""
        e = entity(100, 100, 50, "full")
        assert get_victim([e], 8) is e

    def test_ties_pick_first(self):
        a = entity(100, 200, 50, "a")
        b = entity(100, 200, 50, "b")
        assert get_victim([a, b], 8) is a

    def test_empty_entity_list(self):
        assert get_victim([], 8) is None


class TestFallbackVictim:
    def test_largest_holder(self):
        a = entity(100, 10, 50, "a")
        b = entity(100, 90, 50, "b")
        assert fallback_victim([a, b]) is b

    def test_empty_holders(self):
        assert fallback_victim([entity(10, 0, 50)]) is None


@settings(max_examples=300, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),   # entitlement
            st.integers(min_value=0, max_value=10_000),   # used
            st.floats(min_value=0, max_value=100),        # weight
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=1, max_value=64),
)
def test_victim_invariants(raw, eviction_size):
    """Whoever Algorithm 1 picks must be over-used and hold blocks, and
    must have the maximal exceed value among such candidates."""
    entities = [entity(e, u, w, i) for i, (e, u, w) in enumerate(raw)]
    victim = get_victim(entities, eviction_size)
    overused = [
        e for e in entities
        if e.entitlement < e.used + eviction_size and e.used > 0
    ]
    if not overused:
        assert victim is None
        return
    assert victim in overused
    # Recompute the redistribution context exactly as the algorithm does.
    cw = sum(e.weightage for e in entities
             if e.entitlement < e.used + eviction_size)
    buf = sum(e.entitlement - e.used for e in entities
              if e.entitlement - e.used > 2 * eviction_size)
    best = max(exceed_value(e, eviction_size, buf, cw) for e in overused)
    assert exceed_value(victim, eviction_size, buf, cw) == pytest.approx(best)
