"""Smoke tests for the experiment harness (tiny scale, short windows).

These guard the harness wiring — every experiment must run end-to-end,
produce its tables/series, and keep its core shape — without the cost of
the full benchmark suite.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    AppBehaviorExperiment,
    DynamicContainersExperiment,
    DynamicVMsExperiment,
    MotivationExperiment,
)
from repro.experiments.runner import ExperimentResult
from repro.metrics import TimeSeries


class TestRunnerPlumbing:
    def test_registry_covers_all_paper_artifacts(self):
        ids = {cls.exp_id for cls in ALL_EXPERIMENTS.values()}
        # Every evaluation table/figure of the paper appears exactly once,
        # plus the EXT-END endurance and FLEET-1 multi-host extensions
        # (not paper artifacts).
        assert ids == {
            "FIG-1/FIG-2", "FIG-3/TAB-1", "FIG-8/FIG-9/TAB-2",
            "FIG-10/FIG-11/TAB-3", "TAB-4", "FIG-12", "FIG-13",
            "EXT-END", "FLEET-1",
        }

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            MotivationExperiment(scale=0)

    def test_result_summary_renders(self):
        result = ExperimentResult("x", "desc")
        result.add_table("t", ["a", "b"], [[1, 2.5]])
        ts = TimeSeries("s")
        ts.record(0, 1)
        result.add_series("g/s", ts)
        result.note("note text")
        text = result.summary()
        assert "== x ==" in text
        assert "note text" in text
        assert "2.50" in text

    def test_scaling_helpers(self):
        exp = MotivationExperiment(scale=0.5)
        assert exp.mb(1000) == 500
        assert exp.count(100) == 50
        assert exp.secs(100) == 50
        tiny = MotivationExperiment(scale=0.1)
        assert tiny.secs(100) == 25  # floor at 0.25


class TestMotivationSmoke:
    def test_runs_and_shows_disproportion(self):
        exp = MotivationExperiment(scale=0.125, duration_s=120)
        result = exp.run()
        assert "simultaneous_share_ratio" in result.scalars
        assert result.scalars["simultaneous_share_ratio"] > 1.0
        assert any(key.startswith("fig2a") for key in result.series)


class TestAppBehaviorSmoke:
    def test_table1_only_runs(self):
        exp = AppBehaviorExperiment(scale=0.125, warmup_s=40, duration_s=60)
        result = exp.run_table1_only()
        headers, rows = result.rows["table1: guest metrics at the 1:1 split"]
        assert len(rows) == 4
        # Redis swaps, webserver does not.
        assert result.scalars["redis_swap_mb"] > 0
        assert result.scalars["webserver_swap_mb"] == 0


class TestDynamicSmoke:
    def test_containers_experiment_runs(self):
        exp = DynamicContainersExperiment(scale=0.125, phase_s=80)
        result = exp.run()
        labels = {key.split("/", 1)[1] for key in result.series}
        assert {"container1", "container2",
                "container3-mem", "container3-ssd"} <= labels

    def test_vms_experiment_runs(self):
        exp = DynamicVMsExperiment(scale=0.125, phase_s=60)
        result = exp.run()
        labels = {key.split("/", 1)[1] for key in result.series}
        assert {"vm1", "vm2", "vm3", "vm4"} <= labels
        # VM1 held the whole (scaled) cache in phase 1.
        vm1 = result.series["fig13/vm1"]
        assert vm1.max() > 0.8 * exp.mb(2048)


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "motivation" in out
        assert "dynamic_vms" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2

    def test_runs_one_experiment(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["motivation", "--scale", "0.125", "--no-plots",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "motivation.txt").exists()
        out = capsys.readouterr().out
        assert "steady-state cache share" in out
