"""Property-based whole-stack invariants.

Hypothesis drives random operation sequences through a small
host/VM/container stack and then checks the invariants the reproduction
rests on:

1. **Exclusivity** — no block is simultaneously in a guest page cache and
   the hypervisor cache.
2. **Accounting** — the cache manager's per-store `used` equals the sum
   over pools; each cgroup's `file_blocks` equals its page-cache
   population; VM usage never exceeds VM memory.
3. **Capacity** — no store ever exceeds its configured capacity.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.hypervisor import HostSpec

# Operations: (kind, a, b)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "fsync", "anon", "delete_create",
                         "reweight", "relimit"]),
        st.integers(min_value=0, max_value=7),    # file index / page base
        st.integers(min_value=1, max_value=64),   # length / value
    ),
    min_size=1,
    max_size=40,
)


def build_stack(seed):
    ctx = SimContext(seed=seed)
    host = ctx.create_host(HostSpec())
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=16, eviction_batch_mb=0.25)
    )
    vm = host.create_vm("vm1", memory_mb=256, vcpus=2)
    c1 = vm.create_container("c1", 32, CachePolicy.memory(60))
    c2 = vm.create_container("c2", 32, CachePolicy.memory(40))
    return ctx, host, cache, vm, [c1, c2]


def check_invariants(host, cache, vm, containers):
    # 1. Exclusivity.
    for key in vm.os.pagecache.entries:
        for pool in cache._pools.values():
            assert pool.lookup(*key) is None, (
                f"block {key} in page cache AND pool {pool.name}"
            )
    # 2a. Store accounting.
    for kind in (StoreKind.MEMORY, StoreKind.SSD):
        pool_total = sum(p.used[kind] for p in cache._pools.values())
        assert cache.used[kind] == pool_total
        # 3. Capacity bound.
        assert cache.used[kind] <= max(cache.capacities[kind], 0)
    # 2b. Cgroup file accounting.
    for container in containers:
        cgroup = container.cgroup
        assert cgroup.file_blocks == vm.os.pagecache.cgroup_pages(
            cgroup.cgroup_id
        )
        assert cgroup.file_blocks >= 0
        assert cgroup.anon_blocks >= 0
    # 2c. VM memory bound (allow the in-flight admission batch).
    assert vm.os.total_usage_blocks() <= vm.os.memory_blocks + 32
    # 2d. Pool FIFO/index consistency.
    for pool in cache._pools.values():
        for kind in (StoreKind.MEMORY, StoreKind.SSD):
            assert len(pool.fifos[kind]) == pool.used[kind]
        index_total = sum(len(tree) for tree in pool.files.values())
        assert index_total == len(pool)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_OPS, seed=st.integers(min_value=0, max_value=10))
def test_random_ops_preserve_invariants(ops, seed):
    ctx, host, cache, vm, containers = build_stack(seed)
    files = {}
    for container in containers:
        files[container.name] = [
            container.create_file(32, name=f"{container.name}-f{i}")
            for i in range(8)
        ]

    def driver():
        for step, (kind, a, b) in enumerate(ops):
            container = containers[step % len(containers)]
            flist = files[container.name]
            file = flist[a % len(flist)]
            if kind == "read":
                yield from container.read(file, 0, b)
            elif kind == "write":
                yield from container.write(file, 0, min(b, file.nblocks))
            elif kind == "fsync":
                yield from container.fsync(file)
            elif kind == "anon":
                yield from container.touch_anon(range(a * 64, a * 64 + b))
            elif kind == "delete_create":
                yield from container.delete(file)
                flist[a % len(flist)] = container.create_file(32)
            elif kind == "reweight":
                container.set_cache_policy(CachePolicy.memory(float(b)))
            elif kind == "relimit":
                container.set_memory_limit_mb(max(8, b))
        return None

    ctx.env.run(until=ctx.env.process(driver()))
    check_invariants(host, cache, vm, containers)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000))
def test_determinism_same_seed_same_outcome(seed):
    """Two identical runs must produce byte-identical counters."""

    def run_once():
        ctx, host, cache, vm, containers = build_stack(seed)
        c1, c2 = containers
        f1 = c1.create_file(512)
        f2 = c2.create_file(512)

        def driver():
            yield from c1.read(f1)
            yield from c2.read(f2)
            yield from c1.read(f1)
            yield from c2.touch_anon(range(600))
            return None

        ctx.env.run(until=ctx.env.process(driver()))
        stats = vm.os.stats
        return (
            ctx.now,
            stats.pc_hits,
            stats.cc_hits,
            stats.disk_reads,
            stats.swap_out_blocks,
            cache.used[StoreKind.MEMORY],
        )

    assert run_once() == run_once()
