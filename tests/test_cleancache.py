"""Tests for the cleancache client and hypercall channel."""

import pytest

from repro.cleancache import CleancacheClient, HypercallChannel, HypercallCosts
from repro.core import CachePolicy, DDConfig, DoubleDeckerCache
from repro.simkernel import Environment

BLK = 64 * 1024


def run_gen(env, gen):
    return env.run(until=env.process(gen))


def make_client(enabled=True):
    env = Environment()
    cache = DoubleDeckerCache(env, DDConfig(mem_capacity_mb=4), BLK)
    vm_id = cache.register_vm("vm1")
    client = CleancacheClient(env, cache, vm_id, BLK, enabled=enabled)
    return env, cache, client


class TestHypercallCosts:
    def test_control_cost_linear_in_calls(self):
        costs = HypercallCosts(call_us=2.0)
        assert costs.control_cost(10) == pytest.approx(20e-6)

    def test_data_cost_includes_payload(self):
        costs = HypercallCosts(call_us=2.0, copy_us_per_kb=0.05)
        assert costs.data_cost(1, 64 * 1024) == pytest.approx(
            2e-6 + 64 * 0.05e-6
        )

    def test_channel_charges_time(self):
        env = Environment()
        channel = HypercallChannel(env)

        def proc(env):
            yield from channel.charge_data(100, 100 * BLK)

        env.process(proc(env))
        env.run()
        assert env.now > 0
        assert channel.calls == 100


class TestCleancacheClient:
    def test_pool_lifecycle(self):
        env, cache, client = make_client()
        pool = client.create_pool("web", CachePolicy.memory(100))
        assert pool is not None
        client.set_policy(pool, CachePolicy.memory(50))
        stats = client.get_stats(pool)
        assert stats.pool_id == pool
        client.destroy_pool(pool)
        with pytest.raises(KeyError):
            client.get_stats(pool)

    def test_get_put_roundtrip_charges_time(self):
        env, cache, client = make_client()
        pool = client.create_pool("web", CachePolicy.memory(100))
        stored = run_gen(env, client.put_many(pool, [(1, 0), (1, 1)]))
        assert stored == 2
        t0 = env.now
        found = run_gen(env, client.get_many(pool, [(1, 0), (1, 1)]))
        assert found == {(1, 0), (1, 1)}
        assert env.now > t0  # hypercall + copy costs accrued

    def test_disabled_client_is_noop(self):
        env, cache, client = make_client(enabled=False)
        assert client.create_pool("web", CachePolicy.memory(100)) is None
        assert run_gen(env, client.put_many(None, [(1, 0)])) == 0
        assert run_gen(env, client.get_many(None, [(1, 0)])) == set()
        assert client.get_stats(None) is None

    def test_empty_key_list_is_free(self):
        env, cache, client = make_client()
        pool = client.create_pool("web", CachePolicy.memory(100))
        assert run_gen(env, client.get_many(pool, [])) == set()
        assert env.now == 0

    def test_flush_many(self):
        env, cache, client = make_client()
        pool = client.create_pool("web", CachePolicy.memory(100))
        run_gen(env, client.put_many(pool, [(1, 0)]))
        dropped = run_gen(env, client.flush_many(pool, [(1, 0), (1, 99)]))
        assert dropped == 1

    def test_flush_inode(self):
        env, cache, client = make_client()
        pool = client.create_pool("web", CachePolicy.memory(100))
        run_gen(env, client.put_many(pool, [(1, 0), (1, 1), (2, 0)]))
        dropped = run_gen(env, client.flush_inode(pool, 1))
        assert dropped == 2

    def test_migrate(self):
        env, cache, client = make_client()
        p1 = client.create_pool("a", CachePolicy.memory(50))
        p2 = client.create_pool("b", CachePolicy.memory(50))
        run_gen(env, client.put_many(p1, [(1, 0)]))
        assert client.migrate(p1, p2, 1) == 1
        assert run_gen(env, client.get_many(p2, [(1, 0)])) == {(1, 0)}
