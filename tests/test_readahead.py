"""Tests for sequential readahead in the guest read path."""


from repro import SimContext
from repro.core import CachePolicy, DDConfig


def build(readahead=16, limit_mb=256):
    ctx = SimContext(seed=29)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=128))
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=2,
                        readahead_blocks=readahead)
    container = vm.create_container("c", limit_mb, CachePolicy.memory(100))
    return ctx, host, vm, container


def run(ctx, gen):
    return ctx.env.run(until=ctx.env.process(gen))


class TestReadahead:
    def test_disabled_by_default(self):
        ctx = SimContext(seed=1)
        host = ctx.create_host()
        vm = host.create_vm("vm1", memory_mb=512)
        assert vm.os.readahead_blocks == 0

    def test_sequential_streak_triggers_prefetch(self):
        ctx, host, vm, c = build(readahead=16)
        f = c.create_file(256)

        def driver():
            yield from c.read(f, 0, 8)    # streak 1
            yield from c.read(f, 8, 8)    # streak 2 -> prefetch kicks in
            return None

        run(ctx, driver())
        assert vm.os.stats.readahead_blocks > 0
        # The lookahead blocks are already resident.
        assert (f.inode, 16) in vm.os.pagecache
        assert (f.inode, 31) in vm.os.pagecache

    def test_prefetched_blocks_hit_later(self):
        ctx, host, vm, c = build(readahead=16)
        f = c.create_file(256)

        def driver():
            yield from c.read(f, 0, 8)
            yield from c.read(f, 8, 8)
            result = yield from c.read(f, 16, 8)
            return result

        result = run(ctx, driver())
        assert result.pc_hits == 8   # served by the prefetch
        # (disk_blocks may be nonzero: the streak keeps prefetching ahead)

    def test_random_access_does_not_prefetch(self):
        ctx, host, vm, c = build(readahead=16)
        f = c.create_file(256)

        def driver():
            yield from c.read(f, 100, 8)
            yield from c.read(f, 30, 8)
            yield from c.read(f, 200, 8)
            return None

        run(ctx, driver())
        assert vm.os.stats.readahead_blocks == 0

    def test_prefetch_stops_at_eof(self):
        ctx, host, vm, c = build(readahead=64)
        f = c.create_file(20)

        def driver():
            yield from c.read(f, 0, 8)
            yield from c.read(f, 8, 8)
            return None

        run(ctx, driver())
        # Only blocks 16..19 exist beyond the read point.
        assert vm.os.stats.readahead_blocks == 4

    def test_prefetch_respects_cgroup_limit(self):
        ctx, host, vm, c = build(readahead=64, limit_mb=4)  # 64 blocks
        f = c.create_file(512)

        def driver():
            for start in range(0, 512, 8):
                yield from c.read(f, start, 8)
            return None

        run(ctx, driver())
        assert c.cgroup.usage_blocks <= c.cgroup.limit_blocks

    def test_interleaved_streams_improve_with_readahead(self):
        """The real win: two interleaved sequential streams force a disk
        seek at every switch; readahead coalesces them into larger runs,
        cutting the number of switches."""

        def stream_time(readahead):
            ctx, host, vm, c = build(readahead=readahead)
            f1 = c.create_file(512)
            f2 = c.create_file(512)

            def reader(f):
                for start in range(0, 512, 4):
                    yield from c.read(f, start, 4)
                return None

            p1 = ctx.env.process(reader(f1))
            p2 = ctx.env.process(reader(f2))
            ctx.env.run(until=ctx.env.all_of([p1, p2]))
            return ctx.now, vm.os.disk.stats.random_reads

        slow, switches_no_ra = stream_time(0)
        fast, switches_ra = stream_time(32)
        assert switches_ra < switches_no_ra
        assert fast < slow
