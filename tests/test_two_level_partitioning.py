"""End-to-end checks of the two-level weighted partitioning (Figure 5).

Under sustained demand from every container, the steady-state occupancy
must reflect the hypervisor-level VM weights *and*, within each VM, the
container `<T, W>` weights — simultaneously, on both stores.
"""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.hypervisor import HostSpec


def saturating_reader(ctx, container, nblocks=4096):
    """Random reads over a dataset far beyond the cgroup limit: keeps
    steady put/get pressure on the hypervisor cache with a stationary
    occupancy (a cyclic scan would slosh the exclusive cache instead)."""
    f = container.create_file(nblocks)
    rng = ctx.streams.stream(f"reader.{container.name}")

    def loop(env):
        while True:
            start = rng.randrange(nblocks - 32)
            yield from container.read(f, start, 32)
            yield env.timeout(0.005)

    ctx.env.process(loop(ctx.env), name=f"reader-{container.name}")


class TestTwoLevelPartitioning:
    def test_vm_level_weights_hold_under_contention(self):
        ctx = SimContext(seed=51)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=192, eviction_batch_mb=0.5)
        )
        vm1 = host.create_vm("vm1", memory_mb=512, cache_weight=33)
        vm2 = host.create_vm("vm2", memory_mb=512, cache_weight=67)
        c1 = vm1.create_container("c1", 64, CachePolicy.memory(100))
        c2 = vm2.create_container("c2", 64, CachePolicy.memory(100))
        saturating_reader(ctx, c1)
        saturating_reader(ctx, c2)
        ctx.run(until=240)
        share1 = cache.vm_used_mb(vm1.vm_id, StoreKind.MEMORY)
        share2 = cache.vm_used_mb(vm2.vm_id, StoreKind.MEMORY)
        assert share2 / max(1.0, share1) == pytest.approx(67 / 33, rel=0.25)

    def test_container_weights_within_vm(self):
        ctx = SimContext(seed=52)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=192, eviction_batch_mb=0.5)
        )
        vm = host.create_vm("vm1", memory_mb=1024)
        c1 = vm.create_container("a", 64, CachePolicy.memory(25))
        c2 = vm.create_container("b", 64, CachePolicy.memory(75))
        saturating_reader(ctx, c1)
        saturating_reader(ctx, c2)
        ctx.run(until=240)
        used1 = cache.pool_used_mb(c1.pool_id, StoreKind.MEMORY)
        used2 = cache.pool_used_mb(c2.pool_id, StoreKind.MEMORY)
        assert used2 / max(1.0, used1) == pytest.approx(3.0, rel=0.3)

    def test_both_levels_and_both_stores_simultaneously(self):
        """The full Figure-5 topology: per-VM 33/67 applied to both the
        memory and the SSD store, containers splitting within."""
        ctx = SimContext(seed=53)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(DDConfig(
            mem_capacity_mb=192, ssd_capacity_mb=192, eviction_batch_mb=0.5
        ))
        vm1 = host.create_vm("vm1", memory_mb=512, cache_weight=33)
        vm2 = host.create_vm("vm2", memory_mb=512, cache_weight=67)
        # VM1: one SSD container, one memory container (<SSD,100>/<Mem,100>).
        c1 = vm1.create_container("vm1-ssd", 64, CachePolicy.ssd(100))
        c2 = vm1.create_container("vm1-mem", 64, CachePolicy.memory(100))
        # VM2: memory 25/75 plus an SSD container.
        c3 = vm2.create_container("vm2-mem25", 64, CachePolicy.memory(25))
        c4 = vm2.create_container("vm2-mem75", 64, CachePolicy.memory(75))
        c5 = vm2.create_container("vm2-ssd", 64, CachePolicy.ssd(100))
        for container in (c1, c2, c3, c4, c5):
            saturating_reader(ctx, container, nblocks=4096)
        ctx.run(until=300)

        # Memory store: VM1 vs VM2 ~ 33:67.
        mem1 = cache.vm_used_mb(vm1.vm_id, StoreKind.MEMORY)
        mem2 = cache.vm_used_mb(vm2.vm_id, StoreKind.MEMORY)
        assert mem2 / max(1.0, mem1) == pytest.approx(67 / 33, rel=0.3)
        # SSD store: same VM ratio, independently.
        ssd1 = cache.vm_used_mb(vm1.vm_id, StoreKind.SSD)
        ssd2 = cache.vm_used_mb(vm2.vm_id, StoreKind.SSD)
        assert ssd2 / max(1.0, ssd1) == pytest.approx(67 / 33, rel=0.3)
        # Within VM2's memory share: 25:75.
        used3 = cache.pool_used_mb(c3.pool_id, StoreKind.MEMORY)
        used4 = cache.pool_used_mb(c4.pool_id, StoreKind.MEMORY)
        assert used4 / max(1.0, used3) == pytest.approx(3.0, rel=0.35)

    def test_idle_share_is_borrowed_then_returned(self):
        """Resource conservation: an idle container's share is usable by
        a busy one, and reclaimed (via Algorithm 1) once the owner wakes."""
        ctx = SimContext(seed=54)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(
            DDConfig(mem_capacity_mb=128, eviction_batch_mb=0.5)
        )
        vm = host.create_vm("vm1", memory_mb=1024)
        busy = vm.create_container("busy", 64, CachePolicy.memory(50))
        idle = vm.create_container("idle", 64, CachePolicy.memory(50))
        saturating_reader(ctx, busy, nblocks=4096)
        ctx.run(until=120)
        # Busy borrowed well past its 64 MB entitlement.
        assert cache.pool_used_mb(busy.pool_id) > 80
        # The idle container wakes up.
        saturating_reader(ctx, idle, nblocks=4096)
        ctx.run(until=360)
        used_busy = cache.pool_used_mb(busy.pool_id)
        used_idle = cache.pool_used_mb(idle.pool_id)
        assert used_idle == pytest.approx(used_busy, rel=0.35)
