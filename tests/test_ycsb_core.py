"""Tests for the YCSB core machinery (key scattering, mixes)."""

import collections


from repro import SimContext
from repro.core import CachePolicy, DDConfig
from repro.workloads import RedisWorkload
from repro.workloads.ycsb.core import _fnv_scatter


class TestFNVScatter:
    def test_deterministic(self):
        assert _fnv_scatter(12345) == _fnv_scatter(12345)

    def test_spreads_consecutive_ranks(self):
        """Consecutive Zipf ranks must land far apart (no hot clustering)."""
        values = [_fnv_scatter(rank) % 10_000 for rank in range(100)]
        assert len(set(values)) == len(values)  # no collisions in sample
        gaps = [abs(b - a) for a, b in zip(values, values[1:])]
        assert sum(gaps) / len(gaps) > 500  # well spread on average

    def test_64bit_range(self):
        for rank in (0, 1, 2**32, 2**60):
            assert 0 <= _fnv_scatter(rank) < 2**64


class TestNextKey:
    def _workload(self):
        ctx = SimContext(seed=71)
        host = ctx.create_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=32))
        vm = host.create_vm("vm1", memory_mb=512)
        container = vm.create_container("c", 128, CachePolicy.none())
        workload = RedisWorkload(nrecords=10_000, threads=1)
        workload.start(container, ctx.streams)
        return ctx, workload

    def test_keys_in_range(self):
        ctx, workload = self._workload()
        for _ in range(2000):
            assert 0 <= workload.next_key() < 10_000

    def test_keys_are_skewed_but_scattered(self):
        ctx, workload = self._workload()
        counts = collections.Counter(workload.next_key() for _ in range(20_000))
        top_keys = [key for key, _ in counts.most_common(20)]
        # Skew: the hottest key appears far above uniform frequency.
        assert counts[top_keys[0]] > 20_000 / 10_000 * 20
        # Scatter: the hot keys are not clustered in one region.
        assert max(top_keys) - min(top_keys) > 2_000
