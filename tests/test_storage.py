"""Tests for device models: HDD, SSD, latency specs, queueing."""

import pytest

from repro.simkernel import Environment, RandomStreams
from repro.storage import HDD, KB, MB, SSD, HDDSpec, MemSpec, SSDSpec

BLK = 64 * KB


def run_gen(env, gen):
    return env.run(until=env.process(gen))


class TestSpecs:
    def test_mem_copy_time_scales_with_size(self):
        spec = MemSpec()
        assert spec.copy_time(2 * MB) > spec.copy_time(1 * MB)
        assert spec.copy_time(0) == pytest.approx(spec.touch_latency_us * 1e-6)

    def test_ssd_read_write_asymmetry(self):
        spec = SSDSpec()
        # Writes have lower base latency but lower bandwidth.
        big = 8 * MB
        assert spec.write_time(big) > spec.read_time(big)

    def test_hdd_sequential_skips_positioning(self):
        spec = HDDSpec()
        seq = spec.access_time(1 * MB, sequential=True)
        rand = spec.access_time(1 * MB, sequential=False)
        assert rand > seq
        assert seq == pytest.approx(1 * MB / (spec.transfer_mbps * MB))

    def test_hdd_rotation_from_rpm(self):
        spec = HDDSpec(rpm=6000)  # 100 rev/s -> half rev = 5 ms
        assert spec.avg_rotation_s == pytest.approx(0.005)


class TestHDD:
    def make(self):
        env = Environment()
        disk = HDD(env, BLK, rng=RandomStreams(0).stream("hdd"))
        return env, disk

    def test_read_takes_time(self):
        env, disk = self.make()
        run_gen(env, disk.read(0, 16))
        assert env.now > 0
        assert disk.stats.reads == 1
        assert disk.stats.blocks_read == 16

    def test_sequential_detection(self):
        env, disk = self.make()
        run_gen(env, disk.read(0, 16))
        run_gen(env, disk.read(16, 16))  # continues where we left off
        assert disk.stats.sequential_reads == 1
        assert disk.stats.random_reads == 1

    def test_sequential_faster_than_random(self):
        env, disk = self.make()
        run_gen(env, disk.read(0, 16))
        t0 = env.now
        run_gen(env, disk.read(16, 16))
        seq_time = env.now - t0
        t0 = env.now
        run_gen(env, disk.read(10_000, 16))
        rand_time = env.now - t0
        assert rand_time > seq_time

    def test_single_spindle_serializes(self):
        env, disk = self.make()
        done = []

        def reader(env, disk, tag):
            yield from disk.read(tag * 1000, 16)
            done.append((tag, env.now))

        env.process(reader(env, disk, 1))
        env.process(reader(env, disk, 2))
        env.run()
        assert len(done) == 2
        assert done[1][1] > done[0][1]  # second waited for the first

    def test_zero_block_io_is_free(self):
        env, disk = self.make()
        run_gen(env, disk.read(0, 0))
        assert env.now == 0
        assert disk.stats.reads == 0

    def test_writes_counted(self):
        env, disk = self.make()
        run_gen(env, disk.write(0, 4))
        assert disk.stats.writes == 1
        assert disk.stats.blocks_written == 4

    def test_utilization_bounded(self):
        env, disk = self.make()
        run_gen(env, disk.read(0, 160))
        assert 0.0 < disk.utilization() <= 1.0


class TestSSD:
    def test_channel_parallelism(self):
        env = Environment()
        ssd = SSD(env, BLK, spec=SSDSpec(channels=4))
        done = []

        def reader(env, ssd, tag):
            yield from ssd.read(tag, 1)
            done.append(env.now)

        for tag in range(4):
            env.process(reader(env, ssd, tag))
        env.run()
        # All four run in parallel: all finish at the same instant.
        assert len(set(done)) == 1

    def test_queueing_beyond_channels(self):
        env = Environment()
        ssd = SSD(env, BLK, spec=SSDSpec(channels=1))
        done = []

        def reader(env, ssd, tag):
            yield from ssd.read(tag, 1)
            done.append(env.now)

        env.process(reader(env, ssd, 0))
        env.process(reader(env, ssd, 1))
        env.run()
        assert done[1] == pytest.approx(2 * done[0])

    def test_read_faster_than_hdd_random(self):
        env = Environment()
        ssd = SSD(env, BLK)
        disk = HDD(env, BLK, rng=RandomStreams(0).stream("h"))
        t0 = env.now
        run_gen(env, ssd.read(0, 1))
        ssd_time = env.now - t0
        t0 = env.now
        run_gen(env, disk.read(99999, 1))
        hdd_time = env.now - t0
        assert ssd_time < hdd_time / 10

    def test_block_bytes_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SSD(env, 0)
