"""Property tests driving the DoubleDecker manager directly with random
control-plane + data-plane op sequences (no guest in the loop)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.simkernel import Environment
from repro.storage import SSD

BLK = 64 * 1024

_OPS = st.lists(
    st.tuples(
        st.sampled_from([
            "put", "get", "flush", "flush_inode", "set_policy",
            "set_vm_weight", "resize", "migrate",
        ]),
        st.integers(min_value=0, max_value=3),    # pool selector
        st.integers(min_value=1, max_value=4),    # inode
        st.integers(min_value=0, max_value=63),   # block / weight / size
    ),
    max_size=80,
)


def check_consistency(cache):
    """Global bookkeeping must match the per-pool ground truth."""
    for kind in (StoreKind.MEMORY, StoreKind.SSD):
        pool_total = sum(p.used[kind] for p in cache._pools.values())
        assert cache.used[kind] == pool_total
        assert 0 <= cache.used[kind] <= max(0, cache.capacities[kind])
        for pool in cache._pools.values():
            assert len(pool.fifos[kind]) == pool.used[kind]
            assert pool.used[kind] >= 0
    assert cache._mem_units_used >= 0
    # Index and FIFO agree.
    for pool in cache._pools.values():
        index_total = sum(len(tree) for tree in pool.files.values())
        assert index_total == len(pool)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=_OPS)
def test_manager_consistent_under_random_control_and_data_ops(ops):
    env = Environment()
    ssd = SSD(env, BLK)
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=2, ssd_capacity_mb=4,
                 eviction_batch_mb=0.125),
        BLK,
        ssd_device=ssd,
    )
    vm1 = cache.register_vm("vm1", 60)
    vm2 = cache.register_vm("vm2", 40)
    pools = [
        (vm1, cache.create_pool(vm1, "a", CachePolicy.memory(50))),
        (vm1, cache.create_pool(vm1, "b", CachePolicy.ssd(100))),
        (vm2, cache.create_pool(vm2, "c", CachePolicy.memory(50))),
        (vm2, cache.create_pool(vm2, "d", CachePolicy.hybrid(50, 50))),
    ]

    def driver():
        for op, selector, inode, value in ops:
            vm_id, pool_id = pools[selector % len(pools)]
            if op == "put":
                yield from cache.put_many(
                    vm_id, pool_id, [(inode, value), (inode, value + 1)]
                )
            elif op == "get":
                yield from cache.get_many(
                    vm_id, pool_id, [(inode, value), (inode, 999)]
                )
            elif op == "flush":
                cache.flush_many(vm_id, pool_id, [(inode, value)])
            elif op == "flush_inode":
                cache.flush_inode(vm_id, pool_id, inode)
            elif op == "set_policy":
                choices = [CachePolicy.memory(max(1, value)),
                           CachePolicy.ssd(max(1, value)),
                           CachePolicy.hybrid(max(1, value), 50),
                           CachePolicy.none()]
                cache.set_policy(vm_id, pool_id, choices[value % 4])
            elif op == "set_vm_weight":
                cache.set_vm_weight(vm_id, float(value))
            elif op == "resize":
                cache.set_capacity(StoreKind.MEMORY, 1 + value / 16.0)
            elif op == "migrate":
                other = pools[(selector + 1) % len(pools)]
                if other[0] == vm_id:
                    cache.migrate_objects(vm_id, pool_id, other[1], inode)
            check_consistency(cache)

    env.run(until=env.process(driver()))
    check_consistency(cache)
    # Entitlements never exceed capacities after all that churn.
    for kind in (StoreKind.MEMORY, StoreKind.SSD):
        total_entitlement = sum(
            p.entitlement[kind] for p in cache._pools.values()
        )
        assert total_entitlement <= max(0, cache.capacities[kind])


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=1, max_value=100), min_size=2,
                     max_size=5),
    puts_per_pool=st.integers(min_value=20, max_value=60),
)
def test_saturated_store_respects_weight_ordering(weights, puts_per_pool):
    """Fill the store from every pool equally; heavier-weighted pools must
    end up with at least as many blocks as lighter ones (modulo one
    eviction batch of slack)."""
    env = Environment()
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=2, eviction_batch_mb=0.125),  # 32 blocks
        BLK,
    )
    vm = cache.register_vm("vm")
    pool_ids = [
        cache.create_pool(vm, f"p{i}", CachePolicy.memory(w))
        for i, w in enumerate(weights)
    ]

    def driver():
        for round_no in range(puts_per_pool):
            for idx, pool_id in enumerate(pool_ids):
                yield from cache.put_many(
                    vm, pool_id, [(idx + 1, round_no)]
                )

    env.run(until=env.process(driver()))
    batch = cache._eviction_batch
    ordered = sorted(zip(weights, pool_ids))
    for (w_lo, p_lo), (w_hi, p_hi) in zip(ordered, ordered[1:]):
        if w_hi - w_lo < 5:
            continue  # too close to assert strictly
        used_lo = cache._pools[p_lo].used[StoreKind.MEMORY]
        used_hi = cache._pools[p_hi].used[StoreKind.MEMORY]
        assert used_hi >= used_lo - batch
