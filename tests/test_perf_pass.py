"""Guard rails for the hot-path optimization pass.

Three invariants the optimizations must not bend:

* the inlined :meth:`Environment.run` loop keeps the documented stop
  semantics (run-to-time vs run-to-event, URGENT-before-NORMAL at the
  stop instant);
* the batched data path (``get_many``/``put_many``) is observably
  identical to driving the same keys one at a time, including the
  dedup/compression accounting in ``_mem_units_used``;
* ``--jobs N`` produces byte-identical outputs to a serial run.
"""

import filecmp

import pytest

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.core.optimizations import CompressionModel
from repro.simkernel import Environment
from repro.simkernel.core import NORMAL, URGENT

BLK = 64 * 1024


def run_gen(env, gen):
    return env.run(until=env.process(gen))


class TestRunLoopEdgeCases:
    def test_run_to_time_with_empty_queue_advances_clock(self):
        env = Environment()
        assert env.run(until=7.5) is None
        assert env.now == 7.5

    def test_run_without_until_on_empty_queue_returns_none(self):
        env = Environment()
        assert env.run() is None
        assert env.now == 0.0

    def test_run_to_event_with_drained_queue_raises(self):
        env = Environment()
        never = env.event()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        with pytest.raises(RuntimeError):
            env.run(until=never)

    def test_run_to_event_returns_value_and_stops_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(2.0)
            return "done"

        # A later event must not be executed after the stop event.
        late = []
        def straggler():
            yield env.timeout(10.0)
            late.append(True)

        env.process(straggler())
        assert env.run(until=env.process(proc())) == "done"
        assert env.now == 2.0
        assert not late

    def test_urgent_at_stop_instant_runs_before_stop(self):
        env = Environment()
        fired = []
        urgent = env.event()
        urgent._ok = True
        urgent.callbacks.append(lambda _e: fired.append("urgent"))
        env.schedule(urgent, delay=5.0, priority=URGENT)
        env.run(until=5.0)
        assert fired == ["urgent"]
        assert env.now == 5.0

    def test_normal_scheduled_during_run_at_stop_instant_is_cut_off(self):
        # The run-to-time stop event is NORMAL and enqueued when run()
        # starts, so same-instant NORMAL work created *during* the run
        # (higher sequence number) lands after the cutoff.
        env = Environment()
        fired = []
        pre = env.event()
        pre._ok = True
        pre.callbacks.append(lambda _e: fired.append("pre"))
        env.schedule(pre, delay=5.0, priority=NORMAL)

        def proc():
            yield env.timeout(5.0)  # created after run() queued the stop
            fired.append("post")

        env.process(proc())
        env.run(until=5.0)
        assert fired == ["pre"]


def make_cache(**overrides):
    env = Environment()
    # 8 MB = 128 blocks: smaller than the 200-key working set below, so
    # the equivalence checks also cover the eviction path.
    overrides.setdefault("mem_capacity_mb", 8.0)
    config = DDConfig(**overrides)
    return env, DoubleDeckerCache(env, config, BLK)


def drive(cache_pair, keys, batched):
    """Put then get ``keys`` either as one batch or one key at a time."""
    env, cache = cache_pair
    vm = cache.register_vm("vm")
    pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
    if batched:
        run_gen(env, cache.put_many(vm, pool, keys))
        found = run_gen(env, cache.get_many(vm, pool, keys))
    else:
        found = set()
        for key in keys:
            run_gen(env, cache.put_many(vm, pool, [key]))
        for key in keys:
            found |= run_gen(env, cache.get_many(vm, pool, [key]))
    stats = cache.pool_stats(vm, pool)
    return found, stats, dict(cache.used), cache._mem_units_used


class TestBatchEquivalence:
    # 300 keys over 5 files, with repeated blocks inside the batch.
    KEYS = [(inode, block % 40) for inode in range(1, 6) for block in range(60)]

    @pytest.mark.parametrize("config", [
        {},
        {"dedup": True},
        {"dedup": True,
         "dedup_fingerprint": lambda ns, inode, block: block % 7},
        {"compression": CompressionModel()},
    ], ids=["plain", "dedup", "dedup-shared", "compression"])
    def test_large_batch_matches_per_key_calls(self, config):
        found_b, stats_b, used_b, units_b = drive(
            make_cache(**config), self.KEYS, batched=True)
        found_s, stats_s, used_s, units_s = drive(
            make_cache(**config), self.KEYS, batched=False)
        assert found_b == found_s
        assert used_b == used_s
        assert units_b == units_s
        for field in ("gets", "get_hits", "puts", "puts_stored", "flushes"):
            assert getattr(stats_b, field) == getattr(stats_s, field), field

    def test_large_batch_accounting(self):
        # 32 MB = 512 blocks: the whole unique set fits, no evictions.
        env, cache = make_cache(mem_capacity_mb=32.0)
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        stored = run_gen(env, cache.put_many(vm, pool, self.KEYS))
        unique = len(set(self.KEYS))
        # Re-putting a resident key replaces it (and counts as stored),
        # but capacity accounting only ever charges the unique set.
        assert stored == len(self.KEYS)
        assert cache.used[StoreKind.MEMORY] == unique
        assert cache._mem_units_used == unique
        found = run_gen(env, cache.get_many(vm, pool, self.KEYS))
        assert len(found) == unique
        # Exclusive cache: every hit removed its block.
        assert cache.used[StoreKind.MEMORY] == 0
        assert cache._mem_units_used == 0
        stats = cache.pool_stats(vm, pool)
        assert stats.gets == len(self.KEYS)
        assert stats.get_hits == unique

    def test_flush_many_batch_accounting(self):
        env, cache = make_cache()
        vm = cache.register_vm("vm")
        pool = cache.create_pool(vm, "ctr", CachePolicy.memory(100.0))
        keys = [(1, block) for block in range(32)]
        run_gen(env, cache.put_many(vm, pool, keys))
        dropped = cache.flush_many(vm, pool, keys + [(9, 9)])
        assert dropped == len(keys)
        assert cache.used[StoreKind.MEMORY] == 0
        assert cache._mem_units_used == 0
        stats = cache.pool_stats(vm, pool)
        # flushes counts drops; the missed (9, 9) only shows up in requests.
        assert stats.flushes == len(keys)
        assert stats.flush_requests == len(keys) + 1


class TestParallelRunner:
    #: The two cheapest experiments keep the determinism check affordable.
    ARGS = ["motivation,dynamic_containers", "--scale", "0.05", "--no-plots",
            "--seed", "7", "--json"]

    @pytest.mark.slow
    def test_jobs_output_identical_to_serial(self, tmp_path):
        from repro.experiments.__main__ import main

        serial = tmp_path / "serial"
        fanned = tmp_path / "jobs"
        assert main(self.ARGS + ["--out", str(serial)]) == 0
        assert main(self.ARGS + ["--out", str(fanned), "--jobs", "2"]) == 0
        produced = sorted(p.name for p in serial.iterdir())
        assert produced == sorted(p.name for p in fanned.iterdir())
        assert produced  # both .txt and .json per experiment
        for name in produced:
            assert filecmp.cmp(serial / name, fanned / name, shallow=False), name

    def test_jobs_validation(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["motivation", "--jobs", "0"]) == 2

    def test_comma_separated_unknown_rejected(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["motivation,nope"]) == 2

    @pytest.mark.slow
    def test_profile_writes_pstats(self, tmp_path, capsys):
        import pstats

        from repro.experiments.__main__ import main

        out = tmp_path / "hot.pstats"
        code = main(["motivation", "--scale", "0.05", "--no-plots",
                     "--profile", str(out)])
        assert code == 0
        assert out.exists()
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    @pytest.mark.slow
    def test_profile_with_jobs_writes_per_worker_pstats(self, tmp_path, capsys):
        """--profile --jobs N profiles each experiment in its worker and
        writes <stem>.<rank>.pstats ranked in canonical order."""
        import pstats

        from repro.experiments.__main__ import main

        out = tmp_path / "hot.pstats"
        code = main(["motivation,dynamic_containers", "--scale", "0.05",
                     "--no-plots", "--jobs", "2", "--profile", str(out)])
        assert code == 0
        assert not out.exists()  # per-rank files replace the single dump
        ranked = [tmp_path / "hot.0.pstats", tmp_path / "hot.1.pstats"]
        for path in ranked:
            assert path.exists(), path.name
            stats = pstats.Stats(str(path))
            assert stats.total_calls > 0
        # Rank order is canonical (submission) order: rank 0 profiled the
        # first-named experiment, whose runner shows up in its stats.
        stats0 = pstats.Stats(str(ranked[0]))
        files0 = {func[0] for func in stats0.stats}
        assert any(f.endswith("motivation.py") for f in files0)
