"""Unit tests for anonymous memory and swap state."""

import pytest

from repro.mem import AnonSpace


class TestAnonSpace:
    def test_new_page_reported(self):
        anon = AnonSpace()
        assert anon.touch(5, seq=1) == "new"
        anon.map_new(5, seq=1)
        assert anon.resident_pages == 1

    def test_resident_touch_bumps_lru(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        anon.map_new(2, 2)
        assert anon.touch(1, 3) == "resident"
        # 2 is now the coldest
        assert anon.swap_out_coldest(1) is not None
        assert anon.is_swapped(2)
        assert anon.is_resident(1)

    def test_double_map_rejected(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        with pytest.raises(ValueError):
            anon.map_new(1, 2)

    def test_swap_out_returns_slots(self):
        anon = AnonSpace()
        for page in range(4):
            anon.map_new(page, page)
        slots = anon.swap_out_coldest(2)
        assert slots == [0, 1]
        assert anon.swapped_pages == 2
        assert anon.resident_pages == 2
        assert anon.swap_outs == 2

    def test_swap_slots_monotonic(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        anon.swap_out_coldest(1)
        anon.fault_in(1, 2)
        anon.swap_out_coldest(1)
        assert anon.swap_slots[1] == 1  # second slot, not reused

    def test_fault_in(self):
        anon = AnonSpace()
        anon.map_new(7, 1)
        anon.swap_out_coldest(1)
        assert anon.touch(7, 2) == "swapped"
        slot = anon.fault_in(7, 3)
        assert slot == 0
        assert anon.is_resident(7)
        assert anon.swap_ins == 1

    def test_fault_in_resident_rejected(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        with pytest.raises(ValueError):
            anon.fault_in(1, 2)

    def test_coldest_seq(self):
        anon = AnonSpace()
        assert anon.coldest_seq() is None
        anon.map_new(1, 10)
        anon.map_new(2, 20)
        anon.touch(1, 30)
        assert anon.coldest_seq() == 20

    def test_swap_out_more_than_resident(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        slots = anon.swap_out_coldest(10)
        assert len(slots) == 1

    def test_release_all(self):
        anon = AnonSpace()
        anon.map_new(1, 1)
        anon.map_new(2, 2)
        anon.swap_out_coldest(1)
        freed = anon.release_all()
        assert freed == 1  # resident pages at release time
        assert anon.resident_pages == 0
        assert anon.swapped_pages == 0
