"""Unit tests for cache pools and VM entries."""

import pytest

from repro.core import CachePolicy, Pool, StoreKind, VMEntry


def make_pool(policy=None):
    return Pool(1, 1, "test", policy or CachePolicy.memory(50))


class TestPool:
    def test_empty_pool(self):
        pool = make_pool()
        assert len(pool) == 0
        assert pool.lookup(1, 0) is None

    def test_insert_lookup_remove(self):
        pool = make_pool()
        pool.insert(10, 5, StoreKind.MEMORY)
        assert pool.lookup(10, 5) is StoreKind.MEMORY
        assert pool.used[StoreKind.MEMORY] == 1
        assert pool.remove(10, 5) is StoreKind.MEMORY
        assert pool.lookup(10, 5) is None
        assert pool.used[StoreKind.MEMORY] == 0

    def test_remove_absent_returns_none(self):
        pool = make_pool()
        assert pool.remove(1, 1) is None

    def test_insert_replace_across_stores(self):
        pool = make_pool(CachePolicy.hybrid(50, 50))
        pool.insert(1, 0, StoreKind.MEMORY)
        pool.insert(1, 0, StoreKind.SSD)
        assert pool.lookup(1, 0) is StoreKind.SSD
        assert pool.used[StoreKind.MEMORY] == 0
        assert pool.used[StoreKind.SSD] == 1
        assert len(pool) == 1

    def test_fifo_order_is_insertion_order(self):
        pool = make_pool()
        for block in (3, 1, 2):
            pool.insert(1, block, StoreKind.MEMORY)
        assert pool.pop_oldest(StoreKind.MEMORY) == (1, 3)
        assert pool.pop_oldest(StoreKind.MEMORY) == (1, 1)
        assert pool.pop_oldest(StoreKind.MEMORY) == (1, 2)
        assert pool.pop_oldest(StoreKind.MEMORY) is None

    def test_pop_oldest_updates_index(self):
        pool = make_pool()
        pool.insert(1, 0, StoreKind.MEMORY)
        pool.pop_oldest(StoreKind.MEMORY)
        assert pool.lookup(1, 0) is None
        assert 1 not in pool.files

    def test_remove_inode_drops_all_blocks(self):
        pool = make_pool()
        for block in range(5):
            pool.insert(7, block, StoreKind.MEMORY)
        pool.insert(8, 0, StoreKind.MEMORY)
        counts = pool.remove_inode(7)
        assert counts[StoreKind.MEMORY] == 5
        assert len(pool) == 1
        assert pool.lookup(8, 0) is StoreKind.MEMORY

    def test_drain(self):
        pool = make_pool(CachePolicy.hybrid(50, 50))
        pool.insert(1, 0, StoreKind.MEMORY)
        pool.insert(1, 1, StoreKind.SSD)
        counts = pool.drain()
        assert counts[StoreKind.MEMORY] == 1
        assert counts[StoreKind.SSD] == 1
        assert len(pool) == 0
        assert not pool.files

    def test_snapshot_stats_reflects_usage(self):
        pool = make_pool()
        pool.insert(1, 0, StoreKind.MEMORY)
        pool.entitlement[StoreKind.MEMORY] = 10
        pool.stats.gets = 4
        pool.stats.get_hits = 2
        stats = pool.snapshot_stats()
        assert stats.mem_used_blocks == 1
        assert stats.mem_entitlement_blocks == 10
        assert stats.hit_ratio == pytest.approx(0.5)

    def test_iter_keys_oldest_first(self):
        pool = make_pool()
        pool.insert(1, 5, StoreKind.MEMORY)
        pool.insert(1, 2, StoreKind.MEMORY)
        assert list(pool.iter_keys(StoreKind.MEMORY)) == [(1, 5), (1, 2)]


class TestVMEntry:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            VMEntry(1, "vm", -1)

    def test_used_sums_pools(self):
        vm = VMEntry(1, "vm", 100)
        p1 = Pool(1, 1, "a", CachePolicy.memory(50))
        p2 = Pool(2, 1, "b", CachePolicy.memory(50))
        vm.pools = {1: p1, 2: p2}
        p1.insert(1, 0, StoreKind.MEMORY)
        p2.insert(1, 0, StoreKind.MEMORY)
        p2.insert(1, 1, StoreKind.MEMORY)
        assert vm.used(StoreKind.MEMORY) == 3
        assert vm.used(StoreKind.SSD) == 0

    def test_pools_on_filters_by_store(self):
        vm = VMEntry(1, "vm", 100)
        mem_pool = Pool(1, 1, "mem", CachePolicy.memory(50))
        ssd_pool = Pool(2, 1, "ssd", CachePolicy.ssd(100))
        none_pool = Pool(3, 1, "none", CachePolicy.none())
        vm.pools = {1: mem_pool, 2: ssd_pool, 3: none_pool}
        assert vm.pools_on(StoreKind.MEMORY) == [mem_pool]
        assert vm.pools_on(StoreKind.SSD) == [ssd_pool]


class TestCachePolicy:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CachePolicy(mem_weight=-1)

    def test_factories(self):
        assert CachePolicy.memory(30).weight_for(StoreKind.MEMORY) == 30
        assert CachePolicy.ssd(40).weight_for(StoreKind.SSD) == 40
        assert CachePolicy.none().uses_cache is False
        hybrid = CachePolicy.hybrid(10, 20)
        assert hybrid.is_hybrid
        assert hybrid.uses_cache

    def test_single_store_not_hybrid(self):
        assert not CachePolicy.memory(10).is_hybrid
        assert not CachePolicy.ssd(10).is_hybrid
