"""Tests for the SSD endurance subsystem (wear model, admission control)."""

import pytest

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.endurance import (
    AdmitAll,
    SecondAccessAdmit,
    WearModel,
    WriteRateThrottle,
    default_admission,
    endurance_summary,
    format_lifetime,
    hits_per_gb_written,
    make_admission,
    set_default_admission,
)
from repro.simkernel import Environment
from repro.storage import SSD, SSDSpec

BLK = 64 * 1024
GB = 1024 ** 3


class TestWearModel:
    def make(self, **overrides):
        kwargs = dict(block_bytes=BLK, capacity_bytes=GB, pe_cycles=1000,
                      erase_block_kb=1024.0, waf=1.0)
        kwargs.update(overrides)
        return WearModel(**kwargs)

    def test_budget_math(self):
        wear = self.make()
        # 1 GB / 1 MB erase blocks = 1024 blocks x 1000 cycles.
        assert wear.pe_budget == 1024 * 1000
        assert wear.endurance_bytes == pytest.approx(1000 * GB)

    def test_record_write_accumulates_host_bytes(self):
        wear = self.make()
        wear.record_write(4)
        wear.record_write(2)
        assert wear.host_bytes_written == 6 * BLK

    def test_waf_multiplies_flash_writes_and_divides_endurance(self):
        plain = self.make()
        amplified = self.make(waf=2.0)
        for wear in (plain, amplified):
            wear.record_write(16)
        assert amplified.flash_bytes_written == 2 * plain.flash_bytes_written
        assert amplified.erases_consumed == 2 * plain.erases_consumed
        assert amplified.endurance_bytes == plain.endurance_bytes / 2

    def test_wear_fraction_progresses_to_one(self):
        wear = self.make()
        assert wear.wear_fraction == 0.0
        # Write the full endurance budget.
        wear.host_bytes_written = int(wear.endurance_bytes)
        assert wear.wear_fraction == pytest.approx(1.0)

    def test_projected_lifetime_none_without_writes_or_time(self):
        wear = self.make()
        assert wear.projected_lifetime_s(100.0) is None
        wear.record_write(1)
        assert wear.projected_lifetime_s(0.0) is None

    def test_projected_lifetime_from_observed_rate(self):
        wear = self.make()
        wear.record_write(16)  # 1 MB over 1 s -> 1 MB/s
        lifetime = wear.projected_lifetime_s(1.0)
        remaining = wear.endurance_bytes - wear.host_bytes_written
        assert lifetime == pytest.approx(remaining / (16 * BLK))

    def test_lifetime_clamped_at_zero_past_budget(self):
        wear = self.make()
        wear.host_bytes_written = int(2 * wear.endurance_bytes)
        assert wear.projected_lifetime_s(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(waf=0.5)
        with pytest.raises(ValueError):
            self.make(capacity_bytes=0)
        with pytest.raises(ValueError):
            self.make(pe_cycles=0)

    def test_as_dict_round_trip(self):
        wear = self.make()
        wear.record_write(16)
        d = wear.as_dict(elapsed_s=10.0)
        assert d["host_gb_written"] == pytest.approx(16 * BLK / GB)
        assert d["projected_lifetime_s"] == wear.projected_lifetime_s(10.0)


class TestAdmissionControllers:
    def test_admit_all_admits_and_counts(self):
        ctl = AdmitAll()
        assert all(ctl.admit((1, i), 0.0) for i in range(5))
        assert (ctl.attempts, ctl.admitted, ctl.rejected) == (5, 5, 0)

    def test_second_access_rejects_first_admits_second(self):
        ctl = SecondAccessAdmit(ghost_blocks=4)
        assert not ctl.admit((1, 0), 0.0)
        assert ctl.admit((1, 0), 0.0)
        # Admission consumed the ghost entry: next put is "first" again.
        assert not ctl.admit((1, 0), 0.0)
        assert (ctl.attempts, ctl.admitted, ctl.rejected) == (3, 1, 2)

    def test_second_access_ghost_evicts_fifo(self):
        ctl = SecondAccessAdmit(ghost_blocks=2)
        ctl.admit((1, 0), 0.0)
        ctl.admit((1, 1), 0.0)
        ctl.admit((1, 2), 0.0)  # evicts (1, 0) from the ghost
        assert ctl.ghost_len() == 2
        # (1, 0) was forgotten: rejected again (and re-ghosted, which in
        # turn evicts (1, 1)); (1, 2) is still remembered.
        assert not ctl.admit((1, 0), 0.0)
        assert ctl.admit((1, 2), 0.0)

    def test_write_throttle_burst_then_dry(self):
        ctl = WriteRateThrottle(rate_bytes_s=BLK, burst_bytes=2 * BLK,
                                block_bytes=BLK)
        assert ctl.admit((1, 0), 0.0)
        assert ctl.admit((1, 1), 0.0)
        assert not ctl.admit((1, 2), 0.0)  # bucket dry
        assert ctl.tokens() < BLK

    def test_write_throttle_refills_with_clock(self):
        ctl = WriteRateThrottle(rate_bytes_s=BLK, burst_bytes=BLK,
                                block_bytes=BLK)
        assert ctl.admit((1, 0), 0.0)
        assert not ctl.admit((1, 1), 0.0)
        assert ctl.admit((1, 2), 1.0)  # one second = one block of tokens
        assert ctl.rejected == 1

    def test_write_throttle_refill_caps_at_burst(self):
        ctl = WriteRateThrottle(rate_bytes_s=BLK, burst_bytes=2 * BLK,
                                block_bytes=BLK)
        ctl.admit((1, 0), 0.0)
        ctl.admit((1, 1), 100.0)  # long idle refills to burst, not beyond
        assert ctl.tokens() <= 2 * BLK

    def test_controller_validation(self):
        with pytest.raises(ValueError):
            SecondAccessAdmit(ghost_blocks=0)
        with pytest.raises(ValueError):
            WriteRateThrottle(rate_bytes_s=0, burst_bytes=BLK, block_bytes=BLK)
        with pytest.raises(ValueError):
            WriteRateThrottle(rate_bytes_s=1, burst_bytes=BLK - 1,
                              block_bytes=BLK)

    def test_as_dict_reports_ledger(self):
        ctl = SecondAccessAdmit(ghost_blocks=4)
        ctl.admit((1, 0), 0.0)
        assert ctl.as_dict() == {
            "policy": "second_access", "attempts": 1, "admitted": 0,
            "rejected": 1,
        }


class TestMakeAdmission:
    def test_none_means_disabled(self):
        assert make_admission(None, block_bytes=BLK,
                              ssd_capacity_blocks=16) is None
        assert make_admission("", block_bytes=BLK,
                              ssd_capacity_blocks=16) is None

    def test_builds_each_policy(self):
        kwargs = dict(block_bytes=BLK, ssd_capacity_blocks=16)
        assert isinstance(make_admission("admit_all", **kwargs), AdmitAll)
        assert isinstance(make_admission("second_access", **kwargs),
                          SecondAccessAdmit)
        assert isinstance(make_admission("write_throttle", **kwargs),
                          WriteRateThrottle)

    def test_ghost_auto_sizes_to_ssd_capacity(self):
        ctl = make_admission("second_access", block_bytes=BLK,
                             ssd_capacity_blocks=64)
        assert ctl.ghost_blocks == 64

    def test_ghost_mb_overrides_auto_size(self):
        ctl = make_admission("second_access", block_bytes=BLK,
                             ssd_capacity_blocks=64, ghost_mb=1.0)
        assert ctl.ghost_blocks == 16  # 1 MB / 64 KB

    def test_throttle_takes_rate_and_burst(self):
        ctl = make_admission("write_throttle", block_bytes=BLK,
                             ssd_capacity_blocks=64, write_mb_s=2.0,
                             burst_mb=4.0)
        assert ctl.rate_bytes_s == 2.0 * 1024 * 1024
        assert ctl.burst_bytes == 4.0 * 1024 * 1024

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_admission("lru", block_bytes=BLK, ssd_capacity_blocks=16)


class TestDefaultAdmission:
    def teardown_method(self):
        set_default_admission(None)

    def test_set_and_clear(self):
        assert default_admission() is None
        set_default_admission("second_access")
        assert default_admission() == "second_access"
        set_default_admission(None)
        assert default_admission() is None

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError):
            set_default_admission("bogus")


def make_ssd_cache(ssd_mb=1.0, buffer_mb=64.0, **config_overrides):
    env = Environment()
    ssd = SSD(env, BLK, spec=SSDSpec())
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=0.0, ssd_capacity_mb=ssd_mb,
                 ssd_write_buffer_mb=buffer_mb, **config_overrides),
        BLK,
        ssd_device=ssd,
    )
    return env, ssd, cache


def run_gen(env, gen):
    return env.run(until=env.process(gen))


class TestCacheIntegration:
    def teardown_method(self):
        set_default_admission(None)

    def test_no_admission_means_no_controller(self):
        _, _, cache = make_ssd_cache()
        vm = cache.register_vm("a")
        pool_id = cache.create_pool(vm, "c", CachePolicy.ssd(100))
        assert cache._pools[pool_id].admission is None

    def test_resolution_precedence_policy_over_config_over_default(self):
        set_default_admission("write_throttle")
        _, _, cache = make_ssd_cache(admission="admit_all")
        vm = cache.register_vm("a")
        by_policy = cache.create_pool(
            vm, "p", CachePolicy.ssd(100, admission="second_access"))
        by_config = cache.create_pool(vm, "c", CachePolicy.ssd(100))
        assert cache._pools[by_policy].admission.name == "second_access"
        assert cache._pools[by_config].admission.name == "admit_all"
        set_default_admission(None)
        _, _, plain = make_ssd_cache()
        vm2 = plain.register_vm("a")
        bare = plain.create_pool(vm2, "c", CachePolicy.ssd(100))
        assert plain._pools[bare].admission is None

    def test_admit_all_matches_disabled_hook_byte_for_byte(self):
        # The counted baseline must leave the data path untouched: same
        # stores, same hits, same rejections as running with no controller.
        results = []
        for admission in (None, "admit_all"):
            env, _, cache = make_ssd_cache(
                ssd_mb=1.0, admission=admission)  # 16-block store
            vm = cache.register_vm("a")
            pool_id = cache.create_pool(vm, "c", CachePolicy.ssd(100))
            for round_ in range(3):
                run_gen(env, cache.put_many(
                    vm, pool_id, [(1, i) for i in range(24)]))
                found = run_gen(env, cache.get_many(
                    vm, pool_id, [(1, i) for i in range(0, 24, 2)]))
            stats = cache.pool_stats(vm, pool_id)
            results.append((sorted(found), stats.puts_stored, stats.get_hits,
                            stats.put_rejected_capacity, stats.ssd_writes))
        assert results[0] == results[1]

    def test_second_access_rejections_counted_per_pool(self):
        env, _, cache = make_ssd_cache(admission="second_access")
        vm = cache.register_vm("a")
        pool_id = cache.create_pool(vm, "c", CachePolicy.ssd(100))
        keys = [(1, i) for i in range(8)]
        assert run_gen(env, cache.put_many(vm, pool_id, keys)) == 0
        assert run_gen(env, cache.put_many(vm, pool_id, keys)) == 8
        stats = cache.pool_stats(vm, pool_id)
        assert stats.put_rejected_admission == 8
        assert stats.puts_stored == 8
        assert cache.store_counters[StoreKind.SSD].rejected_admission == 8

    def test_backpressure_counted_separately_from_admission(self):
        # One-block write buffer, slow drain: the second put of a batch
        # finds the buffer full and must land in the backpressure bucket,
        # not the admission one.
        env, _, cache = make_ssd_cache(ssd_mb=1.0, buffer_mb=0.001)
        vm = cache.register_vm("a")
        pool_id = cache.create_pool(vm, "c", CachePolicy.ssd(100))
        stored = run_gen(env, cache.put_many(
            vm, pool_id, [(1, 0), (1, 1), (1, 2)]))
        stats = cache.pool_stats(vm, pool_id)
        assert stored == 1
        assert stats.put_rejected_backpressure == 2
        assert stats.put_rejected_admission == 0
        counters = cache.store_counters[StoreKind.SSD]
        assert counters.rejected_backpressure == 2
        # The full ledger still balances.
        assert stats.puts == (stats.puts_stored
                              + stats.put_rejected_policy
                              + stats.put_rejected_capacity
                              + stats.put_rejected_admission
                              + stats.put_rejected_backpressure)


class TestReportHelpers:
    def test_hits_per_gb(self):
        assert hits_per_gb_written(100, 0) is None
        assert hits_per_gb_written(100, GB) == pytest.approx(100.0)

    def test_format_lifetime_scales(self):
        assert format_lifetime(None) == "inf"
        assert format_lifetime(30.0) == "30s"
        assert format_lifetime(7200.0) == "2.0h"
        assert format_lifetime(2 * 86400.0) == "2.0d"
        assert format_lifetime(2 * 365 * 86400.0) == "2.0y"

    def test_endurance_summary_fields(self):
        wear = WearModel(block_bytes=BLK, capacity_bytes=GB, pe_cycles=1000,
                         erase_block_kb=1024.0)
        wear.record_write(16384)  # 1 GB
        summary = endurance_summary(wear, elapsed_s=100.0, hits=500)
        assert summary["ssd_gb_written"] == pytest.approx(1.0)
        assert summary["waf"] == 1.0
        assert summary["hits_per_gb"] == pytest.approx(500.0)
        assert summary["projected_lifetime_s"] == wear.projected_lifetime_s(100.0)


class TestDeviceWearWiring:
    def test_ssd_charges_wear_on_write_completion(self):
        env = Environment()
        ssd = SSD(env, BLK, spec=SSDSpec())
        assert ssd.wear is not None

        def proc(env):
            yield from ssd.write(0, 4)

        env.run(until=env.process(proc(env)))
        assert ssd.wear.host_bytes_written == 4 * BLK
        assert ssd.stats.bytes_written == 4 * BLK

    def test_spec_parameterizes_wear(self):
        env = Environment()
        spec = SSDSpec(capacity_gb=100.0, pe_cycles=500, waf=1.5)
        ssd = SSD(env, BLK, spec=spec)
        assert ssd.wear.capacity_bytes == 100 * GB
        assert ssd.wear.pe_cycles == 500
        assert ssd.wear.waf == 1.5
