"""Unit tests for the guest page cache data structure."""

import pytest

from repro.mem import PageCache
from repro.mem.page import SeqCounter


class TestBasics:
    def test_insert_lookup(self):
        pc = PageCache()
        pc.insert((1, 0), cgroup_id=1)
        entry = pc.lookup((1, 0))
        assert entry is not None
        assert entry.cgroup_id == 1
        assert not entry.dirty

    def test_double_insert_rejected(self):
        pc = PageCache()
        pc.insert((1, 0), 1)
        with pytest.raises(ValueError):
            pc.insert((1, 0), 1)

    def test_lookup_miss(self):
        pc = PageCache()
        assert pc.lookup((9, 9)) is None

    def test_peek_does_not_bump(self):
        pc = PageCache()
        entry = pc.insert((1, 0), 1)
        seq0 = entry.seq
        pc.peek((1, 0))
        assert entry.seq == seq0
        pc.lookup((1, 0))
        assert entry.seq > seq0

    def test_remove(self):
        pc = PageCache()
        pc.insert((1, 0), 1)
        assert pc.remove((1, 0)) is not None
        assert pc.remove((1, 0)) is None
        assert len(pc) == 0

    def test_cgroup_page_accounting(self):
        pc = PageCache()
        pc.insert((1, 0), 1)
        pc.insert((1, 1), 1)
        pc.insert((2, 0), 2)
        assert pc.cgroup_pages(1) == 2
        assert pc.cgroup_pages(2) == 1
        assert pc.cgroup_pages(3) == 0


class TestDirtyTracking:
    def test_mark_dirty_and_clean(self):
        pc = PageCache()
        entry = pc.insert((1, 0), 1)
        pc.mark_dirty(entry, now=5.0)
        assert entry.dirty
        assert entry.dirty_since == 5.0
        assert (1, 0) in pc.dirty
        pc.mark_clean(entry)
        assert not entry.dirty
        assert (1, 0) not in pc.dirty

    def test_mark_dirty_idempotent(self):
        pc = PageCache()
        entry = pc.insert((1, 0), 1)
        pc.mark_dirty(entry, now=1.0)
        pc.mark_dirty(entry, now=9.0)
        assert entry.dirty_since == 1.0  # first-dirtied time preserved

    def test_expired_dirty_respects_age_and_order(self):
        pc = PageCache()
        for i, t in enumerate((0.0, 10.0, 20.0)):
            entry = pc.insert((1, i), 1)
            pc.mark_dirty(entry, now=t)
        expired = pc.expired_dirty(now=35.0, max_age=30.0, limit=10)
        assert [e.key for e in expired] == [(1, 0)]
        expired = pc.expired_dirty(now=100.0, max_age=30.0, limit=2)
        assert [e.key for e in expired] == [(1, 0), (1, 1)]

    def test_dirty_of_inode(self):
        pc = PageCache()
        e1 = pc.insert((1, 0), 1)
        pc.insert((1, 1), 1)
        e2 = pc.insert((2, 0), 1)
        pc.mark_dirty(e1, 0.0)
        pc.mark_dirty(e2, 0.0)
        dirty = pc.dirty_of_inode(1, [(1, 0), (1, 1)])
        assert [e.key for e in dirty] == [(1, 0)]

    def test_remove_drops_dirty_entry(self):
        pc = PageCache()
        entry = pc.insert((1, 0), 1)
        pc.mark_dirty(entry, 0.0)
        pc.remove((1, 0))
        assert len(pc.dirty) == 0


class TestReclaimSupport:
    def test_coldest_is_lru_end(self):
        pc = PageCache()
        pc.insert((1, 0), 1)
        pc.insert((1, 1), 1)
        pc.lookup((1, 0))  # bump 0 -> 1 is now coldest
        assert pc.coldest(1).key == (1, 1)

    def test_coldest_cgroup_across_groups(self):
        pc = PageCache()
        pc.insert((1, 0), 1)
        pc.insert((2, 0), 2)
        pc.lookup((1, 0))  # cgroup 1's page is hotter
        assert pc.coldest_cgroup() == 2

    def test_take_coldest_splits_clean_dirty(self):
        pc = PageCache()
        e0 = pc.insert((1, 0), 1)
        pc.insert((1, 1), 1)
        pc.mark_dirty(e0, 0.0)
        clean, dirty = pc.take_coldest(1, 2)
        assert [e.key for e in dirty] == [(1, 0)]
        assert [e.key for e in clean] == [(1, 1)]
        assert len(pc) == 0
        assert len(pc.dirty) == 0

    def test_take_coldest_respects_count(self):
        pc = PageCache()
        for i in range(10):
            pc.insert((1, i), 1)
        clean, dirty = pc.take_coldest(1, 3)
        assert len(clean) + len(dirty) == 3
        assert len(pc) == 7
        # Coldest (oldest inserted) went first.
        assert [e.key for e in clean] == [(1, 0), (1, 1), (1, 2)]

    def test_remove_inode_with_hint(self):
        pc = PageCache()
        for i in range(3):
            pc.insert((1, i), 1)
        pc.insert((2, 0), 1)
        removed = pc.remove_inode(1, [(1, 0), (1, 1), (1, 2)])
        assert len(removed) == 3
        assert len(pc) == 1

    def test_remove_inode_without_hint_scans(self):
        pc = PageCache()
        for i in range(3):
            pc.insert((1, i), 1)
        removed = pc.remove_inode(1)
        assert len(removed) == 3


class TestSharedSeq:
    def test_shared_counter(self):
        seq = SeqCounter()
        pc = PageCache(seq)
        pc.insert((1, 0), 1)
        assert seq.value == 1
        assert seq.next() == 2
        pc.lookup((1, 0))
        assert seq.value == 3
