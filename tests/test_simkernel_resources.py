"""Unit tests for resources and token buckets."""

import pytest

from repro.simkernel import Environment, Resource, TokenBucket


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        env.run(until=0)
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.count == 2
        assert res.queue_length == 1

    def test_release_grants_next_waiter(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        env.run(until=0)
        assert not r2.triggered
        res.release(r1)
        env.run(until=0)
        assert r2.triggered

    def test_fifo_ordering(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(env, res, tag, hold):
            with res.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(hold)

        for tag in ("a", "b", "c"):
            env.process(worker(env, res, tag, 1))
        env.run(until=10)
        assert order == ["a", "b", "c"]

    def test_context_manager_releases(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(1)

        env.process(worker(env, res))
        env.run(until=5)
        assert res.count == 0

    def test_release_of_waiting_request_cancels_it(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()  # granted immediately; occupies the single slot
        r2 = res.request()
        env.run(until=0)
        res.release(r2)  # r2 never granted: this must cancel, not free
        assert res.count == 1
        assert res.queue_length == 0

    def test_busy_time_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(3)

        env.process(worker(env, res))
        env.run(until=10)
        assert res.busy_time() == pytest.approx(3.0)


class TestTokenBucket:
    def test_positive_capacity_required(self):
        env = Environment()
        with pytest.raises(ValueError):
            TokenBucket(env, 0)

    def test_put_respects_capacity(self):
        env = Environment()
        bucket = TokenBucket(env, capacity=10)
        assert bucket.put(6)
        assert not bucket.put(6)  # would exceed
        assert bucket.level == 6
        assert bucket.free == 4

    def test_take_blocks_until_available(self):
        env = Environment()
        bucket = TokenBucket(env, capacity=10)
        taken = bucket.take(5)
        assert not taken.triggered
        bucket.put(5)
        assert taken.triggered
        assert bucket.level == 0

    def test_takers_served_fifo(self):
        env = Environment()
        bucket = TokenBucket(env, capacity=10)
        t1 = bucket.take(4)
        t2 = bucket.take(2)
        bucket.put(4)
        assert t1.triggered
        assert not t2.triggered
        bucket.put(2)
        assert t2.triggered

    def test_negative_amounts_rejected(self):
        env = Environment()
        bucket = TokenBucket(env, capacity=10)
        with pytest.raises(ValueError):
            bucket.put(-1)
        with pytest.raises(ValueError):
            bucket.take(-1)
