"""Tests for entitlement computation (the policy module)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CachePolicy, Pool, StoreKind, VMEntry
from repro.core.policy import recompute_entitlements, vm_shares


def build_vm(vm_id, weight, pool_specs):
    """pool_specs: list of CachePolicy."""
    vm = VMEntry(vm_id, f"vm{vm_id}", weight)
    for idx, policy in enumerate(pool_specs):
        pool = Pool(vm_id * 100 + idx, vm_id, f"c{idx}", policy)
        vm.pools[pool.pool_id] = pool
    return vm


class TestVMShares:
    def test_single_vm_gets_everything(self):
        vm = build_vm(1, 100, [CachePolicy.memory(100)])
        shares = vm_shares([vm], 1000, StoreKind.MEMORY)
        assert shares == {1: 1000}

    def test_weighted_split(self):
        vm1 = build_vm(1, 33, [CachePolicy.memory(100)])
        vm2 = build_vm(2, 67, [CachePolicy.memory(100)])
        shares = vm_shares([vm1, vm2], 1000, StoreKind.MEMORY)
        assert shares[1] == 330
        assert shares[2] == 670

    def test_vm_without_pools_on_store_excluded(self):
        """An SSD-only VM must not dilute memory shares (Fig 13's VM3)."""
        vm1 = build_vm(1, 60, [CachePolicy.memory(100)])
        vm2 = build_vm(2, 40, [CachePolicy.memory(100)])
        vm3 = build_vm(3, 100, [CachePolicy.ssd(100)])
        shares = vm_shares([vm1, vm2, vm3], 1000, StoreKind.MEMORY)
        assert shares[1] == 600
        assert shares[2] == 400
        assert 3 not in shares

    def test_zero_weight_vm_excluded(self):
        vm1 = build_vm(1, 0, [CachePolicy.memory(100)])
        vm2 = build_vm(2, 50, [CachePolicy.memory(100)])
        shares = vm_shares([vm1, vm2], 1000, StoreKind.MEMORY)
        assert shares[2] == 1000

    def test_zero_capacity(self):
        vm = build_vm(1, 100, [CachePolicy.memory(100)])
        shares = vm_shares([vm], 0, StoreKind.MEMORY)
        assert shares.get(1, 0) == 0


class TestRecompute:
    def test_paper_figure5_configuration(self):
        """VM1 33% <SSD,100>,<Mem,100>; VM2 67% mem 25/75 + SSD 100."""
        vm1 = build_vm(1, 33, [CachePolicy.ssd(100), CachePolicy.memory(100)])
        vm2 = build_vm(2, 67, [
            CachePolicy.memory(25), CachePolicy.memory(75), CachePolicy.ssd(100),
        ])
        vms = {1: vm1, 2: vm2}
        caps = {StoreKind.MEMORY: 3000, StoreKind.SSD: 9000}
        vm_level = recompute_entitlements(vms, caps)

        assert vm_level[(1, StoreKind.MEMORY)] == 990
        assert vm_level[(2, StoreKind.MEMORY)] == 2010
        assert vm_level[(1, StoreKind.SSD)] == 2970
        assert vm_level[(2, StoreKind.SSD)] == 6030

        vm1_pools = list(vm1.pools.values())
        assert vm1_pools[0].entitlement[StoreKind.SSD] == 2970
        assert vm1_pools[0].entitlement[StoreKind.MEMORY] == 0
        assert vm1_pools[1].entitlement[StoreKind.MEMORY] == 990

        vm2_pools = list(vm2.pools.values())
        assert vm2_pools[0].entitlement[StoreKind.MEMORY] == 502  # 25%
        assert vm2_pools[1].entitlement[StoreKind.MEMORY] == 1507  # 75%
        assert vm2_pools[2].entitlement[StoreKind.SSD] == 6030

    def test_policy_change_zeroes_old_store(self):
        vm = build_vm(1, 100, [CachePolicy.memory(100)])
        vms = {1: vm}
        caps = {StoreKind.MEMORY: 100, StoreKind.SSD: 100}
        recompute_entitlements(vms, caps)
        pool = next(iter(vm.pools.values()))
        assert pool.entitlement[StoreKind.MEMORY] == 100
        pool.policy = CachePolicy.ssd(100)
        recompute_entitlements(vms, caps)
        assert pool.entitlement[StoreKind.MEMORY] == 0
        assert pool.entitlement[StoreKind.SSD] == 100

    def test_weights_not_summing_to_100_are_normalized(self):
        vm = build_vm(1, 100, [CachePolicy.memory(10), CachePolicy.memory(30)])
        vms = {1: vm}
        recompute_entitlements(vms, {StoreKind.MEMORY: 400, StoreKind.SSD: 0})
        pools = list(vm.pools.values())
        assert pools[0].entitlement[StoreKind.MEMORY] == 100
        assert pools[1].entitlement[StoreKind.MEMORY] == 300


@settings(max_examples=100, deadline=None)
@given(
    st.lists(  # per VM: (vm weight, list of pool mem weights)
        st.tuples(
            st.floats(min_value=0.1, max_value=100),
            st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                     max_size=4),
        ),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=100, max_value=100_000),
)
def test_entitlements_never_exceed_capacity(vm_specs, capacity):
    """Sum of all pool entitlements must never exceed store capacity, and
    each pool entitlement must be within its VM's share."""
    vms = {}
    for vm_idx, (weight, pool_weights) in enumerate(vm_specs, start=1):
        vm = build_vm(vm_idx, weight,
                      [CachePolicy.memory(w) for w in pool_weights])
        vms[vm_idx] = vm
    vm_level = recompute_entitlements(
        vms, {StoreKind.MEMORY: capacity, StoreKind.SSD: 0}
    )
    total = 0
    for vm in vms.values():
        vm_share = vm_level[(vm.vm_id, StoreKind.MEMORY)]
        pool_total = sum(
            pool.entitlement[StoreKind.MEMORY] for pool in vm.pools.values()
        )
        assert pool_total <= vm_share
        total += pool_total
    assert total <= capacity
