"""Unit tests for the experiment runner utilities."""

import pytest

from repro import SimContext
from repro.core import CachePolicy, DDConfig, StoreKind
from repro.experiments.runner import (
    ExperimentResult,
    OccupancySampler,
    measure_window,
)
from repro.workloads import WebserverWorkload


class TestOccupancySampler:
    def _stack(self):
        ctx = SimContext(seed=61)
        host = ctx.create_host()
        cache = host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 64, CachePolicy.memory(100))
        return ctx, host, cache, vm, c

    def test_watch_pool_records_series(self):
        ctx, host, cache, vm, c = self._stack()
        sampler = OccupancySampler(ctx, interval_s=5.0)
        sampler.watch_pool(cache, "c", c.pool_id)
        sampler.start()
        f = c.create_file(2048)
        ctx.env.process(c.read(f))
        ctx.run(until=60)
        series = sampler.series["c"]
        assert len(series) >= 10
        assert series.max() > 0

    def test_watch_vm_records_series(self):
        ctx, host, cache, vm, c = self._stack()
        sampler = OccupancySampler(ctx, interval_s=5.0)
        sampler.watch_vm(cache, "vm1", vm.vm_id, StoreKind.MEMORY)
        sampler.start()
        f = c.create_file(2048)
        ctx.env.process(c.read(f))
        ctx.run(until=60)
        assert sampler.series["vm1"].max() > 0

    def test_start_idempotent(self):
        ctx, host, cache, vm, c = self._stack()
        sampler = OccupancySampler(ctx, interval_s=5.0)
        sampler.watch_pool(cache, "c", c.pool_id)
        sampler.start()
        sampler.start()
        ctx.run(until=20)
        # One process, not two: samples are spaced a full interval apart.
        times = sampler.series["c"].times
        assert all(b - a >= 5.0 - 1e-9 for a, b in zip(times, times[1:]))

    def test_gauges_added_after_start_get_sampled(self):
        ctx, host, cache, vm, c = self._stack()
        sampler = OccupancySampler(ctx, interval_s=5.0)
        sampler.start()
        ctx.run(until=10)
        sampler.watch_pool(cache, "late", c.pool_id)
        ctx.run(until=30)
        assert "late" in sampler.series


class TestMeasureWindow:
    def test_rates_over_window_only(self):
        ctx = SimContext(seed=62)
        host = ctx.create_host()
        host.install_doubledecker(DDConfig(mem_capacity_mb=64))
        vm = host.create_vm("vm1", memory_mb=512)
        c = vm.create_container("c", 128, CachePolicy.memory(100))
        workload = WebserverWorkload(nfiles=300, threads=1)
        workload.start(c, ctx.streams)
        rates = measure_window(ctx, [workload], warmup_s=10, duration_s=20)
        assert ctx.now == pytest.approx(30.0)
        entry = rates[workload.name]
        assert entry["ops_per_s"] > 0
        # Sanity: the rate excludes warm-up ops.
        assert entry["ops_per_s"] * 20 <= workload.counters.ops


class TestExperimentResultEdgeCases:
    def test_summary_without_plots(self):
        result = ExperimentResult("x")
        assert "== x ==" in result.summary(plots=False)

    def test_series_grouping_in_summary(self):
        from repro.metrics import TimeSeries

        result = ExperimentResult("x")
        for label in ("modeA/c1", "modeA/c2", "modeB/c1"):
            ts = TimeSeries(label)
            ts.record(0, 1)
            ts.record(10, 2)
            result.add_series(label, ts)
        text = result.summary(plots=True)
        assert "modeA (MB over time)" in text
        assert "modeB (MB over time)" in text
