"""sim-lint suite: every DD rule fires on its fixture, suppressions and
formats round-trip, the shipped tree is clean, and the runtime sanitizer
guards/hashseed discipline behave."""

import json
import unittest
from pathlib import Path

from repro.core import victim
from repro.lint import ALL_RULES, Finding, lint_file, lint_paths, rule_catalog
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import exit_code, format_findings_json, iter_python_files
from repro.lint.typed import TYPED_CORE_MODULES, run_mypy
from repro.lint import sanitize

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures" / "repro"


def lint_fixture(name):
    return lint_paths([FIXTURES / name], ALL_RULES, root=REPO)


class RuleFiringTests(unittest.TestCase):
    """Each rule must fire on its known-bad snippet — exact counts, so a
    rule that silently widens or narrows breaks the suite."""

    CASES = [
        ("dd001_wall_clock.py", "DD001", 4),
        ("dd002_unseeded_random.py", "DD002", 3),
        ("dd003_unordered_iteration.py", "DD003", 5),
        ("dd004_float_drift.py", "DD004", 3),
        ("dd005_mutable_default.py", "DD005", 3),
        ("dd006_unguarded_tracer.py", "DD006", 2),
        ("dd007_swallowed_errors.py", "DD007", 3),
        ("dd008_ledger_bypass.py", "DD008", 3),
        ("core/dd009_linear_list_ops.py", "DD009", 5),
        ("service/dd010_blocking_async.py", "DD010", 4),
        ("core/victim.py", "TC001", 2),
        ("core/engine.py", "TC001", 2),
    ]

    def test_every_rule_fires_on_its_fixture(self):
        for name, rule_id, expected in self.CASES:
            with self.subTest(rule=rule_id):
                findings = lint_fixture(name)
                hits = [f for f in findings if f.rule_id == rule_id]
                self.assertEqual(
                    len(hits), expected,
                    f"{rule_id} fired {len(hits)}x on {name}, expected "
                    f"{expected}: {[f.message for f in findings]}")
                # The fixture must not trip unrelated rules.
                others = [f for f in findings
                          if f.rule_id not in (rule_id, "DD000")]
                self.assertEqual(others, [], f"unexpected findings in {name}")

    def test_dd003_keys_iteration_is_a_warning(self):
        findings = lint_fixture("dd003_unordered_iteration.py")
        keys_findings = [f for f in findings if "dict.keys()" in f.message]
        self.assertEqual(len(keys_findings), 1)
        self.assertEqual(keys_findings[0].severity, "warning")
        set_findings = [f for f in findings
                        if f.rule_id == "DD003" and f is not keys_findings[0]]
        self.assertTrue(all(f.severity == "error" for f in set_findings))

    def test_every_catalogued_rule_has_a_firing_case(self):
        # Per-file rules fire via CASES above; whole-program rules
        # (scope "whole-program") fire via the interproc fixture corpus,
        # pinned to exact counts in tests/test_lint_analysis.py.
        from repro.lint.analysis import WHOLE_PROGRAM_RULE_IDS

        covered = {rule_id for _, rule_id, _ in self.CASES}
        per_file = {entry["id"] for entry in rule_catalog()
                    if entry["scope"] == "per-file"}
        whole_program = {entry["id"] for entry in rule_catalog()
                         if entry["scope"] == "whole-program"}
        self.assertEqual(per_file, covered)
        self.assertEqual(whole_program, set(WHOLE_PROGRAM_RULE_IDS))

    def test_realtime_service_modules_are_allowlisted(self):
        # Wall-clock reads and broad handlers that fire DD001/DD007
        # anywhere else in repro/ are clean under service/.
        findings = lint_fixture("service/realtime_clean.py")
        self.assertEqual(findings, [], [f.message for f in findings])

    def test_realtime_allowlist_is_service_scoped(self):
        # The same constructs still fire outside service/ — the
        # allowlist must not leak into simulated code.
        findings = lint_fixture("dd001_wall_clock.py")
        self.assertEqual(
            sum(1 for f in findings if f.rule_id == "DD001"), 4)
        findings = lint_fixture("dd007_swallowed_errors.py")
        self.assertEqual(
            sum(1 for f in findings if f.rule_id == "DD007"), 3)

    def test_dd010_is_scoped_to_realtime_modules(self):
        # The same blocking constructs outside service/ and obs/live.py
        # are not DD010's business — simulated code has no event loop
        # (DD001 polices its clock reads instead).
        import shutil
        import tempfile

        src = FIXTURES / "service" / "dd010_blocking_async.py"
        with tempfile.TemporaryDirectory() as tmp:
            elsewhere = Path(tmp) / "repro" / "core" / "blocking.py"
            elsewhere.parent.mkdir(parents=True)
            shutil.copy(src, elsewhere)
            findings = lint_paths([elsewhere], ALL_RULES, root=Path(tmp))
        self.assertEqual(
            [f for f in findings if f.rule_id == "DD010"], [])

    def test_typed_core_gate_covers_policy_engine(self):
        self.assertIn("core/engine.py", TYPED_CORE_MODULES)

    def test_fixture_dir_fails_strict_lint(self):
        findings = lint_paths([FIXTURES], ALL_RULES, root=REPO)
        self.assertEqual(exit_code(findings, strict=True), 1)
        self.assertEqual(exit_code(findings, strict=False), 1)


class SuppressionTests(unittest.TestCase):
    def test_justified_suppressions_silence_findings(self):
        findings = lint_fixture("suppressed_clean.py")
        self.assertEqual(findings, [],
                         [f.message for f in findings])

    def test_unjustified_suppression_is_dd000_and_fails_strict_only(self):
        findings = lint_fixture("suppressed_no_reason.py")
        self.assertEqual([f.rule_id for f in findings], ["DD000"])
        self.assertEqual(findings[0].severity, "warning")
        # The DD001 finding itself stayed suppressed.
        self.assertNotIn("DD001", {f.rule_id for f in findings})
        self.assertEqual(exit_code(findings, strict=False), 0)
        self.assertEqual(exit_code(findings, strict=True), 1)

    def test_unknown_rule_in_pragma_is_flagged(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snippet.py"
            path.write_text(
                "X = 1  # dd-lint: disable=DD999 (no such rule)\n")
            findings = lint_file(path, ALL_RULES)
        self.assertEqual(len(findings), 1)
        self.assertIn("unknown rule", findings[0].message)

    def test_docstrings_mentioning_pragmas_are_ignored(self):
        # engine.py documents the syntax in its docstring; only real
        # comment tokens may parse as pragmas.
        findings = lint_paths(
            [REPO / "src" / "repro" / "lint"], ALL_RULES, root=REPO)
        self.assertEqual([f for f in findings if f.rule_id == "DD000"], [])


class FormatAndCliTests(unittest.TestCase):
    def test_json_round_trip(self):
        findings = lint_fixture("dd004_float_drift.py")
        payload = json.loads(format_findings_json(findings, strict=True))
        self.assertEqual(payload["version"], 1)
        self.assertTrue(payload["strict"])
        self.assertEqual(payload["counts"]["total"], len(findings))
        self.assertEqual(payload["counts"]["errors"],
                         sum(1 for f in findings if f.severity == "error"))
        rebuilt = [Finding.from_dict(item) for item in payload["findings"]]
        self.assertEqual(rebuilt, list(findings))

    def test_cli_json_output_parses(self):
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = lint_main([str(FIXTURES / "dd001_wall_clock.py"),
                                "--format", "json"])
        self.assertEqual(status, 1)
        payload = json.loads(buffer.getvalue())
        self.assertEqual(payload["counts"]["errors"], 4)
        self.assertTrue(all(f["rule"] == "DD001"
                            for f in payload["findings"]))

    def test_cli_rule_filter(self):
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = lint_main([str(FIXTURES), "--rule", "DD005",
                                "--format", "json"])
        self.assertEqual(status, 1)
        payload = json.loads(buffer.getvalue())
        self.assertTrue(payload["findings"])
        self.assertTrue(all(f["rule"] == "DD005"
                            for f in payload["findings"]))

    def test_cli_unknown_rule_exits_2(self):
        import contextlib
        import io

        with self.assertRaises(SystemExit) as caught:
            with contextlib.redirect_stdout(io.StringIO()), \
                    contextlib.redirect_stderr(io.StringIO()):
                lint_main([str(FIXTURES), "--rule", "DD999"])
        self.assertEqual(caught.exception.code, 2)

    def test_cli_list_rules(self):
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            status = lint_main(["--list-rules"])
        self.assertEqual(status, 0)
        for rule in ALL_RULES:
            self.assertIn(rule.rule_id, buffer.getvalue())

    def test_shipped_tree_is_strict_clean(self):
        # The acceptance gate: the repository's own src/ and tests/ lint
        # clean under --strict (fixtures are pruned from the walk).
        findings = lint_paths([REPO / "src", REPO / "tests"], ALL_RULES,
                              root=REPO)
        self.assertEqual(findings, [],
                         "\n".join(f"{f.path}:{f.line}: {f.rule_id} "
                                   f"{f.message}" for f in findings))

    def test_walk_prunes_fixtures_and_caches(self):
        files = list(iter_python_files([REPO / "tests"]))
        self.assertTrue(files)
        self.assertFalse([p for p in files if "lint_fixtures" in str(p)])
        self.assertFalse([p for p in files if "__pycache__" in str(p)])
        # Deterministic walk order.
        self.assertEqual(files, sorted(files))


class TypedCoreGateTests(unittest.TestCase):
    def test_shipped_typed_core_modules_pass_tc001(self):
        src = REPO / "src" / "repro"
        for tail in TYPED_CORE_MODULES:
            with self.subTest(module=tail):
                findings = lint_paths([src / tail], ALL_RULES, root=REPO)
                self.assertEqual(
                    [f for f in findings if f.rule_id == "TC001"], [])

    def test_run_mypy_skips_cleanly_when_absent(self):
        import shutil

        code, output = run_mypy()
        if shutil.which("mypy") is None:
            self.assertEqual(code, 0)
            self.assertIn("not installed", output)
        else:
            self.assertEqual(code, 0, output)


class SanitizerTests(unittest.TestCase):
    def _entities(self):
        return [victim.EvictionEntity(ref=None, entitlement=0, used=8,
                                      weightage=1.0)]

    def test_hashseed_problem_cases(self):
        import os

        saved = os.environ.get("PYTHONHASHSEED")
        try:
            os.environ.pop("PYTHONHASHSEED", None)
            self.assertIn("not set", sanitize.hashseed_problem())
            os.environ["PYTHONHASHSEED"] = "random"
            self.assertIn("random", sanitize.hashseed_problem())
            os.environ["PYTHONHASHSEED"] = "0"
            self.assertIsNone(sanitize.hashseed_problem())
        finally:
            if saved is None:
                os.environ.pop("PYTHONHASHSEED", None)
            else:
                os.environ["PYTHONHASHSEED"] = saved

    def test_assert_ordered(self):
        sanitize.assert_ordered([1, 2], "here")
        sanitize.assert_ordered((1, 2), "here")
        for bad in ({1, 2}, frozenset((1, 2)), {1: 2}.keys(),
                    {1: 2}.values(), {1: 2}.items()):
            with self.assertRaises(sanitize.NondeterminismError):
                sanitize.assert_ordered(bad, "here")

    def test_decision_guards_reject_sets_and_restore(self):
        from repro.core import cache_manager, engine

        original = victim.get_victim
        original_state = victim.selection_state
        with sanitize.decision_guards() as guards:
            self.assertIsNot(victim.get_victim, original)
            self.assertIs(victim.get_victim, engine.get_victim)
            self.assertIs(
                victim.selection_state, cache_manager.selection_state)
            chosen = victim.get_victim(self._entities(), 1)
            self.assertIsNotNone(chosen)
            self.assertEqual(guards.calls, 1)
            with self.assertRaises(sanitize.NondeterminismError):
                victim.get_victim(set(), 1)
        self.assertIs(victim.get_victim, original)
        self.assertIs(engine.get_victim, original)
        self.assertIs(cache_manager.selection_state, original_state)

    def test_run_smoke_detects_guard_violation(self):
        from repro import experiments

        class BadExperiment:
            def __init__(self, scale, seed):
                pass

            def run(self):
                victim.get_victim(set(), 1)

        lines = []
        saved = dict(experiments.ALL_EXPERIMENTS)
        experiments.ALL_EXPERIMENTS["_bad"] = BadExperiment
        try:
            status = sanitize.run_smoke(
                experiment="_bad", require_hashseed=False,
                out=lines.append)
        finally:
            experiments.ALL_EXPERIMENTS.clear()
            experiments.ALL_EXPERIMENTS.update(saved)
        self.assertEqual(status, 1)
        self.assertIn("guard fired", lines[0])

    def test_run_smoke_detects_double_run_divergence(self):
        from repro import experiments

        entities = self._entities()
        counter = {"round": 0}

        class FlakyResult:
            def summary(self, plots=True):
                counter["round"] += 1
                return f"round {counter['round']}"

        class FlakyExperiment:
            def __init__(self, scale, seed):
                pass

            def run(self):
                victim.get_victim(list(entities), 1)
                return FlakyResult()

        lines = []
        saved = dict(experiments.ALL_EXPERIMENTS)
        experiments.ALL_EXPERIMENTS["_flaky"] = FlakyExperiment
        try:
            status = sanitize.run_smoke(
                experiment="_flaky", require_hashseed=False,
                out=lines.append)
        finally:
            experiments.ALL_EXPERIMENTS.clear()
            experiments.ALL_EXPERIMENTS.update(saved)
        self.assertEqual(status, 1)
        self.assertIn("diverged", lines[0])

    def test_run_smoke_requires_hashseed(self):
        import os

        saved = os.environ.get("PYTHONHASHSEED")
        lines = []
        try:
            os.environ.pop("PYTHONHASHSEED", None)
            status = sanitize.run_smoke(out=lines.append)
        finally:
            if saved is not None:
                os.environ["PYTHONHASHSEED"] = saved
        self.assertEqual(status, 1)
        self.assertIn("PYTHONHASHSEED", lines[0])

    def test_run_smoke_unknown_experiment(self):
        lines = []
        status = sanitize.run_smoke(experiment="_nope",
                                    require_hashseed=False,
                                    out=lines.append)
        self.assertEqual(status, 1)
        self.assertIn("unknown experiment", lines[0])


if __name__ == "__main__":
    unittest.main()
