"""Ablation: Algorithm 1 (exceed-based) vs naive largest-holder eviction.

DESIGN.md §5: the exceed computation redistributes under-used slack by
weight before picking a victim.  We drive three pools with unequal
weights (50/30/20) and equal insertion pressure and measure how far the
resulting shares deviate from the weighted entitlements.  Algorithm 1
should track the weights strictly better than "evict the largest pool".
"""

from conftest import run_once

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.simkernel import Environment

BLK = 64 * 1024
CAPACITY_MB = 8.0  # 128 blocks
WEIGHTS = (50.0, 30.0, 20.0)


def drive(victim_policy: str):
    """Equal put pressure from three unequal-weight pools; returns the
    mean absolute deviation of final shares from entitlements."""
    env = Environment()
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=CAPACITY_MB, eviction_batch_mb=0.25,
                 victim_policy=victim_policy),
        BLK,
    )
    vm = cache.register_vm("vm")
    pools = [
        cache.create_pool(vm, f"c{i}", CachePolicy.memory(w))
        for i, w in enumerate(WEIGHTS)
    ]

    def driver():
        # Interleave puts round-robin so pressure is identical.
        for round_no in range(60):
            for idx, pool in enumerate(pools):
                keys = [(idx + 1, round_no * 8 + j) for j in range(8)]
                yield from cache.put_many(vm, pool, keys)

    env.run(until=env.process(driver()))

    capacity = cache.capacities[StoreKind.MEMORY]
    deviation = 0.0
    for pool_id, weight in zip(pools, WEIGHTS):
        entitled = capacity * weight / sum(WEIGHTS)
        used = cache._pools[pool_id].used[StoreKind.MEMORY]
        deviation += abs(used - entitled)
    return deviation / len(pools)


def test_ablation_victim_selection(benchmark):
    def run():
        return drive("exceed"), drive("max_used")

    exceed_dev, naive_dev = run_once(benchmark, run)
    print(f"\nmean |share - entitlement| (blocks): "
          f"Algorithm1={exceed_dev:.1f}  naive-max-used={naive_dev:.1f}")
    # Algorithm 1 must respect the weights at least as well as the naive
    # policy, and strictly better in this asymmetric setting.
    assert exceed_dev < naive_dev
