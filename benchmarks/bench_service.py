"""Service benchmark: DD cache service vs a baseline, over real sockets.

Measures three subjects with the same seeded skewed workload the load
generator uses (read-through get-or-set over a fixed keyspace):

* ``dd_service`` — the full stack: asyncio memcached front-end over
  :class:`repro.service.cache.ServiceCache` over the disk store, driven
  through TCP by :func:`repro.service.loadgen.run_load`.
* ``dd_direct`` — :class:`ServiceCache` called in-process (no sockets),
  isolating the protocol/event-loop overhead.
* ``baseline`` — ``diskcache.Cache`` when that package is installed,
  else the in-process reference dict cache (capacity-bounded FIFO), so
  the comparison runs in hermetic containers too.

Run and print::

    PYTHONPATH=src python benchmarks/bench_service.py

Record into the ``service`` section of ``BENCH_core.json`` (all other
sections preserved)::

    PYTHONPATH=src python benchmarks/bench_service.py --record
"""

import argparse
import asyncio
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.metrics import Histogram  # noqa: E402
from repro.service.cache import ServiceCache  # noqa: E402
from repro.service.loadgen import run_load, _zipf_key  # noqa: E402
from repro.service.server import CacheServer  # noqa: E402
from repro.service.store import DiskStore  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

OPS = 6_000
KEYSPACE = 2_000
VALUE_BYTES = 4_096
CAPACITY_MB = 4.0
SEED = 42


def _summarize(name, ops, hits, gets, elapsed_s, latency,
               lat_get=None, lat_set=None):
    row = {
        "subject": name,
        "ops": ops,
        "duration_s": round(elapsed_s, 3),
        "ops_per_s": round(ops / elapsed_s, 1) if elapsed_s > 0 else 0.0,
        "hit_ratio": round(hits / gets, 4) if gets else 0.0,
        "p50_us": round(latency.quantile(0.5) / 1e3, 1),
        "p99_us": round(latency.quantile(0.99) / 1e3, 1),
    }
    # Per-op breakdown: a read-through set costs a blob write + two
    # SQLite transactions, so folding it into the merged percentiles
    # hides exactly the tail the benchmark exists to compare.
    if lat_get is not None and lat_get.count:
        row["get_p50_us"] = round(lat_get.quantile(0.5) / 1e3, 1)
        row["get_p99_us"] = round(lat_get.quantile(0.99) / 1e3, 1)
    if lat_set is not None and lat_set.count:
        row["set_p50_us"] = round(lat_set.quantile(0.5) / 1e3, 1)
        row["set_p99_us"] = round(lat_set.quantile(0.99) / 1e3, 1)
    return row


def bench_dd_service():
    """Full stack over TCP via the load generator."""

    async def run():
        with tempfile.TemporaryDirectory() as tmp:
            store = DiskStore(tmp, sync_writes=False)
            cache = ServiceCache(store, capacity_mb=CAPACITY_MB)
            server = CacheServer(cache, port=0)
            await server.start()
            try:
                result = await run_load(
                    port=server.port, ops=OPS, tenants=2, connections=4,
                    keyspace=KEYSPACE, value_bytes=VALUE_BYTES, seed=SEED)
            finally:
                await server.close()
            assert result.protocol_errors == 0, "protocol errors during bench"
            return _summarize("dd_service", result.ops, result.hits,
                              result.gets, result.duration_s, result.latency,
                              lat_get=result.lat_get, lat_set=result.lat_set)

    return asyncio.run(run())


def _drive_kv(name, get, put):
    """The loadgen access pattern against an in-process get/put pair."""
    rng = random.Random(SEED)
    latency = Histogram.wallclock_ns(name)
    lat_get = Histogram.wallclock_ns(f"{name}.get")
    lat_set = Histogram.wallclock_ns(f"{name}.set")
    payload = b"x" * VALUE_BYTES
    gets = hits = ops = 0
    start = time.perf_counter_ns()
    for _ in range(OPS):
        key = f"k{_zipf_key(rng, KEYSPACE)}"
        t0 = time.perf_counter_ns()
        value = get(key)
        elapsed_ns = time.perf_counter_ns() - t0
        latency.add(elapsed_ns)
        lat_get.add(elapsed_ns)
        gets += 1
        ops += 1
        if value is not None:
            hits += 1
            continue
        t0 = time.perf_counter_ns()
        put(key, payload)
        elapsed_ns = time.perf_counter_ns() - t0
        latency.add(elapsed_ns)
        lat_set.add(elapsed_ns)
        ops += 1
    elapsed = (time.perf_counter_ns() - start) / 1e9
    return _summarize(name, ops, hits, gets, elapsed, latency,
                      lat_get=lat_get, lat_set=lat_set)


def bench_dd_direct():
    """ServiceCache without the socket/event-loop layer."""
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskStore(tmp, sync_writes=False)
        cache = ServiceCache(store, capacity_mb=CAPACITY_MB)

        def get(key):
            found = cache.get("bench", key)
            return None if found is None else found[0]

        result = _drive_kv("dd_direct", get,
                           lambda key, value: cache.set("bench", key, value))
        cache.close()
        return result


def bench_baseline():
    """diskcache.Cache if installed, else the reference FIFO dict cache."""
    try:
        import diskcache
    except ImportError:
        diskcache = None

    if diskcache is not None:
        with tempfile.TemporaryDirectory() as tmp:
            with diskcache.Cache(tmp, size_limit=int(CAPACITY_MB * 2**20)) \
                    as dc:
                result = _drive_kv(
                    "diskcache", dc.get,
                    lambda key, value: dc.set(key, value))
                result["subject"] = "diskcache"
                return result

    # Reference: capacity-bounded FIFO dict (pure memory, no durability)
    # — an upper bound on what any disk-backed subject could reach.
    capacity_entries = int(CAPACITY_MB * 2**20) // VALUE_BYTES
    data = {}

    def put(key, value):
        if key in data:
            del data[key]
        elif len(data) >= capacity_entries:
            del data[next(iter(data))]  # FIFO head
        data[key] = value

    result = _drive_kv("dict_fifo", data.get, put)
    result["subject"] = "dict_fifo"
    return result


def run_all():
    results = [bench_dd_service(), bench_dd_direct(), bench_baseline()]
    section = {
        "config": {
            "ops": OPS, "keyspace": KEYSPACE,
            "value_bytes": VALUE_BYTES, "capacity_mb": CAPACITY_MB,
            "tenants": 2, "seed": SEED, "fsync": False,
        },
        "subjects": {result["subject"]: result for result in results},
    }
    return section


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--record", action="store_true",
                        help="write the service section of BENCH_core.json")
    args = parser.parse_args(argv)
    section = run_all()
    print(json.dumps(section, indent=2))
    if args.record:
        data = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
        data["service"] = section
        OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded service section into {OUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
