"""TAB-4 — cooperative two-level provisioning vs centralized Morai++.

Shape checks (the paper's core claim): the centralized partition search
cannot satisfy the anon-memory apps (Redis misses its SLA badly), while
DoubleDecker's in-VM + cache provisioning meets more SLAs and lifts
Redis by a large factor.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import CooperativeExperiment

#: A reduced candidate grid keeps the bench affordable; it includes the
#: paper's reported winner (60:40 mongo:web).
CANDIDATES = [
    (25.0, 25.0, 25.0, 25.0),
    (60.0, 0.0, 0.0, 40.0),
    (40.0, 0.0, 0.0, 60.0),
    (30.0, 0.0, 0.0, 70.0),
]


def test_table4_cooperative(benchmark):
    exp = CooperativeExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                warmup_s=120, duration_s=150,
                                candidates=CANDIDATES)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    # DD satisfies at least as many SLAs as Morai++, and strictly more
    # overall (the paper: 4 vs 2).
    assert result.scalars["dd_slas_met"] > result.scalars["morai_slas_met"]
    assert result.scalars["dd_slas_met"] == 4
    # Redis is the headline: a huge factor under cooperative provisioning.
    assert result.scalars["redis_dd_vs_morai"] > 5.0
    # MySQL also improves (paper: 48.5 -> 132.7).
    assert result.scalars["mysql_dd_vs_morai"] > 1.0
