"""FIG-13 — dynamic VM-level provisioning.

Shape checks: VM1 fills the cache alone; VM2's arrival splits it ~60/40;
the SSD-only VM3 does not disturb that split; growing the store and
re-weighting to 40/35/25 redistributes across VM1/VM2/VM4.
"""

import pytest
from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import DynamicVMsExperiment

PHASE_S = 180.0


def test_fig13_dynamic_vms(benchmark):
    exp = DynamicVMsExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                               phase_s=PHASE_S)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    series = {key.split("/", 1)[1]: ts for key, ts in result.series.items()}

    def phase_mean(label, phase):
        return series[label].mean(start=(phase + 0.5) * PHASE_S,
                                  end=(phase + 1) * PHASE_S)

    cache_mb = exp.mb(2048)
    # Phase 1: VM1 alone fills (most of) the cache.
    assert phase_mean("vm1", 0) > 0.85 * cache_mb
    # Phase 2: ~60/40 split.
    vm1_p2, vm2_p2 = phase_mean("vm1", 1), phase_mean("vm2", 1)
    assert vm1_p2 > vm2_p2 > 0
    assert vm1_p2 / max(1.0, vm2_p2) == pytest.approx(1.5, rel=0.35)
    # Phase 3: the SSD-only VM3 does not disturb the memory split.
    assert phase_mean("vm1", 2) == pytest.approx(vm1_p2, rel=0.15)
    assert phase_mean("vm2", 2) == pytest.approx(vm2_p2, rel=0.15)
    assert phase_mean("vm3", 2) > 0  # VM3 is busy on the SSD store
    # Phase 4: the grown store serves all three memory VMs, 40/35/25.
    vm1_p4 = phase_mean("vm1", 3)
    vm2_p4 = phase_mean("vm2", 3)
    vm4_p4 = phase_mean("vm4", 3)
    assert vm1_p4 > vm1_p2  # everyone gained from the capacity grow
    assert vm1_p4 >= vm2_p4 >= vm4_p4 > 0
