"""FIG-1 / FIG-2 — motivation: non-deterministic global cache sharing.

Regenerates the four motivation scenarios and checks the paper's shape:
each container alone fills the cache; together the 3-thread container
takes a disproportionate (>1.2x) share.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import MotivationExperiment


def test_fig1_2_motivation(benchmark):
    exp = MotivationExperiment(scale=BENCH_SCALE, seed=BENCH_SEED)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    cache_mb = exp.mb(1024)
    headers, rows = result.rows[
        "steady-state cache share (MB, mean of second half)"
    ]
    by_scenario = {row[0]: row for row in rows}

    # Fig 1: alone, each container fills (>=85% of) the whole cache.
    assert by_scenario["container1 alone"][1] >= 0.85 * cache_mb
    assert by_scenario["container2 alone"][2] >= 0.85 * cache_mb

    # Fig 2a: together, the 3-thread container dominates.
    ratio = result.scalars["simultaneous_share_ratio"]
    assert ratio > 1.2, f"expected disproportionate split, got {ratio:.2f}"

    # Fig 2b: the offset run also ends with container2 ahead.
    assert by_scenario["offset 200s"][2] > by_scenario["offset 200s"][1]
