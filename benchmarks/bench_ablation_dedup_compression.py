"""Ablation: memory-store compression and content deduplication.

The paper lists both as hypervisor-cache memory-efficiency levers (§1,
§6).  Two containers read byte-identical filesets (a shared base image)
through a small memory store under four configurations: plain,
compressed, deduplicated, and both.  The optimized stores must hold more
logical blocks in the same physical memory and convert that into a
higher second-chance hit ratio.
"""

from conftest import BENCH_SEED, run_once

from repro import CachePolicy, DDConfig, SimContext
from repro.core import CompressionModel
from repro.workloads import WebserverWorkload

MEM_MB = 96.0


def drive(compress: bool, dedup: bool):
    ctx = SimContext(seed=BENCH_SEED)
    host = ctx.create_host()
    # Shared-content fingerprint: both containers' i-th files are the
    # same image blocks (namespace and inode identity ignored modulo the
    # per-container fileset layout, which is identical by seeding).
    fingerprint = (lambda ns, inode, block: hash(("img", inode % 4000, block))
                   ) if dedup else None
    config = DDConfig(
        mem_capacity_mb=MEM_MB,
        compression=CompressionModel() if compress else None,
        dedup=dedup,
        dedup_fingerprint=fingerprint,
    )
    host.install_doubledecker(config)
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    workloads = []
    containers = []
    for idx in range(2):
        container = vm.create_container(f"c{idx}", 192,
                                        CachePolicy.memory(50))
        workload = WebserverWorkload(
            name=f"web{idx}", nfiles=4000, mean_size_kb=64, threads=1,
            cpu_think_ms=2.0,
        )
        workload.start(container, ctx.streams)
        workloads.append(workload)
        containers.append(container)
    ctx.run(until=120)
    snaps = [w.snapshot() for w in workloads]
    ctx.run(until=300)
    ops = sum(
        w.snapshot().rates_since(s)["ops_per_s"]
        for w, s in zip(workloads, snaps)
    )
    cache = host.hvcache
    logical = sum(c.hvcache_mb for c in containers)
    return {
        "ops": ops,
        "logical_mb": logical,
        "physical_mb": cache.mem_physical_mb,
        "dedup_saved_mb": (
            cache.dedup.savings_blocks * host.block_bytes / (1 << 20)
            if cache.dedup else 0.0
        ),
    }


def test_ablation_compression_and_dedup(benchmark):
    def run():
        return {
            "plain": drive(False, False),
            "compressed": drive(True, False),
            "dedup": drive(False, True),
            "both": drive(True, True),
        }

    results = run_once(benchmark, run)
    print()
    for mode, cells in results.items():
        print(f"{mode:11s} ops/s={cells['ops']:8.1f} "
              f"logical={cells['logical_mb']:6.1f}MB "
              f"physical={cells['physical_mb']:6.1f}MB "
              f"dedup-saved={cells['dedup_saved_mb']:6.1f}MB")

    plain = results["plain"]
    # Physical capacity is respected in every mode.
    for cells in results.values():
        assert cells["physical_mb"] <= MEM_MB + 1
    # Compression packs more logical content into the same memory.
    assert results["compressed"]["logical_mb"] > plain["logical_mb"] * 1.2
    # Dedup shares whatever identical content both containers cache at
    # the same time (the overlap, not the whole fileset).
    assert results["dedup"]["dedup_saved_mb"] > 0
    assert results["dedup"]["logical_mb"] >= plain["logical_mb"]
    # Combining both packs the most logical content.
    assert results["both"]["logical_mb"] >= results["compressed"]["logical_mb"]
    assert results["both"]["dedup_saved_mb"] > 0
