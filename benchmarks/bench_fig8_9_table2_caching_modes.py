"""FIG-8 / FIG-9 / TAB-2 — impact of caching modes (the paper's §5.1).

One experiment regenerates the occupancy traces of Figs 8-9 and the
performance table (Table 2).  Shape checks:

* DDMem webserver beats Global by a large factor (paper: ~6x);
* under DD, web/proxy/mail see zero evictions — only video is victimized;
* the SSD store absorbs everything with zero evictions but is slower
  than memory for the web and video workloads;
* under Global, mail's share collapses far below its fair share, while
  DD keeps it near its entitlement (Fig 8's story).
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import CachingModesExperiment


def test_fig8_9_table2_caching_modes(benchmark):
    exp = CachingModesExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                 warmup_s=250, duration_s=300)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    # Table 2 shapes.
    assert result.scalars["web_ddmem_speedup"] > 3.0
    assert result.scalars["webserver_ddmem_evictions"] == 0
    assert result.scalars["webproxy_ddmem_evictions"] == 0
    assert result.scalars["mail_ddmem_evictions"] == 0

    headers, rows = result.rows["table2: performance and cache behaviour"]
    table = {row[0]: row for row in rows}
    idx = {name: i for i, name in enumerate(headers)}

    # Videoserver: Global fastest, SSD in between or close, DDMem curtailed.
    video = table["videoserver"]
    assert video[idx["Global MB/s"]] > video[idx["DDMem MB/s"]]
    # SSD mode: no evictions for anyone (240 GB swallows everything).
    for name in ("webserver", "webproxy", "mail", "videoserver"):
        assert table[name][idx["DDSSD evict"]] == 0
    # SSD slower than memory for the webserver (device latency shows).
    web = table["webserver"]
    assert web[idx["DDMem MB/s"]] > web[idx["DDSSD MB/s"]]
    # Mail's lookup hit ratio improves under DD (paper: 1% -> 32%).
    mail = table["mail"]
    assert mail[idx["DDMem lookup%"]] > mail[idx["Global lookup%"]]

    # Fig 8 shape: under Global, mail's occupancy collapses below half of
    # its fair share; DD holds it near (>= half of) the fair share.
    fair_mb = exp.mb(3072) / 4
    t_half = (250 + 300) / 2
    global_mail = result.series["Global/mail"].mean(start=t_half)
    ddmem_mail = result.series["DDMem/mail"].mean(start=t_half)
    assert global_mail < 0.5 * fair_mb
    assert ddmem_mail > 0.5 * fair_mb

    # Fig 9 shape: video fills the whole cache early in every mode.
    for mode in ("Global", "DDMem"):
        peak = result.series[f"{mode}/videoserver"].max()
        assert peak > 0.9 * exp.mb(3072)
