"""FIG-12 — dynamic container-level cache management.

Shape checks: the two initial containers split the memory store ~60/40;
the hot-plugged video container receives its ~20% share in phase 2; after
it is moved to the SSD its memory share returns to the others and its
SSD pool grows.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import DynamicContainersExperiment

PHASE_S = 250.0


def test_fig12_dynamic_containers(benchmark):
    exp = DynamicContainersExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                      phase_s=PHASE_S)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    series = {key.split("/", 1)[1]: ts for key, ts in result.series.items()}

    def phase_mean(label, phase):
        return series[label].mean(start=(phase + 0.5) * PHASE_S,
                                  end=(phase + 1) * PHASE_S)

    # Phase 1: container1 (weight 60) holds more than container2 (40).
    assert phase_mean("container1", 0) > phase_mean("container2", 0)
    # Phase 2: the video container received a real memory share.
    assert phase_mean("container3-mem", 1) > 0
    # Phase 3: video left the memory store for the SSD.
    assert phase_mean("container3-mem", 2) < phase_mean("container3-mem", 1)
    assert phase_mean("container3-ssd", 2) > phase_mean("container3-mem", 2)
    # And the survivors regained (or at least kept) their memory shares.
    assert phase_mean("container1", 2) >= 0.8 * phase_mean("container1", 1)
