"""FIG-10 / FIG-11 / TAB-3 — flexible differentiated cache policies.

Shape checks (paper's Fig 10): webserver gains large factors under every
DD policy; webproxy gains moderately; videoserver *loses* under the
memory policies but gains when moved to the SSD store (DDHybrid).
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import FlexiblePolicyExperiment
from repro.experiments.flexible import POLICY_TABLE


def test_fig10_11_table3_flexible(benchmark):
    exp = FlexiblePolicyExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                   warmup_s=250, duration_s=300)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    # Table 3 is configuration: assert it matches the paper exactly.
    assert POLICY_TABLE["DDMem"]["webserver"].mem_weight == 32
    assert POLICY_TABLE["DDMemEx"]["videoserver"].uses_cache is False
    assert POLICY_TABLE["DDHybrid"]["videoserver"].ssd_weight == 100

    # Fig 10 shapes.
    assert result.scalars["webserver_ddmem_speedup"] > 3.0
    assert result.scalars["webserver_ddmemex_speedup"] > 3.0
    assert result.scalars["webserver_ddhybrid_speedup"] > 3.0
    assert result.scalars["webproxy_ddmem_speedup"] > 1.2
    # Video is curtailed by the memory policies...
    assert result.scalars["videoserver_ddmem_speedup"] < 1.0
    assert result.scalars["videoserver_ddmemex_speedup"] < 1.0
    # ...but the SSD offload more than recovers it (paper: 3.6x).
    assert (result.scalars["videoserver_ddhybrid_speedup"]
            > result.scalars["videoserver_ddmem_speedup"] * 1.5)

    # Fig 11 shape: under DDHybrid the video pool leaves the memory store
    # entirely (it lives on the SSD).
    t_half = (250 + 300) / 2
    hybrid_video_mem = result.series["DDHybrid/videoserver"].mean(start=t_half)
    ddmem_video_mem = result.series["DDMem/videoserver"].mean(start=t_half)
    assert hybrid_video_mem > ddmem_video_mem  # SSD pool holds more ...
    global_video = result.series["Global/videoserver"].mean(start=t_half)
    assert global_video > result.series["Global/webserver"].mean(start=t_half)
