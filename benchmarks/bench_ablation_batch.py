"""Ablation: eviction batch size (the paper fixes it at 2 MB).

Small batches track entitlements tightly but run the victim-selection
logic often; large batches amortize selection at the cost of granularity
(a 16 MB batch can drain a small pool far below its entitlement).  We
sweep the batch size and report (a) eviction rounds (overhead proxy) and
(b) worst-case undershoot below entitlement right after an eviction.
"""

from conftest import run_once

from repro.core import CachePolicy, DDConfig, DoubleDeckerCache, StoreKind
from repro.simkernel import Environment

BLK = 64 * 1024
CAPACITY_MB = 16.0
BATCHES_MB = (0.5, 2.0, 8.0)


def drive(batch_mb: float):
    env = Environment()
    cache = DoubleDeckerCache(
        env,
        DDConfig(mem_capacity_mb=CAPACITY_MB, eviction_batch_mb=batch_mb),
        BLK,
    )
    vm = cache.register_vm("vm")
    p1 = cache.create_pool(vm, "a", CachePolicy.memory(50))
    p2 = cache.create_pool(vm, "b", CachePolicy.memory(50))
    undershoot = {"worst": 0}

    def driver():
        # p1 fills the store, then p2 applies steady pressure.
        yield from cache.put_many(vm, p1, [(1, i) for i in range(512)])
        for round_no in range(40):
            keys = [(2, round_no * 8 + j) for j in range(8)]
            yield from cache.put_many(vm, p2, keys)
            pool = cache._pools[p1]
            gap = pool.entitlement[StoreKind.MEMORY] - pool.used[StoreKind.MEMORY]
            undershoot["worst"] = max(undershoot["worst"], gap)

    env.run(until=env.process(driver()))
    rounds = cache.store_counters[StoreKind.MEMORY].eviction_rounds
    return rounds, undershoot["worst"]


def test_ablation_eviction_batch(benchmark):
    def run():
        return {mb: drive(mb) for mb in BATCHES_MB}

    results = run_once(benchmark, run)
    print()
    for mb, (rounds, undershoot) in results.items():
        print(f"batch {mb:5.2f} MB: {rounds:4d} eviction rounds, "
              f"worst undershoot {undershoot} blocks")

    # Smaller batches -> more rounds (overhead) ...
    assert results[0.5][0] >= results[2.0][0] >= results[8.0][0]
    # ... larger batches -> coarser enforcement (deeper undershoot).
    assert results[8.0][1] >= results[0.5][1]
