"""Shared settings for the benchmark harness.

Each benchmark regenerates one table/figure of the paper at a reduced
``scale`` (datasets, cache sizes, and durations shrink together, which
preserves the ratios that define every reported shape).  Results are
printed so the benchmark log doubles as the reproduction record.

Tune via environment variables:

* ``REPRO_BENCH_SCALE``  (default 0.2)
* ``REPRO_BENCH_SEED``   (default 42)
"""

import os

import pytest

#: Scale used by all experiment benchmarks (see module docstring).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

#: Measurement windows (simulated seconds) at bench scale.
WARMUP_S = 200.0
DURATION_S = 250.0


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_scale():
    return BENCH_SCALE


@pytest.fixture
def bench_seed():
    return BENCH_SEED
