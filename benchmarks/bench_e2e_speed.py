"""End-to-end speed check for the hot-path optimization pass.

Times a fixed-seed ``caching_modes`` run (the heaviest per-event code
path: guest page cache + cleancache + DoubleDecker data path) and writes
``BENCH_core.json`` comparing against the recorded pre-optimization
baseline, so the speedup claim stays reproducible:

* baseline: 29.21 s wall for ``CachingModesExperiment(scale=0.05,
  seed=42, warmup_s=40, duration_s=50)`` on the commit before the
  optimization pass (re-measure with ``git stash`` / ``git checkout``
  if the config changes).

Run either way::

    PYTHONPATH=src python benchmarks/bench_e2e_speed.py
    PYTHONPATH=src python -m pytest benchmarks/bench_e2e_speed.py -q

The record also includes the cost of shadow-accounting audits
(``--audit``-style runs with a 10-simulated-second interval), so the
overhead of self-checking stays measured rather than guessed.

The record also times the SSD admission hook (``second_access`` as the
process-wide default) against the admission-off run, so the cost of the
endurance subsystem's per-put check stays measured too.

The record also times the observability subsystem: tracing-off overhead
(the cost of the disabled ``if tracer is not None`` guards, bounded at
<= 1.02x because the comparison is against the same binary) and a
tracing-on (sampled) run with the flight recorder installed.

Environment overrides: ``REPRO_E2E_BASELINE_S`` (seconds),
``REPRO_E2E_ROUNDS`` (default 2; the minimum is reported, which is the
standard noise filter for wall-clock timing), ``REPRO_E2E_AUDIT_ROUNDS``
(default 1; 0 skips the audit-on timing), ``REPRO_E2E_ADMISSION_ROUNDS``
(default 1; 0 skips the admission-on timing), ``REPRO_E2E_TRACE_ROUNDS``
(default 1; 0 skips the tracing-on timing), ``REPRO_E2E_TRACE_SAMPLE``
(default 16), and ``REPRO_E2E_MIN_SPEEDUP`` (default 0 — informational
unless set).
"""

import json
import os
import time
from pathlib import Path

from repro.core import set_audit_interval, set_default_admission
from repro.experiments.caching_modes import CachingModesExperiment
from repro.obs import Tracer, set_tracer

#: Fixed configuration the baseline number was measured with.
SCALE = 0.05
SEED = 42
WARMUP_S = 40.0
DURATION_S = 50.0

#: Pre-optimization wall time for the configuration above (seconds).
BASELINE_S = float(os.environ.get("REPRO_E2E_BASELINE_S", "29.21"))

#: Required speedup; 0 keeps the check informational on slow machines.
MIN_SPEEDUP = float(os.environ.get("REPRO_E2E_MIN_SPEEDUP", "0"))

#: Timing rounds; min-of-N filters scheduler noise out of the wall clock.
ROUNDS = max(1, int(os.environ.get("REPRO_E2E_ROUNDS", "2")))

#: Audit-enabled timing rounds (0 skips the audit-on measurement).
AUDIT_ROUNDS = max(0, int(os.environ.get("REPRO_E2E_AUDIT_ROUNDS", "1")))

#: Shadow-accounting self-check cadence for the audit-on rounds.
AUDIT_INTERVAL_S = 10.0

#: Admission-enabled timing rounds (0 skips the admission-on measurement).
ADMISSION_ROUNDS = max(0, int(os.environ.get("REPRO_E2E_ADMISSION_ROUNDS", "1")))

#: Admission policy timed against the admission-off run.
ADMISSION_POLICY = "second_access"

#: Tracing-enabled timing rounds (0 skips the tracing-on measurement).
TRACE_ROUNDS = max(0, int(os.environ.get("REPRO_E2E_TRACE_ROUNDS", "1")))

#: Span sampling for the tracing-on rounds (histograms see every op).
TRACE_SAMPLE = max(1, int(os.environ.get("REPRO_E2E_TRACE_SAMPLE", "16")))

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _time_run():
    started = time.perf_counter()
    result = CachingModesExperiment(
        scale=SCALE, seed=SEED, warmup_s=WARMUP_S, duration_s=DURATION_S
    ).run()
    return time.perf_counter() - started, result


def run_e2e():
    """Time fixed-seed caching_modes runs and record the comparison."""
    times = []
    result = None
    for _ in range(ROUNDS):
        elapsed_round, result = _time_run()
        times.append(elapsed_round)
    elapsed = min(times)
    record = {
        "benchmark": "caching_modes e2e wall time",
        "config": {
            "scale": SCALE,
            "seed": SEED,
            "warmup_s": WARMUP_S,
            "duration_s": DURATION_S,
        },
        "baseline_s": BASELINE_S,
        "rounds": ROUNDS,
        "current_s": round(elapsed, 2),
        "speedup": round(BASELINE_S / elapsed, 2),
    }
    if AUDIT_ROUNDS:
        audit_times = []
        set_audit_interval(AUDIT_INTERVAL_S)
        try:
            for _ in range(AUDIT_ROUNDS):
                audit_elapsed, _ = _time_run()
                audit_times.append(audit_elapsed)
        finally:
            set_audit_interval(0.0)
        record["audit_interval_s"] = AUDIT_INTERVAL_S
        record["audit_rounds"] = AUDIT_ROUNDS
        record["audit_on_s"] = round(min(audit_times), 2)
        record["audit_overhead"] = round(min(audit_times) / elapsed, 2)
    if ADMISSION_ROUNDS:
        admission_times = []
        set_default_admission(ADMISSION_POLICY)
        try:
            for _ in range(ADMISSION_ROUNDS):
                admission_elapsed, _ = _time_run()
                admission_times.append(admission_elapsed)
        finally:
            set_default_admission(None)
        record["admission_policy"] = ADMISSION_POLICY
        record["admission_rounds"] = ADMISSION_ROUNDS
        record["admission_on_s"] = round(min(admission_times), 2)
        record["admission_overhead"] = round(min(admission_times) / elapsed, 2)
    if TRACE_ROUNDS:
        # The plain rounds above already time the tracing-off path (the
        # guards are always compiled in), so ``speedup`` doubles as the
        # tracing-off overhead bound; here we time the recorder live.
        trace_times = []
        try:
            for _ in range(TRACE_ROUNDS):
                set_tracer(Tracer(max_events=200_000, sample=TRACE_SAMPLE))
                trace_elapsed, _ = _time_run()
                trace_times.append(trace_elapsed)
        finally:
            set_tracer(None)
        record["trace_sample"] = TRACE_SAMPLE
        record["trace_rounds"] = TRACE_ROUNDS
        record["trace_on_s"] = round(min(trace_times), 2)
        record["trace_overhead"] = round(min(trace_times) / elapsed, 2)
    # Fold into the existing file: other tools (bench_kernel.py's
    # ``kernel_micro``, perf_smoke.py's ``perf_smoke``) keep their
    # sections.
    merged = {}
    if OUT_PATH.exists():
        try:
            merged = json.loads(OUT_PATH.read_text())
        except ValueError:
            merged = {}
    merged.update(record)
    OUT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return record, result


def test_e2e_speedup():
    record, result = run_e2e()
    print(f"\n{json.dumps(record, indent=2)}")
    # The run must still produce the experiment's three mode rows.
    assert result is not None
    assert record["current_s"] > 0
    if MIN_SPEEDUP:
        assert record["speedup"] >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x vs {BASELINE_S}s baseline, "
            f"got {record['speedup']}x"
        )


if __name__ == "__main__":
    record, _ = run_e2e()
    print(json.dumps(record, indent=2))
