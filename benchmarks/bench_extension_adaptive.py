"""Extension: MRC-driven adaptive weights vs a static split (§5.2.1).

The paper proposes MRC/WSS-driven provisioning as the way to *discover*
weights; this bench shows the shipped AdaptiveWeightController beating a
static 50/50 split when one container has reuse and the other streams.
"""

from conftest import BENCH_SEED, run_once

from repro import CachePolicy, DDConfig, SimContext, StoreKind
from repro.policies import AdaptiveWeightController

CACHE_MB = 128.0


def drive(adaptive: bool):
    ctx = SimContext(seed=BENCH_SEED)
    host = ctx.create_host()
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=CACHE_MB, eviction_batch_mb=0.5)
    )
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    reuse = vm.create_container("reuse", 64, CachePolicy.memory(50))
    stream = vm.create_container("stream", 64, CachePolicy.memory(50))
    reuse_file = reuse.create_file(3072)  # 192 MB: overflow = whole cache
    rng = ctx.streams.stream("bench.adaptive")
    window = []

    def reuse_loop(env):
        while True:
            start = rng.randrange(reuse_file.nblocks - 32)
            yield from reuse.read(reuse_file, start, 32)
            yield env.timeout(0.02)

    def stream_loop(env):
        while True:
            fresh = stream.create_file(64)
            yield from stream.read(fresh)
            window.append(fresh)
            if len(window) > 40:
                old = window.pop(0)
                yield from stream.delete(old)
            yield env.timeout(0.05)

    ctx.env.process(reuse_loop(ctx.env))
    ctx.env.process(stream_loop(ctx.env))
    if adaptive:
        AdaptiveWeightController(
            ctx.env, [reuse, stream],
            total_cache_blocks=cache.capacities[StoreKind.MEMORY],
            interval_s=45.0, sample_rate=0.2,
        ).attach()
    ctx.run(until=400)
    stats = reuse.cache_stats()
    return {
        "reuse_hit_pct": 100.0 * stats.hit_ratio,
        "reuse_cache_mb": reuse.hvcache_mb,
        "stream_cache_mb": stream.hvcache_mb,
    }


def test_extension_adaptive_controller(benchmark):
    def run():
        return {"static": drive(False), "adaptive": drive(True)}

    results = run_once(benchmark, run)
    print()
    for mode, cells in results.items():
        print(f"{mode:9s} reuse-hit={cells['reuse_hit_pct']:5.1f}% "
              f"reuse-cache={cells['reuse_cache_mb']:6.1f}MB "
              f"stream-cache={cells['stream_cache_mb']:6.1f}MB")

    static, adaptive = results["static"], results["adaptive"]
    # The controller must shift capacity from the streamer to the reuser
    # and convert it into a better hit ratio.
    assert adaptive["reuse_cache_mb"] > static["reuse_cache_mb"]
    assert adaptive["stream_cache_mb"] < static["stream_cache_mb"]
    assert adaptive["reuse_hit_pct"] > static["reuse_hit_pct"] + 5.0
