"""Ablation: hybrid store and trickle-down (the paper's §3.3 sketch).

A single webserver whose working set exceeds its memory-store share runs
under three configurations:

* memory-only (overflow is dropped when the store fills);
* hybrid ``<mem+SSD>`` (overflow spills to the SSD synchronously at put);
* memory-only with trickle-down (evicted blocks re-home to the SSD).

Both SSD-assisted modes must beat memory-only on second-chance coverage;
hybrid/trickle throughput sits between pure-memory-fits and pure-SSD.
"""

from conftest import BENCH_SEED, run_once

from repro import CachePolicy, DDConfig, SimContext
from repro.workloads import WebserverWorkload

MEM_MB = 128.0
SSD_MB = 4096.0


def drive(mode: str):
    ctx = SimContext(seed=BENCH_SEED)
    host = ctx.create_host()
    if mode == "mem":
        config = DDConfig(mem_capacity_mb=MEM_MB)
        policy = CachePolicy.memory(100)
    elif mode == "hybrid":
        config = DDConfig(mem_capacity_mb=MEM_MB, ssd_capacity_mb=SSD_MB)
        policy = CachePolicy.hybrid(100, 100)
    elif mode == "trickle":
        config = DDConfig(mem_capacity_mb=MEM_MB, ssd_capacity_mb=SSD_MB,
                          trickle_down=True)
        policy = CachePolicy.memory(100)
    else:
        raise ValueError(mode)
    host.install_doubledecker(config)
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    container = vm.create_container("web", 256, policy)
    workload = WebserverWorkload(nfiles=6000, mean_size_kb=128, threads=2,
                                 cpu_think_ms=2.0)
    workload.start(container, ctx.streams)
    ctx.run(until=150)
    snap = workload.snapshot()
    ctx.run(until=350)
    rates = workload.snapshot().rates_since(snap)
    stats = container.cache_stats()
    return {
        "ops": rates["ops_per_s"],
        "hit_pct": 100 * stats.hit_ratio,
        "mem_mb": stats.mem_used_blocks * host.block_bytes / (1 << 20),
        "ssd_mb": stats.ssd_used_blocks * host.block_bytes / (1 << 20),
    }


def test_ablation_hybrid_store(benchmark):
    def run():
        return {mode: drive(mode) for mode in ("mem", "hybrid", "trickle")}

    results = run_once(benchmark, run)
    print()
    for mode, cells in results.items():
        print(f"{mode:8s} ops/s={cells['ops']:8.1f} hit={cells['hit_pct']:5.1f}% "
              f"mem={cells['mem_mb']:6.1f}MB ssd={cells['ssd_mb']:7.1f}MB")

    # SSD-assisted modes actually place blocks on the SSD.
    assert results["hybrid"]["ssd_mb"] > 0
    assert results["trickle"]["ssd_mb"] > 0
    assert results["mem"]["ssd_mb"] == 0
    # And recover more lookups than memory-only (whose overflow is lost).
    assert results["hybrid"]["hit_pct"] > results["mem"]["hit_pct"]
    assert results["trickle"]["hit_pct"] > results["mem"]["hit_pct"]
