"""TAB-1 — guest-OS metrics at the equal (1 GB : 1 GB) split.

Shape checks: Redis and MySQL swap and leave the hypervisor cache unused
(anonymous memory cannot be offloaded); Webserver and MongoDB never swap
and fill the hypervisor cache instead.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import AppBehaviorExperiment


def test_table1_diagnosis(benchmark):
    exp = AppBehaviorExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                warmup_s=200, duration_s=200)
    result = run_once(benchmark, exp.run_table1_only)
    print()
    print(result.summary(plots=False))

    cache_mb = exp.mb(1024)
    # Anon-memory apps swap; file apps do not.
    assert result.scalars["redis_swap_mb"] > 0
    assert result.scalars["mysql_swap_mb"] > 0
    assert result.scalars["webserver_swap_mb"] == 0
    assert result.scalars["mongodb_swap_mb"] == 0
    # File apps fill the hypervisor cache; Redis cannot use it.
    assert result.scalars["webserver_hvcache_mb"] > 0.5 * cache_mb
    assert result.scalars["mongodb_hvcache_mb"] > 0.5 * cache_mb
    assert result.scalars["redis_hvcache_mb"] < 0.1 * cache_mb
