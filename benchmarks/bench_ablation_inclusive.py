"""Ablation: exclusive vs inclusive hypervisor caching (§2 background).

The paper builds on exclusive (tmem-style) caching because inclusive
host caches duplicate blocks already held by guest page caches.  We run
the same webserver under both modes of the Global cache and compare the
*distinct* block coverage and throughput: with the same capacity, the
exclusive cache must cover more unique blocks (page cache + cache are
disjoint) and thus serve more second-chance hits.
"""

from conftest import BENCH_SEED, run_once

from repro import SimContext
from repro.workloads import WebserverWorkload

CACHE_MB = 192.0


def drive(exclusive: bool):
    ctx = SimContext(seed=BENCH_SEED)
    host = ctx.create_host()
    cache = host.install_global_cache(capacity_mb=CACHE_MB,
                                      exclusive=exclusive)
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    container = vm.create_container("web", 256)
    workload = WebserverWorkload(nfiles=6000, mean_size_kb=128, threads=2,
                                 cpu_think_ms=2.0)
    workload.start(container, ctx.streams)
    ctx.run(until=150)
    snap = workload.snapshot()
    ctx.run(until=350)
    rates = workload.snapshot().rates_since(snap)

    # Count duplicated blocks: cached in BOTH the guest page cache and
    # the hypervisor cache (inclusive mode's waste).
    pool = cache._pools[container.pool_id]
    duplicated = sum(
        1 for key in vm.os.pagecache.entries if pool.lookup(*key) is not None
    )
    return {
        "ops": rates["ops_per_s"],
        "duplicated_blocks": duplicated,
        "cached_blocks": cache.used_blocks,
    }


def test_ablation_inclusive_vs_exclusive(benchmark):
    def run():
        return {"exclusive": drive(True), "inclusive": drive(False)}

    results = run_once(benchmark, run)
    print()
    for mode, cells in results.items():
        print(f"{mode:10s} ops/s={cells['ops']:8.1f} "
              f"duplicated={cells['duplicated_blocks']:6d} "
              f"cached={cells['cached_blocks']:6d}")

    # Exclusive caching wastes nothing; inclusive duplicates real capacity.
    assert results["exclusive"]["duplicated_blocks"] == 0
    assert results["inclusive"]["duplicated_blocks"] > 0
    # Effective unique coverage (cache minus duplicates) is larger
    # under exclusive caching.
    excl_unique = results["exclusive"]["cached_blocks"]
    incl_unique = (results["inclusive"]["cached_blocks"]
                   - results["inclusive"]["duplicated_blocks"])
    assert excl_unique > incl_unique
