"""Fixed-seed perf smoke: fingerprint goldens + wall-time regression gate.

CI's perf-smoke job runs this in check mode (no arguments).  It executes
two smoke scenarios and asserts each against the committed record in
``BENCH_core.json``:

* ``perf_smoke`` — ``caching_modes`` at ``scale=0.02, seed=42``, the
  same configuration the runtime sanitizer double-runs (single-host
  path; its fingerprint also pins the fleet refactor's no-op guarantee);
* ``fleet_smoke`` — the ``fleet`` experiment at ``scale=0.02, seed=42``
  with 2 hosts (sharded simulation, lending, live migration).

For each record two things are checked:

* **Fingerprint** — the SHA-256 of the run's summary table must equal
  the recorded ``fingerprint_sha256`` exactly.  Any drift in simulated
  results (not wall time) fails the job; this is the cross-machine
  complement to the sanitizer's same-process double run.
* **Wall time** — the run must not take more than ``1 + threshold``
  times the recorded ``smoke_s`` (default threshold 0.25, override with
  ``REPRO_SMOKE_MAX_REGRESSION``; set a large value on known-slow
  runners).  Generous compared to the e2e benchmark's min-of-N
  precision, because a single CI round is noisy — the gate is for
  order-of-magnitude regressions (an accidental O(n^2) sweep, a debug
  loop left enabled), not for micro-tuning.

Re-record after an intentional perf or behaviour change::

    PYTHONHASHSEED=0 PYTHONPATH=src python benchmarks/perf_smoke.py --record

which updates the ``perf_smoke`` and ``fleet_smoke`` sections of
``BENCH_core.json`` (the other sections are preserved;
``bench_e2e_speed.py`` and ``bench_kernel.py`` maintain theirs the same
way).
"""

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments.caching_modes import CachingModesExperiment
from repro.experiments.fleet import FleetExperiment

#: Smoke configuration — matches the runtime sanitizer's double run.
SCALE = 0.02
SEED = 42
FLEET_HOSTS = 2

#: Allowed fractional wall-time regression before the gate fails.
MAX_REGRESSION = float(os.environ.get("REPRO_SMOKE_MAX_REGRESSION", "0.25"))

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _fingerprint(result):
    summary = result.summary(plots=False)
    return hashlib.sha256(summary.encode("utf-8")).hexdigest()


def run_smoke():
    """One caching_modes smoke round; returns ``(elapsed_s, sha256)``."""
    started = time.perf_counter()
    result = CachingModesExperiment(scale=SCALE, seed=SEED).run()
    elapsed = time.perf_counter() - started
    return elapsed, _fingerprint(result)


def run_fleet_smoke():
    """One 2-host fleet smoke round; returns ``(elapsed_s, sha256)``."""
    started = time.perf_counter()
    result = FleetExperiment(scale=SCALE, seed=SEED, hosts=FLEET_HOSTS).run()
    elapsed = time.perf_counter() - started
    return elapsed, _fingerprint(result)


#: Record key -> (runner, descriptive metadata).
SCENARIOS = {
    "perf_smoke": (run_smoke, {"experiment": "caching_modes",
                               "scale": SCALE, "seed": SEED}),
    "fleet_smoke": (run_fleet_smoke, {"experiment": "fleet",
                                      "scale": SCALE, "seed": SEED,
                                      "hosts": FLEET_HOSTS}),
}


def record():
    """Run both smoke scenarios and write the golden records."""
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    for key, (runner, meta) in SCENARIOS.items():
        elapsed, digest = runner()
        data[key] = dict(meta, smoke_s=round(elapsed, 2),
                         fingerprint_sha256=digest)
        print(f"recorded {key}: {elapsed:.2f}s, fingerprint {digest[:16]}…")
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return 0


def check():
    """Run both smoke scenarios and gate against the committed records."""
    if not OUT_PATH.exists():
        print(f"{OUT_PATH} missing; run with --record first", file=sys.stderr)
        return 2
    data = json.loads(OUT_PATH.read_text())
    failures = []
    for key, (runner, _) in SCENARIOS.items():
        golden = data.get(key)
        if not golden:
            print(f"BENCH_core.json has no {key} record; run --record first",
                  file=sys.stderr)
            return 2
        elapsed, digest = runner()
        round_failures = []
        if digest != golden["fingerprint_sha256"]:
            round_failures.append(
                f"{key} fingerprint mismatch: simulated results drifted "
                f"from the committed golden ({digest[:16]}… != "
                f"{golden['fingerprint_sha256'][:16]}…)"
            )
        budget = golden["smoke_s"] * (1.0 + MAX_REGRESSION)
        if elapsed > budget:
            round_failures.append(
                f"{key} wall-time regression: {elapsed:.2f}s > {budget:.2f}s "
                f"(recorded {golden['smoke_s']:.2f}s + {MAX_REGRESSION:.0%})"
            )
        status = "FAIL" if round_failures else "ok"
        print(f"{key} {status}: {elapsed:.2f}s "
              f"(recorded {golden['smoke_s']:.2f}s), "
              f"fingerprint {digest[:16]}…")
        failures.extend(round_failures)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1 if failures else 0


# -- pytest entry point (record shape only; timing gates are CI's) ------

def test_perf_smoke_record_is_committed():
    """The golden record must exist and describe the smoke config."""
    data = json.loads(OUT_PATH.read_text())
    golden = data["perf_smoke"]
    assert golden["experiment"] == "caching_modes"
    assert golden["scale"] == SCALE
    assert golden["seed"] == SEED
    assert golden["smoke_s"] > 0
    assert len(golden["fingerprint_sha256"]) == 64


def test_fleet_smoke_record_is_committed():
    """The fleet golden must exist and describe the smoke config."""
    data = json.loads(OUT_PATH.read_text())
    golden = data["fleet_smoke"]
    assert golden["experiment"] == "fleet"
    assert golden["scale"] == SCALE
    assert golden["seed"] == SEED
    assert golden["hosts"] == FLEET_HOSTS
    assert golden["smoke_s"] > 0
    assert len(golden["fingerprint_sha256"]) == 64


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="re-record the golden fingerprints and wall times")
    args = parser.parse_args(argv)
    return record() if args.record else check()


if __name__ == "__main__":
    raise SystemExit(main())
