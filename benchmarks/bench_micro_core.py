"""Microbenchmarks of the core data structures and the cache data path.

These exercise pytest-benchmark properly (many rounds) and guard against
performance regressions in the structures every experiment leans on.
"""

import random

from repro.core import (
    CachePolicy,
    DDConfig,
    DoubleDeckerCache,
    EvictionEntity,
    Pool,
    RadixTree,
    StoreKind,
    get_victim,
)
from repro.simkernel import Environment

BLK = 64 * 1024


def test_radix_insert_1k(benchmark):
    keys = list(range(0, 100_000, 100))

    def run():
        tree = RadixTree()
        for key in keys:
            tree.insert(key, key)
        return tree

    tree = benchmark(run)
    assert len(tree) == 1000


def test_radix_lookup_1k(benchmark):
    tree = RadixTree()
    keys = list(range(0, 100_000, 100))
    for key in keys:
        tree.insert(key, key)

    def run():
        total = 0
        for key in keys:
            total += tree.get(key)
        return total

    total = benchmark(run)
    assert total == sum(keys)


def test_victim_selection_100_entities(benchmark):
    rng = random.Random(7)
    entities = [
        EvictionEntity(ref=i, entitlement=rng.randrange(1000),
                       used=rng.randrange(1000), weightage=rng.random() * 100)
        for i in range(100)
    ]

    victim = benchmark(get_victim, entities, 32)
    assert victim is None or victim.used > 0


def test_pool_insert_pop_cycle(benchmark):
    pool = Pool(1, 1, "bench", CachePolicy.memory(100))

    def run():
        for block in range(256):
            pool.insert(1, block, StoreKind.MEMORY)
        while pool.pop_oldest(StoreKind.MEMORY) is not None:
            pass

    benchmark(run)
    assert len(pool) == 0


def test_dd_put_get_roundtrip_256_blocks(benchmark):
    env = Environment()
    cache = DoubleDeckerCache(env, DDConfig(mem_capacity_mb=64), BLK)
    vm = cache.register_vm("vm")
    pool = cache.create_pool(vm, "c", CachePolicy.memory(100))
    keys = [(1, i) for i in range(256)]

    def run():
        def driver():
            yield from cache.put_many(vm, pool, keys)
            found = yield from cache.get_many(vm, pool, keys)
            return found

        return env.run(until=env.process(driver()))

    found = benchmark(run)
    assert len(found) == 256


def test_event_loop_throughput(benchmark):
    """Raw kernel speed: 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    now = benchmark(run)
    assert now > 9.9
