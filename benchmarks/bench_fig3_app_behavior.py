"""FIG-3 — application throughput vs in-VM : hypervisor-cache split.

Shape checks: file-backed apps (webserver, mongodb) are flat across
splits; anon-memory apps (redis, mysql) degrade as in-VM memory shrinks,
with redis collapsing at the extreme split.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import AppBehaviorExperiment


def test_fig3_app_behavior(benchmark):
    exp = AppBehaviorExperiment(scale=BENCH_SCALE, seed=BENCH_SEED,
                                warmup_s=200, duration_s=200)
    result = run_once(benchmark, exp.run)
    print()
    print(result.summary(plots=False))

    # File-backed apps: tight split costs at most ~45% (paper: flat).
    assert result.scalars["webserver_degradation"] > 0.55
    assert result.scalars["mongodb_degradation"] > 0.55
    # Redis collapses (paper: stall); MySQL degrades.
    assert result.scalars["redis_degradation"] < 0.15
    assert result.scalars["mysql_degradation"] < 0.95
