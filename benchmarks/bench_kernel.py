"""Microbenchmarks for the array-based event kernel and block state.

Old-vs-new comparisons for the two structures the hot path was rebuilt
around:

* **timeline** — a ``heapq`` event queue (the old kernel) against
  :class:`repro.simkernel.CalendarTimeline` (calendar buckets + overflow
  heap), on the push/pop mix a simulation actually produces (mostly
  near-future timeouts plus same-instant triggers).
* **block index** — the per-block-object :class:`repro.core.RadixTree`
  against the flat :class:`repro.core.BlockTable` slab behind ``Pool``,
  on insert / lookup / remove and on the FIFO insert→evict cycle.
* **batch sweep** — per-key ``Pool.remove_key`` calls against the
  ``Pool.remove_many`` index sweep ``get_many``/``flush_many`` use.

Run either way::

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

The standalone entry point folds its numbers into ``BENCH_core.json``
under ``"kernel_micro"`` (ns/op per case, old/new/speedup), next to the
end-to-end record ``bench_e2e_speed.py`` maintains.

Environment overrides: ``REPRO_KERNEL_EVENTS`` (default 100000) and
``REPRO_KERNEL_BLOCKS`` (default 20000) scale the workloads down for
smoke runs.
"""

import heapq
import json
import os
import random
import time
from pathlib import Path

from repro.core import CachePolicy, Pool, RadixTree, StoreKind
from repro.simkernel import CalendarTimeline

N_EVENTS = max(1000, int(os.environ.get("REPRO_KERNEL_EVENTS", "100000")))
N_BLOCKS = max(1000, int(os.environ.get("REPRO_KERNEL_BLOCKS", "20000")))

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

_MEMORY = StoreKind.MEMORY


def _event_trace(n, seed=42):
    """A schedule trace shaped like a real run: the clock only moves
    forward, most delays sit near the device/hypercall latency floor,
    and a minority are far-future (periodic controllers, timeouts)."""
    rng = random.Random(seed)
    now = 0.0
    entries = []
    for eid in range(n):
        roll = rng.random()
        if roll < 0.50:
            delay = 0.0  # same-instant trigger (succeed/fail)
        elif roll < 0.90:
            delay = rng.uniform(2e-6, 5e-4)  # hypercall/IO latency band
        else:
            delay = rng.uniform(0.01, 2.0)  # controllers, pacing timers
        entries.append((now + delay, 1, eid, None))
        if roll >= 0.50 and rng.random() < 0.3:
            now += delay * rng.random()  # the run loop advanced
    return entries


def _drain_heapq(entries):
    queue = []
    push = heapq.heappush
    pop = heapq.heappop
    # Interleave in batches the way a run does: schedule a burst, drain
    # part of it, schedule more — a pure fill-then-drain hides the
    # sift costs the real loop pays.
    out = 0
    for start in range(0, len(entries), 64):
        for entry in entries[start:start + 64]:
            push(queue, entry)
        for _ in range(32):
            if queue:
                pop(queue)
                out += 1
    while queue:
        pop(queue)
        out += 1
    return out


def _drain_calendar(entries):
    timeline = CalendarTimeline()
    push = timeline.push
    pop = timeline.pop
    out = 0
    for start in range(0, len(entries), 64):
        for entry in entries[start:start + 64]:
            push(entry)
        for _ in range(32):
            if pop() is not None:
                out += 1
    while pop() is not None:
        out += 1
    return out


def bench_timeline():
    entries = _event_trace(N_EVENTS)
    # The calendar requires a non-decreasing clock between pops; the trace
    # above satisfies it by construction (times only ratchet forward).
    old_s = _time(lambda: _drain_heapq(entries))
    new_s = _time(lambda: _drain_calendar(entries))
    return _case("timeline push/pop", N_EVENTS, old_s, new_s)


def _block_keys(n, seed=7):
    rng = random.Random(seed)
    keys = [(rng.randrange(64), rng.randrange(4096)) for _ in range(n)]
    return keys


def _radix_cycle(keys):
    trees = {}
    for inode, block in keys:
        tree = trees.get(inode)
        if tree is None:
            tree = trees[inode] = RadixTree()
        tree.insert(block, _MEMORY)
    hits = 0
    for inode, block in keys:
        if trees[inode].get(block) is not None:
            hits += 1
    for inode, block in keys:
        trees[inode].remove(block)
    return hits


def _pool_cycle(keys):
    pool = Pool(1, 1, "bench", CachePolicy.memory(100))
    insert = pool.insert
    for inode, block in keys:
        insert(inode, block, _MEMORY)
    lookup = pool.lookup
    hits = 0
    for inode, block in keys:
        if lookup(inode, block) is not None:
            hits += 1
    remove = pool.remove_key
    for key in keys:
        remove(key)
    return hits


def bench_block_index():
    keys = _block_keys(N_BLOCKS)
    old_s = _time(lambda: _radix_cycle(keys))
    new_s = _time(lambda: _pool_cycle(keys))
    return _case("block index insert/lookup/remove", N_BLOCKS * 3, old_s, new_s)


def bench_fifo_cycle():
    """Insert→evict churn (the eviction path's pop_oldest loop)."""
    def run():
        pool = Pool(1, 1, "bench", CachePolicy.memory(100))
        for block in range(N_BLOCKS):
            pool.insert(1, block, _MEMORY)
        while pool.pop_oldest(_MEMORY) is not None:
            pass

    new_s = _time(run)
    return {
        "case": "pool fifo insert+evict",
        "ops": N_BLOCKS * 2,
        "new_ns_per_op": round(new_s / (N_BLOCKS * 2) * 1e9, 1),
    }


def bench_batch_sweep():
    keys = _block_keys(N_BLOCKS)
    uniq = list(dict.fromkeys(keys))

    def fill():
        pool = Pool(1, 1, "bench", CachePolicy.memory(100))
        for inode, block in uniq:
            pool.insert(inode, block, _MEMORY)
        return pool

    def per_key():
        pool = fill()
        remove = pool.remove_key
        for key in keys:
            remove(key)

    def sweep():
        pool = fill()
        pool.remove_many(keys)

    old_s = _time(per_key)
    new_s = _time(sweep)
    return _case("batch removal sweep", len(keys), old_s, new_s)


def _time(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _case(name, ops, old_s, new_s):
    return {
        "case": name,
        "ops": ops,
        "old_ns_per_op": round(old_s / ops * 1e9, 1),
        "new_ns_per_op": round(new_s / ops * 1e9, 1),
        "speedup": round(old_s / new_s, 2),
    }


def run_kernel_micro():
    """Run every case and fold the results into ``BENCH_core.json``."""
    cases = [
        bench_timeline(),
        bench_block_index(),
        bench_fifo_cycle(),
        bench_batch_sweep(),
    ]
    record = {}
    if OUT_PATH.exists():
        record = json.loads(OUT_PATH.read_text())
    record["kernel_micro"] = {
        "events": N_EVENTS,
        "blocks": N_BLOCKS,
        "cases": cases,
    }
    OUT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    return cases


# -- pytest entry points (correctness of the harness, not wall time) ----

def test_timeline_benchmark_drains_completely():
    entries = _event_trace(5000)
    assert _drain_heapq(entries) == 5000
    assert _drain_calendar(entries) == 5000


def test_block_cycles_agree():
    keys = _block_keys(2000)
    assert _radix_cycle(keys) == _pool_cycle(keys) == len(keys)


def test_batch_sweep_equivalent_to_per_key():
    keys = _block_keys(2000)
    uniq = list(dict.fromkeys(keys))
    a = Pool(1, 1, "a", CachePolicy.memory(100))
    b = Pool(1, 1, "b", CachePolicy.memory(100))
    for inode, block in uniq:
        a.insert(inode, block, _MEMORY)
        b.insert(inode, block, _MEMORY)
    removed = []
    for key in keys:
        if a.remove_key(key) is not None:
            removed.append(key)
    mem_keys, ssd_keys = b.remove_many(keys)
    assert mem_keys == removed
    assert ssd_keys == []
    assert len(a) == len(b) == 0


if __name__ == "__main__":
    for case in run_kernel_micro():
        print(json.dumps(case))
