#!/usr/bin/env python3
"""MRC-driven adaptive cache partitioning (the paper's §5.2.1 direction).

The paper argues DoubleDecker's GET_STATS + SET_CG_WEIGHT interface lets a
VM-level controller provision the cache *adaptively* using MRC/WSS
estimation (SHARDS et al.).  This example runs two containers with very
different cache utility:

* ``reuse``  — random re-reads over a dataset whose overflow equals the
  whole hypervisor cache (every extra MB converts to hits);
* ``stream`` — a one-pass scan over ever-new files (no reuse: cache is
  useless to it).

A static 50/50 split wastes half the cache on the streamer.  The
:class:`~repro.policies.AdaptiveWeightController` watches the miss
streams, builds SHARDS miss-ratio curves, and shifts the weights toward
the container that actually benefits.

Run:  python examples/adaptive_controller.py
"""

from repro import CachePolicy, DDConfig, SimContext, StoreKind
from repro.policies import AdaptiveWeightController


def run(adaptive: bool) -> dict:
    ctx = SimContext(seed=31)
    host = ctx.create_host()
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=256, eviction_batch_mb=0.5)
    )
    vm = host.create_vm("vm1", memory_mb=1024, vcpus=4)
    reuse = vm.create_container("reuse", 128, CachePolicy.memory(50))
    stream = vm.create_container("stream", 128, CachePolicy.memory(50))

    reuse_file = reuse.create_file(6144)  # 384 MB: overflow = whole cache
    rng = ctx.streams.stream("example.reuse")

    def reuse_loop(env):
        while True:
            start = rng.randrange(reuse_file.nblocks - 32)
            yield from reuse.read(reuse_file, start, 32)
            yield env.timeout(0.02)

    window = []

    def stream_loop(env):
        # One-pass scan with a retention window: the streamer's evicted
        # blocks pile into the hypervisor cache even though it will never
        # re-read them — junk a static split dutifully protects.
        while True:
            fresh = stream.create_file(64)
            yield from stream.read(fresh)
            window.append(fresh)
            if len(window) > 60:
                old = window.pop(0)
                yield from stream.delete(old)
            yield env.timeout(0.05)

    ctx.env.process(reuse_loop(ctx.env))
    ctx.env.process(stream_loop(ctx.env))

    controller = None
    if adaptive:
        controller = AdaptiveWeightController(
            ctx.env, [reuse, stream],
            total_cache_blocks=cache.capacities[StoreKind.MEMORY],
            interval_s=60.0, sample_rate=0.2,
        )
        controller.attach()

    ctx.run(until=600)
    stats = reuse.cache_stats()
    return {
        "reuse_hit_pct": 100.0 * stats.hit_ratio,
        "reuse_cache_mb": reuse.hvcache_mb,
        "stream_cache_mb": stream.hvcache_mb,
        "weights": (
            {name: round(p.weight, 1) for name, p in controller.profiles.items()}
            if controller else {"reuse": 50.0, "stream": 50.0}
        ),
    }


def main() -> None:
    print("running static 50/50 partitioning...")
    static = run(adaptive=False)
    print("running adaptive (SHARDS/MRC) controller...")
    adaptive = run(adaptive=True)

    print(f"\n{'metric':24s} {'static 50/50':>14s} {'adaptive':>14s}")
    for label, key in [("reuse-ctr hit ratio (%)", "reuse_hit_pct"),
                       ("reuse-ctr cache (MB)", "reuse_cache_mb"),
                       ("stream-ctr cache (MB)", "stream_cache_mb")]:
        print(f"{label:24s} {static[key]:14.1f} {adaptive[key]:14.1f}")
    print(f"\nfinal adaptive weights: {adaptive['weights']}")
    print("the controller starves the streamer (no reuse in its MRC) and "
          "hands the cache to the container that converts it into hits.")


if __name__ == "__main__":
    main()
