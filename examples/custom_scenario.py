#!/usr/bin/env python3
"""Building your own study with the declarative Scenario API.

A derivative-cloud provider runs two tenant VMs (weights 70/30) with an
OLTP database, a fileserver, and a bursty webserver that only boots
mid-run.  At T=300 s the provider demotes the fileserver to the SSD store
to make room for the web burst — all declared as data, no experiment
class needed.

Run:  python examples/custom_scenario.py
"""

from repro.experiments import Scenario
from repro.metrics import ascii_plot


def main() -> None:
    scenario = (
        Scenario(seed=11)
        .cache("doubledecker", mem_mb=768, ssd_mb=32768)
        .vm("tenant-a", memory_mb=2048, vcpus=4, weight=70,
            readahead_blocks=16)
        .vm("tenant-b", memory_mb=1536, vcpus=2, weight=30)
        .container("tenant-a", "oltp-db", 768, policy="mem:60",
                   workload=("oltp", {"datafile_mb": 1536, "threads": 2}))
        .container("tenant-a", "webburst", 512, policy="mem:40",
                   workload=("webserver", {"nfiles": 6000, "threads": 2}),
                   start_at=300.0)
        .container("tenant-b", "files", 512, policy="mem:100",
                   workload=("fileserver", {"nfiles": 4000, "threads": 2}))
        # Mid-run policy change: push the fileserver to the SSD store.
        .at(300.0, "set_policy", container="files", policy="ssd:100")
    )

    print("running scenario (900 simulated seconds)...")
    result = scenario.run(warmup_s=300, duration_s=600)
    print()
    print(result.table())
    print()
    print(ascii_plot(result.series, width=72, height=12,
                     title="hypervisor-cache occupancy per container (MB)"))


if __name__ == "__main__":
    main()
