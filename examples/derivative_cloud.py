#!/usr/bin/env python3
"""The paper's Figure-5 architecture, end to end.

Two virtual machines with hypervisor-level weights 33 and 67 share a
DoubleDecker cache with both a memory store and an SSD store:

* VM1 hosts two containers: Container 1 `<SSD, 100>` (a videoserver) and
  Container 2 `<Mem, 100>` (a webserver);
* VM2 hosts three containers: memory weights 25/75 for a webserver and a
  proxy, and `<SSD, 100>` for a mail archive scanner.

Shows the two-level weighted partitioning in action: per-VM shares are
split 33/67 on *both* stores, and each VM's share is subdivided by its
own containers' `<T, W>` tuples.

Run:  python examples/derivative_cloud.py
"""

from repro import CachePolicy, DDConfig, SimContext, StoreKind
from repro.workloads import (
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)


def main() -> None:
    ctx = SimContext(seed=7)
    host = ctx.create_host()
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=1536, ssd_capacity_mb=65536)
    )

    vm1 = host.create_vm("vm1", memory_mb=2048, vcpus=4, cache_weight=33)
    vm2 = host.create_vm("vm2", memory_mb=3072, vcpus=8, cache_weight=67)

    # VM1's policy controller: video on SSD, web in memory.
    c1 = vm1.create_container("vm1-video", 512, CachePolicy.ssd(100))
    c2 = vm1.create_container("vm1-web", 512, CachePolicy.memory(100))
    # VM2's policy controller: web/proxy split 25/75, mail on SSD.
    c3 = vm2.create_container("vm2-web", 512, CachePolicy.memory(25))
    c4 = vm2.create_container("vm2-proxy", 512, CachePolicy.memory(75))
    c5 = vm2.create_container("vm2-mail", 512, CachePolicy.ssd(100))

    workloads = [
        (VideoserverWorkload(name="vm1-video", nvideos=6, video_mb=256,
                             threads=2, stream_pace_ms=2.0), c1),
        (WebserverWorkload(name="vm1-web", nfiles=6000, threads=2), c2),
        (WebserverWorkload(name="vm2-web", nfiles=6000, threads=2), c3),
        (WebproxyWorkload(name="vm2-proxy", nfiles=8000, threads=2), c4),
        (VarmailWorkload(name="vm2-mail", nfiles=16000, threads=2), c5),
    ]
    for workload, container in workloads:
        workload.start(container, ctx.streams)

    print("running 300 simulated seconds...")
    ctx.run(until=300)

    print(f"\n{'container':12s} {'store':6s} {'used MB':>8s} "
          f"{'entitled MB':>12s} {'hit %':>6s}")
    blk = host.block_bytes
    for _, container in workloads:
        stats = container.cache_stats()
        policy = container.cgroup.policy
        kind = "SSD" if policy.ssd_weight > 0 else "mem"
        used = (stats.mem_used_blocks + stats.ssd_used_blocks) * blk >> 20
        entitled = (
            stats.mem_entitlement_blocks + stats.ssd_entitlement_blocks
        ) * blk >> 20
        print(f"{container.name:12s} {kind:6s} {used:8d} {entitled:12d} "
              f"{100 * stats.hit_ratio:6.1f}")

    print("\nstore totals:")
    for kind, stats in cache.store_stats().items():
        print(f"  {kind}: {stats.used_blocks * blk >> 20} MB used of "
              f"{stats.capacity_blocks * blk >> 20} MB "
              f"({stats.evictions} evictions)")

    # The invariant Figure 5 illustrates: per-VM shares follow 33/67 on
    # both stores, regardless of how containers subdivide them.
    for kind in (StoreKind.MEMORY, StoreKind.SSD):
        vm1_mb = cache.vm_used_mb(vm1.vm_id, kind)
        vm2_mb = cache.vm_used_mb(vm2.vm_id, kind)
        print(f"  {kind}: VM1 {vm1_mb:.0f} MB vs VM2 {vm2_mb:.0f} MB")


if __name__ == "__main__":
    main()
