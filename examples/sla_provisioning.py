#!/usr/bin/env python3
"""Cooperative two-level provisioning (the paper's §5.2.1, in miniature).

Runs the same two workloads — an anonymous-memory store (Redis) and a
file-IO webserver — under two provisioning strategies:

* **cache-only** (what a centralized hypervisor scheme can do): the VM's
  internal memory is untouched; only the hypervisor cache is partitioned.
* **cooperative** (DoubleDecker): the VM-level manager also re-provisions
  in-VM cgroup memory, giving the anon-bound Redis the RAM it actually
  needs and pushing the webserver's cache appetite to the hypervisor.

Run:  python examples/sla_provisioning.py
"""

from repro import CachePolicy, DDConfig, SimContext
from repro.workloads import RedisWorkload, WebserverWorkload

VM_MB = 1536
CACHE_MB = 512
WARMUP, MEASURE = 120.0, 180.0


def run_strategy(cooperative: bool) -> dict:
    ctx = SimContext(seed=5)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=CACHE_MB))
    vm = host.create_vm("vm1", memory_mb=VM_MB, vcpus=4)

    if cooperative:
        # VM-level manager: Redis needs ~768 MB of *anonymous* memory
        # (the hypervisor cache cannot hold it), the webserver can spill
        # its file pages to the hypervisor cache instead.
        redis_c = vm.create_container("redis", 1024, CachePolicy.none())
        web_c = vm.create_container("web", 448, CachePolicy.memory(100))
    else:
        # Centralized view: containers share the VM; only the cache is
        # partitioned (50/50 here).
        redis_c = vm.create_container("redis", VM_MB, CachePolicy.memory(50))
        web_c = vm.create_container("web", VM_MB, CachePolicy.memory(50))

    redis = RedisWorkload(nrecords=768_000, threads=2)   # ~768 MB anon WSS
    web = WebserverWorkload(nfiles=8000, threads=2)       # ~1.2 GB fileset
    redis.start(redis_c, ctx.streams)
    web.start(web_c, ctx.streams)

    ctx.run(until=WARMUP)
    redis_snap = redis.snapshot()
    web_snap = web.snapshot()
    ctx.run(until=WARMUP + MEASURE)

    return {
        "redis_ops": redis.snapshot().rates_since(redis_snap)["ops_per_s"],
        "web_ops": web.snapshot().rates_since(web_snap)["ops_per_s"],
        "redis_swap_mb": redis_c.swap_out_mb,
        "web_hv_mb": web_c.hvcache_mb,
    }


def main() -> None:
    print("running cache-only (centralized) strategy...")
    central = run_strategy(cooperative=False)
    print("running cooperative (DoubleDecker) strategy...")
    coop = run_strategy(cooperative=True)

    print(f"\n{'metric':22s} {'cache-only':>12s} {'cooperative':>12s}")
    rows = [
        ("redis ops/s", "redis_ops"),
        ("webserver ops/s", "web_ops"),
        ("redis swap-out (MB)", "redis_swap_mb"),
        ("web hv-cache (MB)", "web_hv_mb"),
    ]
    for label, key in rows:
        print(f"{label:22s} {central[key]:12.1f} {coop[key]:12.1f}")

    gain = coop["redis_ops"] / max(1.0, central["redis_ops"])
    print(f"\ncooperative provisioning improved Redis by {gain:.1f}x "
          f"while keeping the webserver served from the hypervisor cache.")


if __name__ == "__main__":
    main()
