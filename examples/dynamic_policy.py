#!/usr/bin/env python3
"""Live policy reconfiguration (the paper's §5.3 capabilities).

Starts two containers at weights 60/40, hot-plugs a videoserver container
mid-run (weights become 50/30/20), then dynamically moves the video
container to the SSD store and restores 60/40 — all without restarting
anything.  Prints an ASCII chart of the cache occupancy over time, the
simulated analogue of the paper's Figure 12.

Run:  python examples/dynamic_policy.py
"""

from repro import CachePolicy, DDConfig, SimContext, StoreKind
from repro.experiments import OccupancySampler
from repro.metrics import ascii_plot
from repro.workloads import (
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)

PHASE = 200.0  # seconds per phase


def main() -> None:
    ctx = SimContext(seed=21)
    host = ctx.create_host()
    cache = host.install_doubledecker(
        DDConfig(mem_capacity_mb=512, ssd_capacity_mb=65536)
    )
    vm = host.create_vm("vm1", memory_mb=4096, vcpus=8)

    c1 = vm.create_container("web", 512, CachePolicy.memory(60))
    c2 = vm.create_container("proxy", 512, CachePolicy.memory(40))
    WebserverWorkload(nfiles=8000, threads=2).start(c1, ctx.streams)
    WebproxyWorkload(nfiles=8000, threads=2).start(c2, ctx.streams)

    sampler = OccupancySampler(ctx, interval_s=5.0)
    sampler.watch_pool(cache, "web(mem)", c1.pool_id, StoreKind.MEMORY)
    sampler.watch_pool(cache, "proxy(mem)", c2.pool_id, StoreKind.MEMORY)
    sampler.start()

    def orchestrator(env):
        yield env.timeout(PHASE)
        print(f"[t={env.now:.0f}] booting video container; weights -> 50/30/20")
        c3 = vm.create_container("video", 512, CachePolicy.memory(20))
        VideoserverWorkload(nvideos=6, video_mb=128, threads=2,
                            stream_pace_ms=2.0).start(c3, ctx.streams)
        sampler.watch_pool(cache, "video(mem)", c3.pool_id, StoreKind.MEMORY)
        sampler.watch_pool(cache, "video(ssd)", c3.pool_id, StoreKind.SSD)
        c1.set_cache_policy(CachePolicy.memory(50))
        c2.set_cache_policy(CachePolicy.memory(30))

        yield env.timeout(PHASE)
        print(f"[t={env.now:.0f}] moving video to SSD; weights -> 60/40")
        c3.set_cache_policy(CachePolicy.ssd(100))
        c1.set_cache_policy(CachePolicy.memory(60))
        c2.set_cache_policy(CachePolicy.memory(40))

    ctx.env.process(orchestrator(ctx.env), name="orchestrator")
    print(f"running 3 phases of {PHASE:.0f}s...")
    ctx.run(until=3 * PHASE)

    print()
    print(ascii_plot(sampler.series, width=72, height=14,
                     title="hypervisor-cache occupancy (MB)"))


if __name__ == "__main__":
    main()
