#!/usr/bin/env python3
"""Quickstart: a DoubleDecker cache protecting two containers in one VM.

Boots a host with a 512 MB DoubleDecker memory cache, one 2 GB VM, and
two containers running a webserver and a mail workload whose datasets
exceed their cgroup limits.  Prints per-container throughput and the
hypervisor-cache statistics the in-VM policy controller would see via
GET_STATS.

Run:  python examples/quickstart.py
"""

from repro import CachePolicy, DDConfig, SimContext
from repro.workloads import VarmailWorkload, WebserverWorkload


def main() -> None:
    ctx = SimContext(seed=42)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=512))

    vm = host.create_vm("vm1", memory_mb=2048, vcpus=4)
    # <T, W> policies: webserver gets 60% of the VM's memory-store share,
    # mail 40%.
    web = vm.create_container("web", 512, CachePolicy.memory(60))
    mail = vm.create_container("mail", 512, CachePolicy.memory(40))

    web_wl = WebserverWorkload(nfiles=6000, mean_size_kb=128, threads=2)
    mail_wl = VarmailWorkload(nfiles=8000, mean_size_kb=32, threads=2)
    web_wl.start(web, ctx.streams)
    mail_wl.start(mail, ctx.streams)

    print("warming up (120 simulated seconds)...")
    ctx.run(until=120)
    snaps = {w.name: w.snapshot() for w in (web_wl, mail_wl)}

    print("measuring (180 simulated seconds)...")
    ctx.run(until=300)

    for workload, container in ((web_wl, web), (mail_wl, mail)):
        rates = workload.snapshot().rates_since(snaps[workload.name])
        stats = container.cache_stats()
        print(f"\n== {workload.name} ==")
        print(f"  throughput : {rates['ops_per_s']:8.1f} ops/s "
              f"({rates['mb_per_s']:.1f} MB/s)")
        print(f"  latency    : {rates['mean_latency_ms']:8.2f} ms/op")
        print(f"  in-VM mem  : {container.file_mb + container.anon_mb:8.1f} MB "
              f"(limit {container.cgroup.limit_blocks * container.vm.block_bytes >> 20} MB)")
        print(f"  hv cache   : {container.hvcache_mb:8.1f} MB "
              f"(entitled {stats.mem_entitlement_blocks * container.vm.block_bytes >> 20} MB)")
        print(f"  2nd-chance : {100 * stats.hit_ratio:5.1f}% hit ratio, "
              f"{stats.evictions} evictions")


if __name__ == "__main__":
    main()
