"""Write-aware admission controllers for SSD-backed cache pools.

An unrestricted second-chance cache turns every eviction from guest RAM
into an SSD program — including blocks that will never be read again.
ECI-Cache and ETICA both show that the fix is an *admission* decision in
front of the flash store, not a smarter eviction behind it.  This module
supplies that decision point as a small pluggable interface consulted by
``DoubleDeckerCache.put_many`` (and the trickle-down path) before a key
enters an SSD-backed pool:

* :class:`AdmitAll` — today's behavior, every put is admitted.  Useful
  as the counted baseline: the data path is byte-identical to running
  with no controller at all, only the attempt/admit counters move.
* :class:`SecondAccessAdmit` — a ghost FIFO of recently *rejected* keys.
  The first put of a key is rejected and remembered; a re-put while the
  key is still in the ghost is admitted.  One-touch blocks never reach
  flash; anything with reuse pays one extra miss.
* :class:`WriteRateThrottle` — a token bucket over device bytes written.
  Puts are admitted while the pool stays under its write budget
  (``rate_bytes_s`` with ``burst_bytes`` of slack) and rejected when the
  bucket runs dry, bounding wear per unit time rather than per block.

Controllers are deterministic and per-pool; each keeps its own
``attempts == admitted + rejected`` ledger, which the shadow-accounting
auditor checks (see ``repro.core.audit``).  Selection is by name via
``CachePolicy.admission``, ``DDConfig.admission``, or the process-wide
default installed by :func:`set_default_admission` (the CLI's
``--admission`` flag), in that precedence order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = [
    "AdmissionController",
    "AdmitAll",
    "SecondAccessAdmit",
    "WriteRateThrottle",
    "ADMISSION_POLICIES",
    "make_admission",
    "set_default_admission",
    "default_admission",
]

_MB = 1024 * 1024

#: Valid names for the ``admission=`` knobs, in sweep order.
ADMISSION_POLICIES = ("admit_all", "second_access", "write_throttle")


class AdmissionController:
    """Decision point in front of an SSD-backed pool.

    ``admit(key, now)`` returns True to let the put proceed and keeps the
    attempt ledger; ``now`` is the simulation clock (seconds), used only
    by time-based policies.
    """

    __slots__ = ("attempts", "admitted", "rejected")

    #: Registry name; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self.attempts = 0
        self.admitted = 0
        self.rejected = 0

    def admit(self, key, now: float) -> bool:
        raise NotImplementedError

    def as_dict(self) -> dict:
        return {
            "policy": self.name,
            "attempts": self.attempts,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


class AdmitAll(AdmissionController):
    """Admit every put (the pre-endurance behavior, with counters)."""

    __slots__ = ()
    name = "admit_all"

    def admit(self, key, now: float) -> bool:
        self.attempts += 1
        self.admitted += 1
        return True


class SecondAccessAdmit(AdmissionController):
    """Admit a key only on its second put while it sits in a ghost FIFO.

    The ghost holds *rejected* keys only (metadata, no data blocks); its
    size is expressed in blocks and defaults to the SSD store capacity so
    a key's second chance lasts about as long as a cache residency would.
    """

    __slots__ = ("ghost_blocks", "_ghost")
    name = "second_access"

    def __init__(self, ghost_blocks: int) -> None:
        super().__init__()
        if ghost_blocks <= 0:
            raise ValueError(f"ghost_blocks must be positive, got {ghost_blocks}")
        self.ghost_blocks = ghost_blocks
        self._ghost: "OrderedDict" = OrderedDict()

    def admit(self, key, now: float) -> bool:
        self.attempts += 1
        ghost = self._ghost
        if ghost.pop(key, None) is not None:
            self.admitted += 1
            return True
        ghost[key] = True
        if len(ghost) > self.ghost_blocks:
            ghost.popitem(last=False)
        self.rejected += 1
        return False

    def ghost_len(self) -> int:
        return len(self._ghost)


class WriteRateThrottle(AdmissionController):
    """Token bucket over SSD bytes written: admit while under budget.

    The bucket starts full (``burst_bytes``) and refills at
    ``rate_bytes_s``; each admitted put consumes one cache block of
    tokens.  Integer token arithmetic is avoided on purpose — refill is
    exact in float seconds, so results are reproducible across runs.
    """

    __slots__ = ("rate_bytes_s", "burst_bytes", "block_bytes",
                 "_tokens", "_last_refill")
    name = "write_throttle"

    def __init__(self, rate_bytes_s: float, burst_bytes: float, block_bytes: int) -> None:
        super().__init__()
        if rate_bytes_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_s}")
        if burst_bytes < block_bytes:
            raise ValueError(
                f"burst ({burst_bytes}) must cover one block ({block_bytes})"
            )
        self.rate_bytes_s = rate_bytes_s
        self.burst_bytes = burst_bytes
        self.block_bytes = block_bytes
        self._tokens = burst_bytes
        self._last_refill = 0.0

    def admit(self, key, now: float) -> bool:
        self.attempts += 1
        if now > self._last_refill:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (now - self._last_refill) * self.rate_bytes_s,
            )
            self._last_refill = now
        if self._tokens >= self.block_bytes:
            self._tokens -= self.block_bytes
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def tokens(self) -> float:
        return self._tokens


def make_admission(
    name: Optional[str],
    *,
    block_bytes: int,
    ssd_capacity_blocks: int,
    ghost_mb: float = 0.0,
    write_mb_s: float = 8.0,
    burst_mb: float = 64.0,
) -> Optional[AdmissionController]:
    """Build a controller by registry name; ``None``/empty means disabled.

    ``ghost_mb == 0`` auto-sizes the second-access ghost to the SSD store
    capacity.  Raises ``ValueError`` for unknown names so config typos
    fail loudly instead of silently admitting everything.
    """
    if not name:
        return None
    if name == "admit_all":
        return AdmitAll()
    if name == "second_access":
        if ghost_mb > 0:
            ghost_blocks = max(1, int(ghost_mb * _MB) // block_bytes)
        else:
            ghost_blocks = max(1, ssd_capacity_blocks)
        return SecondAccessAdmit(ghost_blocks)
    if name == "write_throttle":
        return WriteRateThrottle(
            rate_bytes_s=write_mb_s * _MB,
            burst_bytes=burst_mb * _MB,
            block_bytes=block_bytes,
        )
    raise ValueError(
        f"unknown admission policy {name!r}; expected one of {ADMISSION_POLICIES}"
    )


#: Process-wide default admission policy name (CLI ``--admission`` flag).
_DEFAULT_ADMISSION: Optional[str] = None


def set_default_admission(name: Optional[str]) -> None:
    """Install a process-wide default admission policy by name.

    Mirrors ``set_audit_interval``: per-policy (``CachePolicy.admission``)
    and per-cache (``DDConfig.admission``) settings take precedence; the
    default applies to caches created while it is set.  ``None`` restores
    the strict no-op behavior.
    """
    global _DEFAULT_ADMISSION
    if name is not None and name not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {name!r}; expected one of {ADMISSION_POLICIES}"
        )
    _DEFAULT_ADMISSION = name


def default_admission() -> Optional[str]:
    """The process-wide default admission policy name (``None`` = off)."""
    return _DEFAULT_ADMISSION
