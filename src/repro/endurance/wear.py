"""SSD wear model: P/E-cycle budget, write amplification, erase accounting.

A flash device does not fail from reads; it fails from *program/erase
cycles*.  Every host write eventually costs flash programs, and garbage
collection multiplies that cost by the write-amplification factor (WAF).
The model here is deliberately counter-based — it converts the device's
cumulative host bytes written into erase-block P/E consumption and a
projected lifetime, without simulating an FTL:

* ``host_bytes_written`` — bytes the host pushed at the device (ground
  truth, charged at write completion alongside ``DeviceStats``).
* ``flash_bytes_written = host_bytes_written * waf`` — bytes the flash
  actually programmed; ``waf`` is a calibration knob (1.0 = no GC
  overhead, the right default for a mostly-sequential cache-fill
  workload; measured devices under random writes sit at 1.1-3+).
* ``erases_consumed = flash_bytes_written / erase_block_bytes`` — each
  erase block programmed end-to-end costs one P/E cycle.
* ``pe_budget = (capacity / erase_block) * pe_cycles`` — total erases the
  device is rated for.

``wear_fraction`` and :meth:`projected_lifetime_s` follow directly; both
are what the endurance experiment and the metrics gauges report.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["WearModel"]

_KB = 1024
_MB = 1024 * 1024
_GB = 1024 * 1024 * 1024


class WearModel:
    """Cumulative endurance accounting for one flash device."""

    __slots__ = ("block_bytes", "capacity_bytes", "pe_cycles",
                 "erase_block_bytes", "waf", "host_bytes_written")

    def __init__(
        self,
        block_bytes: int,
        capacity_bytes: int,
        pe_cycles: int = 3000,
        erase_block_kb: float = 2048.0,
        waf: float = 1.0,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if pe_cycles <= 0:
            raise ValueError(f"pe_cycles must be positive, got {pe_cycles}")
        if erase_block_kb <= 0:
            raise ValueError(f"erase block must be positive, got {erase_block_kb}")
        if waf < 1.0:
            raise ValueError(f"write amplification cannot be < 1, got {waf}")
        self.block_bytes = block_bytes
        self.capacity_bytes = capacity_bytes
        self.pe_cycles = pe_cycles
        self.erase_block_bytes = int(erase_block_kb * _KB)
        self.waf = waf
        self.host_bytes_written = 0

    # -- accounting (hot path: one call per coalesced device write) -------

    def record_write(self, nblocks: int) -> None:
        """Charge ``nblocks`` of host writes against the endurance budget."""
        self.host_bytes_written += nblocks * self.block_bytes

    # -- derived quantities ------------------------------------------------

    @property
    def flash_bytes_written(self) -> float:
        """Bytes the flash actually programmed (host writes x WAF)."""
        return self.host_bytes_written * self.waf

    @property
    def erases_consumed(self) -> float:
        """P/E cycles consumed so far (fractional: partial blocks count)."""
        return self.flash_bytes_written / self.erase_block_bytes

    @property
    def pe_budget(self) -> float:
        """Total erase operations the device is rated for."""
        return (self.capacity_bytes / self.erase_block_bytes) * self.pe_cycles

    @property
    def endurance_bytes(self) -> float:
        """Host bytes writable over the whole device life (TBW-style)."""
        return self.pe_budget * self.erase_block_bytes / self.waf

    @property
    def wear_fraction(self) -> float:
        """Fraction of the P/E budget consumed (0.0 = new, 1.0 = worn out)."""
        return self.erases_consumed / self.pe_budget

    def projected_lifetime_s(self, elapsed_s: float) -> Optional[float]:
        """Seconds until the budget runs out at the observed write rate.

        Returns ``None`` when nothing was written yet (infinite lifetime)
        or when no time has elapsed (rate undefined).
        """
        if elapsed_s <= 0 or self.host_bytes_written <= 0:
            return None
        rate = self.host_bytes_written / elapsed_s
        remaining = self.endurance_bytes - self.host_bytes_written
        return max(0.0, remaining / rate)

    def as_dict(self, elapsed_s: float = 0.0) -> dict:
        lifetime = self.projected_lifetime_s(elapsed_s)
        return {
            "host_gb_written": self.host_bytes_written / _GB,
            "flash_gb_written": self.flash_bytes_written / _GB,
            "waf": self.waf,
            "erases_consumed": self.erases_consumed,
            "pe_budget": self.pe_budget,
            "wear_pct": 100.0 * self.wear_fraction,
            "projected_lifetime_s": lifetime,
        }
