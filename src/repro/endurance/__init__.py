"""SSD endurance modeling and write-aware cache admission.

The subsystem has three parts, all deterministic and dependency-free so
the rest of the tree can import them without cycles:

* :mod:`repro.endurance.wear` — per-device P/E-cycle accounting
  (:class:`WearModel`), attached to every ``SSD`` block device and
  charged at write completion alongside ``DeviceStats``.
* :mod:`repro.endurance.admission` — pluggable admission controllers
  (:class:`AdmitAll`, :class:`SecondAccessAdmit`,
  :class:`WriteRateThrottle`) consulted by ``DoubleDeckerCache`` before
  a block enters an SSD-backed pool.
* :mod:`repro.endurance.report` — shared report math (projected
  lifetime, hit-rate-per-GB-written) used by metrics and the
  ``endurance`` experiment.
"""

from .admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmitAll,
    SecondAccessAdmit,
    WriteRateThrottle,
    default_admission,
    make_admission,
    set_default_admission,
)
from .report import endurance_summary, format_lifetime, hits_per_gb_written
from .wear import WearModel

__all__ = [
    "WearModel",
    "AdmissionController",
    "AdmitAll",
    "SecondAccessAdmit",
    "WriteRateThrottle",
    "ADMISSION_POLICIES",
    "make_admission",
    "set_default_admission",
    "default_admission",
    "endurance_summary",
    "format_lifetime",
    "hits_per_gb_written",
]
