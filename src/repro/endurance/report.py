"""Endurance reporting helpers shared by metrics and experiments.

Turns raw wear counters into the quantities the endurance experiment
tabulates: device bytes written, WAF, projected lifetime, and the
efficiency figure the admission sweep optimizes for — *hit rate per GB
written* (how many cache hits each gigabyte of flash wear buys).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["hits_per_gb_written", "format_lifetime", "endurance_summary"]

_GB = 1024 * 1024 * 1024
_DAY_S = 86400.0
_YEAR_S = 365.0 * _DAY_S


def hits_per_gb_written(hits: int, host_bytes_written: int) -> Optional[float]:
    """Cache hits bought per GB of host writes; ``None`` when nothing written."""
    if host_bytes_written <= 0:
        return None
    return hits / (host_bytes_written / _GB)


def format_lifetime(lifetime_s: Optional[float]) -> str:
    """Human-scale rendering of a projected lifetime in seconds."""
    if lifetime_s is None:
        return "inf"
    if lifetime_s >= _YEAR_S:
        return f"{lifetime_s / _YEAR_S:.1f}y"
    if lifetime_s >= _DAY_S:
        return f"{lifetime_s / _DAY_S:.1f}d"
    if lifetime_s >= 3600.0:
        return f"{lifetime_s / 3600.0:.1f}h"
    return f"{lifetime_s:.0f}s"


def endurance_summary(wear, elapsed_s: float, hits: int = 0) -> dict:
    """One device's endurance picture as a flat dict of report fields.

    ``wear`` is a :class:`repro.endurance.WearModel`; ``hits`` (optional)
    adds the hit-rate-per-GB-written efficiency column.
    """
    lifetime = wear.projected_lifetime_s(elapsed_s)
    return {
        "ssd_gb_written": wear.host_bytes_written / _GB,
        "flash_gb_written": wear.flash_bytes_written / _GB,
        "waf": wear.waf,
        "wear_pct": 100.0 * wear.wear_fraction,
        "projected_lifetime_s": lifetime,
        "projected_lifetime": format_lifetime(lifetime),
        "hits_per_gb": hits_per_gb_written(hits, wear.host_bytes_written),
    }
