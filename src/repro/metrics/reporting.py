"""Plain-text reporting helpers: aligned tables and ASCII series plots.

The benchmark harness uses these to print the same rows/series the paper's
tables and figures report, without any plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .timeseries import TimeSeries

__all__ = ["format_table", "ascii_plot", "format_series_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered:
        for idx, cell in enumerate(cells):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[idx]) if idx < len(widths) else cell
            for idx, cell in enumerate(cells)
        ]
        return "| " + " | ".join(padded) + " |"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for cells in rendered:
        lines.append(fmt_row(cells))
    return "\n".join(lines)


def ascii_plot(
    series: Dict[str, TimeSeries],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """A crude multi-series ASCII line chart (one symbol per series)."""
    symbols = "*o+x#@%&"
    points = [(name, ts) for name, ts in series.items() if len(ts)]
    if not points:
        return (title or "") + "\n(no data)"

    t_min = min(ts.times[0] for _, ts in points)
    t_max = max(ts.times[-1] for _, ts in points)
    v_min = 0.0
    v_max = max(max(ts.values) for _, ts in points)
    if v_max <= v_min:
        v_max = v_min + 1.0
    if t_max <= t_min:
        t_max = t_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ts) in enumerate(points):
        symbol = symbols[idx % len(symbols)]
        for t, v in ts:
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = height - 1 - int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[row][col] = symbol

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{v_max:>10.1f} ┤" )
    for row in grid:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{v_min:>10.1f} └" + "─" * width)
    lines.append(" " * 12 + f"{t_min:<.0f}{'':{max(1, width - 16)}}{t_max:>8.0f}  (time, s)")
    legend = "   ".join(
        f"{symbols[idx % len(symbols)]} {name}" for idx, (name, _) in enumerate(points)
    )
    lines.append("  legend: " + legend)
    return "\n".join(lines)


def format_series_csv(series: Dict[str, TimeSeries], step: float = 10.0) -> str:
    """Resample series onto a common grid and emit CSV text."""
    if not series:
        return ""
    names = sorted(series)
    end = max((ts.times[-1] for ts in series.values() if len(ts)), default=0.0)
    lines = ["time," + ",".join(names)]
    t = 0.0
    while t <= end:
        row = [f"{t:.0f}"]
        for name in names:
            value = series[name].value_at(t)
            row.append("" if value is None else f"{value:.2f}")
        lines.append(",".join(row))
        t += step
    return "\n".join(lines)
