"""Prometheus text exposition (format 0.0.4) for :class:`MetricsRegistry`.

One renderer serves every consumer: the live service's ``/metrics``
sidecar, the fleet's per-host export hook, and ad-hoc dumps from tests.
Dotted registry names become sanitized Prometheus names under a common
prefix (``service.lat.get`` -> ``dd_service_lat_get``), counters gain
the conventional ``_total`` suffix, and log-bucketed
:class:`~repro.metrics.timeseries.Histogram`\\ s render as cumulative
``le`` buckets closed by ``+Inf`` (from
:meth:`Histogram.cumulative_buckets`), plus ``_sum``/``_count``.

:func:`check_exposition` is the format validator CI runs against a
scraped ``/metrics`` body — line grammar, label escaping, ``TYPE``
placement, duplicate samples, and the histogram invariants (cumulative
non-decreasing buckets, ``+Inf`` present and equal to ``_count``).  It
is also the module's CLI::

    python -m repro.metrics.exposition metrics.prom
"""

from __future__ import annotations

import math
import re
import sys
from typing import Dict, Iterable, List, Optional, Tuple

from .timeseries import Histogram

__all__ = [
    "MetricFamily",
    "sanitize_metric_name",
    "sanitize_label_name",
    "escape_label_value",
    "format_value",
    "histogram_family",
    "registry_families",
    "render_families",
    "render_registry",
    "check_exposition",
]

#: Metric kinds the renderer emits and the checker accepts.
METRIC_KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_BAD_NAME_CHAR_RE = re.compile(r"[^a-zA-Z0-9_:]")
_BAD_LABEL_CHAR_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(dotted: str) -> str:
    """A valid Prometheus metric name for a dotted registry name."""
    name = _BAD_NAME_CHAR_RE.sub("_", dotted)
    if not name or not _NAME_OK_RE.match(name):
        name = "_" + name
    return name


def sanitize_label_name(raw: str) -> str:
    """A valid Prometheus label name (colons are not allowed here)."""
    name = _BAD_LABEL_CHAR_RE.sub("_", raw)
    if not name or not _LABEL_OK_RE.match(name):
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition grammar."""
    return (value.replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def format_value(value: float) -> str:
    """A sample value: integers stay integral, ``inf`` spells ``+Inf``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricFamily:
    """One named metric plus its samples (possibly many label sets)."""

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        if kind not in METRIC_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        #: ``(suffix, labels, value)`` triples; suffix is appended to the
        #: family name ("_bucket", "_sum", "_count", or "").
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(self, value: float, labels: Optional[Dict[str, str]] = None,
            suffix: str = "") -> None:
        self.samples.append((suffix, dict(labels or {}), value))


def histogram_family(name: str, hist: Histogram,
                     labels: Optional[Dict[str, str]] = None,
                     help: str = "") -> MetricFamily:
    """Render one log-bucketed histogram as a Prometheus histogram."""
    family = MetricFamily(name, "histogram", help=help)
    base = dict(labels or {})
    for bound, cumulative in hist.cumulative_buckets():
        le = dict(base)
        le["le"] = format_value(bound)
        family.add(float(cumulative), labels=le, suffix="_bucket")
    family.add(hist.total, labels=base, suffix="_sum")
    family.add(float(hist.count), labels=base, suffix="_count")
    return family


def registry_families(registry, prefix: str = "dd",
                      labels: Optional[Dict[str, str]] = None
                      ) -> List[MetricFamily]:
    """Every metric of a :class:`MetricsRegistry` as exposition families.

    Counters render as ``<prefix>_<name>_total`` counters, series as
    gauges holding their last sample, summaries as quantile gauges, and
    histograms as full bucket sets.  ``labels`` (e.g. a fleet's
    ``{"host": "host2"}``) are attached to every sample, which is what
    lets several hosts' registries merge into one scrape body.
    """
    base = {sanitize_label_name(k): str(v)
            for k, v in sorted((labels or {}).items())}
    families: List[MetricFamily] = []

    for name in sorted(registry.counters()):
        family = MetricFamily(
            f"{prefix}_{sanitize_metric_name(name)}_total", "counter")
        family.add(registry.counter(name), labels=base)
        families.append(family)

    for name, series in sorted(registry.all_series().items()):
        if series.last is None:
            continue
        family = MetricFamily(
            f"{prefix}_{sanitize_metric_name(name)}", "gauge")
        family.add(series.last, labels=base)
        families.append(family)

    for name, stat in sorted(registry._summaries.items()):
        family = MetricFamily(
            f"{prefix}_{sanitize_metric_name(name)}", "summary")
        for q in (0.5, 0.9, 0.99):
            q_labels = dict(base)
            q_labels["quantile"] = format_value(q)
            family.add(stat.quantile(q), labels=q_labels)
        family.add(stat.total, labels=base, suffix="_sum")
        family.add(float(stat.count), labels=base, suffix="_count")
        families.append(family)

    for name, hist in sorted(registry.histograms().items()):
        families.append(histogram_family(
            f"{prefix}_{sanitize_metric_name(name)}", hist, labels=base))

    return families


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [f'{sanitize_label_name(k)}="{escape_label_value(str(v))}"'
             for k, v in labels.items()]
    return "{" + ",".join(parts) + "}"


def render_families(families: Iterable[MetricFamily]) -> str:
    """The exposition body: families merged by name, ``TYPE`` once each.

    Same-named families (one per host, say) must agree on kind; their
    samples concatenate under a single ``TYPE`` header, as the format
    requires.  Output is deterministic: families sort by name, samples
    keep insertion order within a family.
    """
    merged: Dict[str, MetricFamily] = {}
    for family in families:
        existing = merged.get(family.name)
        if existing is None:
            merged[family.name] = combined = MetricFamily(
                family.name, family.kind, help=family.help)
            combined.samples.extend(family.samples)
            continue
        if existing.kind != family.kind:
            raise ValueError(
                f"family {family.name!r} rendered as both "
                f"{existing.kind} and {family.kind}")
        existing.samples.extend(family.samples)

    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        if not _NAME_OK_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        if family.help:
            text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for suffix, labels, value in family.samples:
            lines.append(
                f"{family.name}{suffix}{_labels_text(labels)} "
                f"{format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def render_registry(registry, prefix: str = "dd",
                    labels: Optional[Dict[str, str]] = None) -> str:
    """Shorthand: one registry straight to exposition text."""
    return render_families(registry_families(registry, prefix=prefix,
                                             labels=labels))


# ----------------------------------------------------------------------
# Format checker (the CI gate for scraped /metrics bodies)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"((?:[^"\\]|\\.)*)"\s*(,|$)'
)

#: Suffixes that belong to the base family declared by ``# TYPE``.
_FAMILY_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def _base_family(name: str, types: Dict[str, str]) -> str:
    """The declared family a sample name belongs to."""
    if name in types:
        return name
    for suffix in _FAMILY_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def _parse_labels(text: str) -> Optional[Dict[str, str]]:
    """Label pairs from the text between braces, or ``None`` if malformed."""
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(text):
        match = _LABEL_PAIR_RE.match(text, pos)
        if match is None:
            return None
        labels[match.group(1)] = match.group(2)
        pos = match.end()
    return labels


def _parse_value(raw: str) -> Optional[float]:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def check_exposition(text: str) -> List[str]:
    """Validate an exposition body; returns problem strings (empty = ok)."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen_samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    #: (family, frozen non-le labels) -> [(le_bound, cumulative)]
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in METRIC_KINDS:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            name = parts[2]
            if name in types:
                problems.append(
                    f"line {lineno}: duplicate TYPE for {name}")
            types[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and free comments
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample line")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        if labels is None:
            problems.append(f"line {lineno}: malformed labels on {name}")
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(
                f"line {lineno}: bad value {match.group('value')!r}")
            continue
        family = _base_family(name, types)
        if family in types:
            # Typed samples must appear after their TYPE line, which the
            # linear scan guarantees by construction of `types`.
            pass
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            problems.append(
                f"line {lineno}: duplicate sample {name} "
                f"(first at line {seen_samples[key]})")
        else:
            seen_samples[key] = lineno
        if types.get(family) == "histogram":
            bare = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            if name == family + "_bucket":
                le = _parse_value(labels.get("le", ""))
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without a "
                        f"parseable le label")
                    continue
                buckets.setdefault((family, bare), []).append((le, value))
            elif name == family + "_count":
                counts[(family, bare)] = value

    for (family, bare), entries in sorted(buckets.items()):
        where = f"histogram {family}{dict(bare) if bare else ''}"
        bounds = [le for le, _ in entries]
        if bounds != sorted(bounds):
            problems.append(f"{where}: le bounds out of order")
        cumulatives = [c for _, c in entries]
        if any(b > a for a, b in zip(cumulatives[1:], cumulatives)):
            problems.append(f"{where}: bucket counts not cumulative")
        if not entries or entries[-1][0] != math.inf:
            problems.append(f"{where}: missing +Inf bucket")
        else:
            count = counts.get((family, bare))
            if count is None:
                problems.append(f"{where}: missing _count sample")
            elif entries[-1][1] != count:
                problems.append(
                    f"{where}: +Inf bucket {entries[-1][1]} != _count "
                    f"{count}")
    return problems


def main(argv=None) -> int:
    """CLI: validate one exposition file (``-`` reads stdin)."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1:
        print("usage: python -m repro.metrics.exposition <file|->",
              file=sys.stderr)
        return 2
    text = sys.stdin.read() if args[0] == "-" else open(args[0]).read()
    problems = check_exposition(text)
    if problems:
        print(f"{args[0]}: INVALID exposition")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    samples = sum(1 for line in text.splitlines()
                  if line.strip() and not line.startswith("#"))
    print(f"{args[0]}: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
