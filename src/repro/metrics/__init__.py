"""Metrics collection and reporting for simulation experiments."""

from .collector import MetricsRegistry, Sampler
from .reporting import ascii_plot, format_series_csv, format_table
from .timeseries import Histogram, SummaryStat, TimeSeries

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Sampler",
    "SummaryStat",
    "TimeSeries",
    "ascii_plot",
    "format_series_csv",
    "format_table",
]
