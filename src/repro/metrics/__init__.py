"""Metrics collection and reporting for simulation experiments."""

from .collector import MetricsRegistry, Sampler
from .exposition import (
    MetricFamily,
    check_exposition,
    registry_families,
    render_families,
    render_registry,
)
from .reporting import ascii_plot, format_series_csv, format_table
from .timeseries import Histogram, SummaryStat, TimeSeries

__all__ = [
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sampler",
    "SummaryStat",
    "TimeSeries",
    "ascii_plot",
    "check_exposition",
    "format_series_csv",
    "format_table",
    "registry_families",
    "render_families",
    "render_registry",
]
