"""Time-series and summary-statistics containers used across the simulator."""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Tuple

__all__ = ["TimeSeries", "SummaryStat", "Histogram"]


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Times must be non-decreasing (samplers append in simulation order).
    Provides the handful of reductions the experiment harness needs:
    means over windows, final values, and resampling for plotting/tables.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample at ``time``."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` if empty."""
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """Value of the latest sample at or before ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else None

    def mean(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Arithmetic mean of samples with ``start <= t <= end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        window = self.values[lo:hi]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def max(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Maximum of samples with ``start <= t <= end`` (0.0 if none)."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        window = self.values[lo:hi]
        return max(window) if window else 0.0

    def resample(self, step: float, end: Optional[float] = None) -> "TimeSeries":
        """Piecewise-constant resampling at a fixed ``step`` (for plots)."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        stop = end if end is not None else self.times[-1]
        t = self.times[0]
        while t <= stop:
            value = self.value_at(t)
            out.record(t, value if value is not None else 0.0)
            t += step
        return out


class SummaryStat:
    """Streaming summary of a scalar sample set (latencies, sizes, ...).

    Keeps count/sum/min/max plus a bounded reservoir for approximate
    percentiles, so memory stays constant regardless of op counts.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir",
                 "_reservoir_size", "_rng_state")

    def __init__(self, name: str = "", reservoir_size: int = 2048) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        # Cheap deterministic LCG for reservoir sampling; avoids entangling
        # metrics with the simulation's RNG streams.
        self._rng_state = 0x2545F4914F6CDD1D

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            slot = self._rng_state % self.count
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (q in [0, 100])."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return self.quantile(q / 100.0)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (q in [0, 1]), linearly interpolated.

        Edge cases: an empty summary reports 0.0 (there is nothing to
        estimate, and callers tabulate rather than branch); a single
        sample is every quantile of itself.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self._reservoir)
        n = len(ordered)
        if n == 0:
            return 0.0
        if n == 1:
            return ordered[0]
        position = q * (n - 1)
        lo = int(position)
        if lo >= n - 1:
            return ordered[-1]
        frac = position - lo
        return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac

    def merge(self, other: "SummaryStat") -> None:
        """Fold another summary into this one (reservoirs concatenated)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        room = self._reservoir_size - len(self._reservoir)
        if room > 0:
            self._reservoir.extend(other._reservoir[:room])


class Histogram:
    """Log-bucketed histogram for latency-style samples.

    Buckets grow geometrically (``growth`` per bucket, ~4 buckets per
    doubling at the default), so quantile estimates carry a bounded
    *relative* error across nine decades while memory stays a small
    sparse dict.  Unlike :class:`SummaryStat`'s sampled reservoir, every
    sample lands in a bucket, so tail quantiles (p99.9) stay stable for
    arbitrarily long runs.

    Values at or below ``lo`` share the underflow bucket 0 (with the
    default ``lo`` of 0.1 microseconds that is "instantaneous" for the
    simulator's latencies).

    The default buckets assume simulated-tick magnitudes (seconds); raw
    ``time.perf_counter_ns()`` samples expressed in *seconds* would
    collapse sub-100ns latencies into the underflow bucket.  Wall-clock
    users should record integer nanoseconds into a histogram built by
    :meth:`wallclock_ns`, whose buckets start at 1 ns.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_counts", "_lo", "_log_growth", "_growth")

    def __init__(self, name: str = "", lo: float = 1e-7,
                 growth: float = 2.0 ** 0.25) -> None:
        if lo <= 0:
            raise ValueError(f"lo must be positive, got {lo}")
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._counts: Dict[int, int] = {}
        self._lo = lo
        self._growth = growth
        self._log_growth = math.log(growth)

    #: Bucket floor for nanosecond-unit histograms: 1 ns, the resolution
    #: of ``time.perf_counter_ns()``.
    WALLCLOCK_NS_LO = 1.0

    @classmethod
    def wallclock_ns(cls, name: str = "",
                     growth: float = 2.0 ** 0.25) -> "Histogram":
        """A histogram tuned for wall-clock samples in integer nanoseconds.

        Buckets start at 1 ns instead of the simulated-second default, so
        real service latencies (hundreds of ns and up) keep the same
        bounded relative error rather than collapsing into underflow.
        Record ``time.perf_counter_ns()`` deltas directly — no conversion
        to seconds, no float rounding of large tick counts.
        """
        return cls(name, lo=cls.WALLCLOCK_NS_LO, growth=growth)

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self._lo:
            idx = 0
        else:
            idx = 1 + int(math.log(value / self._lo) / self._log_growth)
        self._counts[idx] = self._counts.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def _bucket_bounds(self, idx: int) -> Tuple[float, float]:
        """The value range bucket ``idx`` covers."""
        if idx == 0:
            return (0.0, self._lo)
        return (self._lo * self._growth ** (idx - 1),
                self._lo * self._growth ** idx)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (q in [0, 1]), interpolated within a bucket.

        Clamped to the observed ``[min, max]`` so the bucket rounding can
        never report a value outside the recorded sample range.  Empty
        histograms report 0.0; a single sample is every quantile.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1:
            return self.min
        target = q * self.count
        cumulative = 0
        for idx in sorted(self._counts):
            bucket = self._counts[idx]
            if cumulative + bucket >= target:
                lo, hi = self._bucket_bounds(idx)
                frac = (target - cumulative) / bucket
                value = lo + (hi - lo) * frac
                return min(self.max, max(self.min, value))
            cumulative += bucket
        return self.max

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (p in [0, 100])."""
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs in bound order.

        Only occupied buckets appear (the sparse dict's keys), each paired
        with the count of samples at or below its upper bound, and the
        list always ends with ``(inf, count)`` — exactly the shape a
        Prometheus histogram exposition needs (``le`` buckets must be
        cumulative and non-decreasing, closed by ``+Inf``).
        """
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for idx in sorted(self._counts):
            cumulative += self._counts[idx]
            out.append((self._bucket_bounds(idx)[1], cumulative))
        out.append((math.inf, self.count))
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (bucket-wise addition)."""
        if (other._lo != self._lo) or (other._growth != self._growth):
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, bucket in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + bucket

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "lo": self._lo,
            "growth": self._growth,
            "buckets": {str(idx): n for idx, n in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram snapshotted by :meth:`as_dict`."""
        hist = cls(payload.get("name", ""), lo=payload["lo"],
                   growth=payload["growth"])
        hist.count = int(payload["count"])
        hist.total = float(payload["total"])
        if hist.count:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        hist._counts = {int(idx): int(n)
                        for idx, n in payload.get("buckets", {}).items()}
        return hist
