"""Time-series and summary-statistics containers used across the simulator."""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["TimeSeries", "SummaryStat"]


class TimeSeries:
    """An append-only series of ``(time, value)`` samples.

    Times must be non-decreasing (samplers append in simulation order).
    Provides the handful of reductions the experiment harness needs:
    means over windows, final values, and resampling for plotting/tables.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample at ``time``."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` if empty."""
        return self.values[-1] if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """Value of the latest sample at or before ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else None

    def mean(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Arithmetic mean of samples with ``start <= t <= end``."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        window = self.values[lo:hi]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def max(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        """Maximum of samples with ``start <= t <= end`` (0.0 if none)."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        window = self.values[lo:hi]
        return max(window) if window else 0.0

    def resample(self, step: float, end: Optional[float] = None) -> "TimeSeries":
        """Piecewise-constant resampling at a fixed ``step`` (for plots)."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        stop = end if end is not None else self.times[-1]
        t = self.times[0]
        while t <= stop:
            value = self.value_at(t)
            out.record(t, value if value is not None else 0.0)
            t += step
        return out


class SummaryStat:
    """Streaming summary of a scalar sample set (latencies, sizes, ...).

    Keeps count/sum/min/max plus a bounded reservoir for approximate
    percentiles, so memory stays constant regardless of op counts.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir",
                 "_reservoir_size", "_rng_state")

    def __init__(self, name: str = "", reservoir_size: int = 2048) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        # Cheap deterministic LCG for reservoir sampling; avoids entangling
        # metrics with the simulation's RNG streams.
        self._rng_state = 0x2545F4914F6CDD1D

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            slot = self._rng_state % self.count
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (q in [0, 100])."""
        if not self._reservoir:
            return 0.0
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def merge(self, other: "SummaryStat") -> None:
        """Fold another summary into this one (reservoirs concatenated)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        room = self._reservoir_size - len(self._reservoir)
        if room > 0:
            self._reservoir.extend(other._reservoir[:room])
