"""Central metrics registry plus periodic samplers.

A single :class:`MetricsRegistry` is owned by the simulation context; all
components register counters, gauges, series, and summaries in it under
hierarchical dotted names (``"hvcache.pool.web.used_mb"``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Tuple

from .timeseries import Histogram, SummaryStat, TimeSeries

__all__ = ["MetricsRegistry", "Sampler"]


class MetricsRegistry:
    """Namespace of named metrics.

    All accessors are create-on-first-use, so producers and consumers don't
    need to coordinate registration order.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._summaries: Dict[str, SummaryStat] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters --------------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose names start with ``prefix``."""
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    # -- time series -------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        """The time series ``name`` (created empty on first use)."""
        ts = self._series.get(name)
        if ts is None:
            ts = TimeSeries(name)
            self._series[name] = ts
        return ts

    def record(self, name: str, time: float, value: float) -> None:
        """Append a sample to series ``name``."""
        self.series(name).record(time, value)

    def all_series(self, prefix: str = "") -> Dict[str, TimeSeries]:
        """All series whose names start with ``prefix``."""
        return {
            name: ts for name, ts in self._series.items() if name.startswith(prefix)
        }

    # -- summaries ----------------------------------------------------------------

    def summary(self, name: str) -> SummaryStat:
        """The summary statistic ``name`` (created on first use)."""
        stat = self._summaries.get(name)
        if stat is None:
            stat = SummaryStat(name)
            self._summaries[name] = stat
        return stat

    def observe(self, name: str, value: float) -> None:
        """Record one sample into summary ``name``."""
        self.summary(name).add(value)

    # -- histograms ---------------------------------------------------------------

    def histogram(self, name: str, **create_kwargs) -> Histogram:
        """The log-bucketed histogram ``name`` (created on first use).

        ``create_kwargs`` (``lo``, ``growth``) apply only on creation —
        wall-clock callers pass ``lo=Histogram.WALLCLOCK_NS_LO`` (or use
        :meth:`wallclock_histogram`) so nanosecond samples don't collapse
        into the simulated-magnitude underflow bucket.  An existing
        histogram is returned as-is regardless of kwargs.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, **create_kwargs)
            self._histograms[name] = hist
        return hist

    def wallclock_histogram(self, name: str) -> Histogram:
        """The histogram ``name`` with ns-scale buckets (created on first
        use via :meth:`Histogram.wallclock_ns`)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram.wallclock_ns(name)
            self._histograms[name] = hist
        return hist

    def observe_histogram(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        self.histogram(name).add(value)

    def register_histogram(self, hist: Histogram) -> Histogram:
        """Adopt an externally built histogram under its own name.

        Used by the tracing layer, which owns its latency histograms but
        registers them here so run reports see them alongside everything
        else.  An existing histogram of the same name wins (the caller
        should then record into the returned object).
        """
        return self._histograms.setdefault(hist.name, hist)

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        """All histograms whose names start with ``prefix``."""
        return {
            name: hist
            for name, hist in self._histograms.items()
            if name.startswith(prefix)
        }

    # -- introspection ---------------------------------------------------------------

    def names(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(kind, name)`` for every registered metric."""
        for name in self._counters:
            yield ("counter", name)
        for name in self._series:
            yield ("series", name)
        for name in self._summaries:
            yield ("summary", name)
        for name in self._histograms:
            yield ("histogram", name)


class Sampler:
    """A periodic simulation process recording gauge callables into series.

    Example::

        sampler = Sampler(env, registry, interval=10.0)
        sampler.add("pool.web.used_mb", lambda: pool.used_mb)
        sampler.start()
    """

    def __init__(self, env, registry: MetricsRegistry, interval: float = 10.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.registry = registry
        self.interval = interval
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._process = None

    def add(self, name: str, gauge: Callable[[], float]) -> None:
        """Sample ``gauge()`` into series ``name`` every interval."""
        self._gauges[name] = gauge

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="metrics-sampler")

    def sample_once(self) -> None:
        """Record one sample of every gauge at the current time."""
        now = self.env.now
        for name, gauge in self._gauges.items():
            self.registry.record(name, now, float(gauge()))

    def _run(self):
        while True:
            self.sample_once()
            yield self.env.timeout(self.interval)
