"""Wall-clock telemetry for the live service path (``repro.obs.live``).

The simulator's flight recorder (:class:`~repro.obs.tracer.Tracer`)
thinks in simulated seconds.  This module extends it to real time so one
toolchain — the JSONL/Perfetto exporters, ``python -m repro.obs``
validation and analysis — reads both kinds of trace:

* :class:`LiveTracer` — a tracer whose clock is injected (default
  ``time.monotonic_ns``) and whose native unit is integer nanoseconds.
  Its meta record declares ``"time_unit": "ns"``, which the exporters
  and analyzers use to scale; the simulated-time semantics of the base
  class are untouched.
* :class:`LiveSpan` — a context manager for instrumenting request-path
  sections (``with tracer.span("cmd.get", tenant=t):``), usable across
  ``await`` points because begin/end are explicit counter updates.
* :class:`OpsLogger` — structured JSON operational logging with a
  rate-limited slow-op log.
* :class:`TelemetrySidecar` — a stdlib-asyncio HTTP endpoint on the
  service's own event loop serving ``/metrics`` (Prometheus text
  exposition via :mod:`repro.metrics.exposition`), ``/healthz``, and
  ``/stats.json``.
* :class:`SnapshotWriter` — a periodic task appending counter deltas to
  a JSONL run artifact that the loadgen and benchmarks can assert
  against, emitting eviction-pressure ops events as a side effect.
* :func:`bind_store_probe` — hooks :class:`repro.service.store.DiskStore`
  I/O timing into a tracer as ``store.*`` spans.

Nothing here touches the simulator: importing this module does not
change :mod:`repro.obs.tracer`, and fixed-seed fingerprints are pinned
by the perf-smoke goldens.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..metrics.exposition import (
    MetricFamily,
    registry_families,
    render_families,
)
from ..metrics.timeseries import Histogram
from .export import to_jsonl
from .tracer import Tracer

__all__ = [
    "LiveTracer",
    "LiveSpan",
    "OpsLogger",
    "TelemetrySidecar",
    "SnapshotWriter",
    "service_families",
    "bind_store_probe",
    "write_trace",
]

_NS_PER_S = 1_000_000_000


class LiveSpan:
    """One in-flight wall-clock span, closed by ``with`` exit.

    Unlike the simulator's generator-driven spans (begin/end around a
    ``yield``), live spans bracket ``await``-ful request handling, so
    the context-manager shape guarantees the close even on exceptions —
    the validator's span-balance check stays strict for live traces.
    """

    __slots__ = ("_tracer", "name", "vm", "pool", "args", "_t0")

    def __init__(self, tracer: "LiveTracer", name: str,
                 vm: Optional[int] = None, pool: Optional[int] = None,
                 **args: Any) -> None:
        self._tracer = tracer
        self.name = name
        self.vm = vm
        self.pool = pool
        self.args = args
        self._t0 = 0

    def note(self, **args: Any) -> None:
        """Attach arguments discovered mid-span (hit/miss, status, ...)."""
        self.args.update(args)

    def __enter__(self) -> "LiveSpan":
        self._tracer.span_begin()
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.span_end(
            self.name, self._t0, self._tracer.clock(),
            vm=self.vm, pool=self.pool, **self.args)


class LiveTracer(Tracer):
    """The flight recorder on a wall clock.

    The ring buffer, sampling, ledger, and export machinery are the base
    class's; only the units change.  Timestamps come exclusively from
    the injected ``clock`` (monotonic integer nanoseconds), so instant
    events stay monotone and the validator's ordering check holds.
    Latency histograms are created nanosecond-bucketed
    (:meth:`Histogram.wallclock_ns`), and :meth:`latency_rows` scales
    ns to the milliseconds the report tabulates.
    """

    #: Declared in :meth:`meta` so exporters/analyzers scale correctly.
    time_unit = "ns"
    _MS_PER_UNIT = 1e-6  # ns -> ms

    def __init__(self, max_events: int = 200_000, sample: int = 1,
                 clock=time.monotonic_ns) -> None:
        super().__init__(max_events=max_events, sample=sample)
        self.clock = clock

    def now(self) -> int:
        """Current timestamp in this tracer's native unit (ns)."""
        return self.clock()

    def span(self, name: str, vm: Optional[int] = None,
             pool: Optional[int] = None, **args: Any) -> LiveSpan:
        """A context-managed span timed on this tracer's clock."""
        return LiveSpan(self, name, vm=vm, pool=pool, **args)

    def histogram(self, name: str) -> Histogram:
        """Nanosecond-bucketed histogram ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram.wallclock_ns(name)
            self._histograms[name] = hist
            for registry in self._registries:
                registry.register_histogram(hist)
        return hist

    def meta(self) -> Dict[str, Any]:
        meta = super().meta()
        meta["time_unit"] = self.time_unit
        return meta


def write_trace(tracer: Tracer, path: str) -> None:
    """Serialize a tracer to a JSONL trace file."""
    Path(path).write_text(to_jsonl(tracer))


# ----------------------------------------------------------------------
# Structured operational logging
# ----------------------------------------------------------------------

class OpsLogger:
    """One-JSON-object-per-line operational log.

    Every record carries ``event`` and a monotonic ``t_ns``; the rest is
    the caller's fields.  :meth:`slow_op` is the latency tripwire: ops
    slower than ``slow_op_ns`` are logged, rate-limited to
    ``slow_op_per_s`` records per one-second window so a latency storm
    cannot amplify itself through logging I/O (the ``suppressed``
    counter records what the limiter swallowed).
    """

    def __init__(self, stream=None, slow_op_ns: int = 10_000_000,
                 slow_op_per_s: int = 10, clock=time.monotonic_ns) -> None:
        if slow_op_per_s < 1:
            raise ValueError(
                f"slow_op_per_s must be >= 1, got {slow_op_per_s}")
        self.stream = stream if stream is not None else sys.stderr
        self.slow_op_ns = slow_op_ns
        self.slow_op_per_s = slow_op_per_s
        self.clock = clock
        self.emitted = 0
        self.suppressed = 0
        self._window_start: Optional[int] = None
        self._window_emitted = 0

    def log(self, event: str, **fields: Any) -> None:
        """Emit one record unconditionally."""
        record: Dict[str, Any] = {"event": event, "t_ns": self.clock()}
        record.update(fields)
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()
        self.emitted += 1

    def slow_op(self, op: str, tenant: str, dur_ns: int,
                **fields: Any) -> bool:
        """Log a slow op if over threshold and under the rate limit.

        Returns whether a record was written (False: fast op or
        suppressed).
        """
        if dur_ns < self.slow_op_ns:
            return False
        now = self.clock()
        if (self._window_start is None
                or now - self._window_start >= _NS_PER_S):
            self._window_start = now
            self._window_emitted = 0
        if self._window_emitted >= self.slow_op_per_s:
            self.suppressed += 1
            return False
        self._window_emitted += 1
        self.log("slow_op", op=op, tenant=tenant, dur_ns=dur_ns,
                 threshold_ns=self.slow_op_ns, **fields)
        return True


# ----------------------------------------------------------------------
# Prometheus exposition of the service's state
# ----------------------------------------------------------------------

#: Per-tenant monotone counters from ``ServiceCache.stats()``.
_TENANT_COUNTERS = (
    "gets", "get_hits", "puts", "puts_stored", "evictions",
    "put_rejected_admission", "put_rejected_capacity",
)
#: Per-tenant point-in-time gauges.
_TENANT_GAUGES = ("used_blocks", "entitlement_blocks")


def service_families(cache, protocol=None,
                     prefix: str = "dd") -> List[MetricFamily]:
    """The service's full metric set as exposition families.

    Per-tenant hit/miss/eviction counters (``tenant`` label), host
    occupancy gauges, server connection/op counters, and everything in
    the cache's :class:`MetricsRegistry` — which includes the
    nanosecond latency histograms the protocol layer records
    (``dd_service_lat_get`` et al.) and any bound tracer histograms.
    """
    snapshot = cache.stats()
    host = snapshot.pop("_host", {})
    tenants = sorted(snapshot)
    families: List[MetricFamily] = []

    for field in _TENANT_COUNTERS:
        family = MetricFamily(f"{prefix}_tenant_{field}_total", "counter")
        for tenant in tenants:
            family.add(snapshot[tenant][field], labels={"tenant": tenant})
        families.append(family)
    misses = MetricFamily(f"{prefix}_tenant_get_misses_total", "counter")
    for tenant in tenants:
        misses.add(snapshot[tenant]["gets"] - snapshot[tenant]["get_hits"],
                   labels={"tenant": tenant})
    families.append(misses)
    for field in _TENANT_GAUGES:
        family = MetricFamily(f"{prefix}_tenant_{field}", "gauge")
        for tenant in tenants:
            family.add(snapshot[tenant][field], labels={"tenant": tenant})
        families.append(family)

    for field in sorted(host):
        family = MetricFamily(f"{prefix}_cache_{field}", "gauge")
        family.add(host[field])
        families.append(family)

    if protocol is not None:
        for field in ("connections", "ops", "protocol_errors"):
            family = MetricFamily(
                f"{prefix}_server_{field}_total", "counter")
            family.add(getattr(protocol, field))
            families.append(family)

    families.extend(registry_families(cache.registry, prefix=prefix))
    return families


class TelemetrySidecar:
    """Minimal HTTP/1.0 metrics endpoint on the service's event loop.

    Stdlib-only by design (no aiohttp in the container): one readline
    for the request line, headers drained and ignored, one response,
    connection closed.  That is all a Prometheus scraper, ``curl``, or
    a load balancer's health check needs.

    Routes: ``/metrics`` (text exposition 0.0.4), ``/healthz`` (JSON
    liveness), ``/stats.json`` (the ``stats`` command's content as
    JSON, plus server counters and latency quantiles).
    """

    def __init__(self, cache, protocol=None, host: str = "127.0.0.1",
                 port: int = 0, ops: Optional[OpsLogger] = None) -> None:
        self.cache = cache
        self.protocol = protocol
        self.host = host
        self.port = port
        self.ops = ops
        self.scrapes = 0
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "TelemetrySidecar":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def close(self) -> None:
        if self._server is not None:
            self._server.close()

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()

    # -- rendering (sync, shared with tests and the fleet) --------------

    def render_metrics(self) -> str:
        """The ``/metrics`` body."""
        return render_families(
            service_families(self.cache, protocol=self.protocol))

    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats.json`` body as a dict."""
        payload: Dict[str, Any] = {"tenants": self.cache.stats()}
        payload["host"] = payload["tenants"].pop("_host", {})
        if self.protocol is not None:
            payload["server"] = {
                "connections": self.protocol.connections,
                "ops": self.protocol.ops,
                "protocol_errors": self.protocol.protocol_errors,
            }
        latency: Dict[str, Dict[str, float]] = {}
        for op in ("get", "set", "delete"):
            hist = self.cache.registry.wallclock_histogram(
                f"service.lat.{op}")
            if hist.count:
                latency[op] = {
                    "count": hist.count,
                    "p50_ns": hist.quantile(0.5),
                    "p99_ns": hist.quantile(0.99),
                }
        payload["latency"] = latency
        payload["scrapes"] = self.scrapes
        return payload

    def _route(self, path: str):
        if path == "/metrics":
            self.scrapes += 1
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    self.render_metrics())
        if path == "/healthz":
            return (200, "application/json",
                    json.dumps({"ok": True}) + "\n")
        if path == "/stats.json":
            return (200, "application/json",
                    json.dumps(self.stats_payload(), sort_keys=True) + "\n")
        return (404, "text/plain", "not found\n")

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            while True:  # drain headers; this endpoint ignores them all
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if not parts or parts[0] not in ("GET", "HEAD"):
                status, ctype, body = 405, "text/plain", "GET only\n"
            else:
                status, ctype, body = self._route(path)
            reason = {200: "OK", 404: "Not Found",
                      405: "Method Not Allowed"}[status]
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head if parts and parts[0] == "HEAD"
                         else head + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # a scraper that hung up mid-response costs nothing
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# Periodic registry-delta snapshots
# ----------------------------------------------------------------------

class SnapshotWriter:
    """Append counter totals + deltas to a JSONL run artifact.

    Each record: ``{"event": "snapshot", "seq", "t_ns", "totals",
    "delta"}`` where ``totals`` flattens ``ServiceCache.stats()`` (and
    the protocol counters) to ``"scope.field"`` keys and ``delta`` holds
    only the keys that moved since the previous snapshot.  Loadgen and
    benchmarks assert against this artifact; an interval with a nonzero
    eviction delta additionally emits an ``eviction_pressure`` ops-log
    event (the interval itself bounds the event rate).
    """

    def __init__(self, path: str, cache, protocol=None,
                 interval_s: float = 2.0, tracer: Optional[LiveTracer] = None,
                 ops: Optional[OpsLogger] = None,
                 clock=time.monotonic_ns) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval_s must be positive, got {interval_s}")
        self.path = path
        self.cache = cache
        self.protocol = protocol
        self.interval_s = interval_s
        self.tracer = tracer
        self.ops = ops
        self.clock = clock
        self.seq = 0
        self._last: Dict[str, float] = {}

    def totals(self) -> Dict[str, float]:
        """Current counters, flattened to ``scope.field`` keys."""
        flat: Dict[str, float] = {}
        for scope, fields in self.cache.stats().items():
            for field, value in fields.items():
                flat[f"{scope}.{field}"] = value
        if self.protocol is not None:
            flat["server.connections"] = self.protocol.connections
            flat["server.ops"] = self.protocol.ops
            flat["server.protocol_errors"] = self.protocol.protocol_errors
        return flat

    def write_once(self) -> Dict[str, float]:
        """Take one snapshot now; returns the delta it recorded."""
        totals = self.totals()
        delta = {
            key: value - self._last.get(key, 0)
            for key, value in totals.items()
            if value != self._last.get(key, 0)
        }
        record = {
            "event": "snapshot", "seq": self.seq, "t_ns": self.clock(),
            "totals": totals, "delta": delta,
        }
        with open(self.path, "a") as artifact:
            artifact.write(json.dumps(record, sort_keys=True) + "\n")
        evicted = sum(
            value for key, value in delta.items()
            if key.endswith(".evictions"))
        if evicted and self.ops is not None:
            self.ops.log("eviction_pressure", evicted_blocks=evicted,
                         interval_s=self.interval_s)
        if self.tracer is not None:
            self.tracer.instant(
                "obs.snapshot", self.tracer.clock(), seq=self.seq,
                changed=len(delta))
        self._last = totals
        self.seq += 1
        return delta

    async def run(self) -> None:
        """Snapshot every ``interval_s`` until cancelled."""
        while True:
            await asyncio.sleep(self.interval_s)
            self.write_once()


# ----------------------------------------------------------------------
# DiskStore I/O probing
# ----------------------------------------------------------------------

def bind_store_probe(store, tracer: LiveTracer, registry=None):
    """Attach a timing probe to a :class:`DiskStore`.

    The store times its own SQLite + blob work (``t0_ns``/``t1_ns`` from
    ``time.monotonic_ns``) and calls the probe once per op.  The probe
    re-bases the interval onto the tracer's clock — identical in
    production, but it keeps a test's injected fake clock coherent —
    and records a ``store.{op}`` span plus a ``service.disk.{op}``
    nanosecond histogram sample.
    """
    def probe(op: str, t0_ns: int, t1_ns: int, nbytes: int) -> None:
        t1 = tracer.clock()
        t0 = t1 - (t1_ns - t0_ns)
        tracer.span_begin()
        tracer.span_end(f"store.{op}", t0, t1, nbytes=nbytes)
        if registry is not None:
            registry.wallclock_histogram(
                f"service.disk.{op}").add(t1_ns - t0_ns)

    store.probe = probe
    return probe
