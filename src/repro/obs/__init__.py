"""Observability for the DoubleDecker cache path.

End-to-end operation tracing (spans + a ring-buffer flight recorder),
log-bucketed latency histograms, and a decision-provenance event stream
covering evictions, admission rejections, trickle-downs, and migrations.
Disabled (the default) it costs one module-global read and branch per
batch op; enabled via the experiment CLI's ``--trace`` flag or
:func:`set_tracer`.  Analyze traces with ``python -m repro.obs``.
"""

from .export import (
    events_to_perfetto,
    parse_jsonl,
    to_jsonl,
    to_perfetto,
    validate_trace,
)
from .live import (
    LiveTracer,
    OpsLogger,
    SnapshotWriter,
    TelemetrySidecar,
    bind_store_probe,
    write_trace,
)
from .tracer import (
    ACTIVE,
    LEDGER_FIELDS,
    QUANTILE_LABELS,
    Tracer,
    get_tracer,
    ledger_violations,
    set_tracer,
)

__all__ = [
    "ACTIVE",
    "LEDGER_FIELDS",
    "QUANTILE_LABELS",
    "LiveTracer",
    "OpsLogger",
    "SnapshotWriter",
    "TelemetrySidecar",
    "Tracer",
    "attach_latency_report",
    "bind_store_probe",
    "events_to_perfetto",
    "get_tracer",
    "ledger_violations",
    "parse_jsonl",
    "set_tracer",
    "to_jsonl",
    "to_perfetto",
    "validate_trace",
    "write_trace",
]


def attach_latency_report(result, tracer: Tracer, per_pool: bool = False) -> None:
    """Add the tracer's per-op latency table to an experiment result.

    Called by the experiment runner when tracing is on, so run reports
    carry p50/p90/p99/p999 per op type next to the paper's tables.
    """
    rows = tracer.latency_rows(per_pool=per_pool)
    if not rows:
        return
    result.add_table(
        "op latency (ms)",
        ["op", "count", "mean"] + [label for _, label in QUANTILE_LABELS],
        rows,
    )
