"""Offline trace analysis behind ``python -m repro.obs``.

Every subcommand except ``smoke`` works on a JSONL trace produced by the
experiment CLI's ``--trace`` flag (or :func:`repro.obs.export.to_jsonl`):

* ``summarize`` — event counts and span time per span name, ledger
  totals per cache, recorder health (drops, sampling, open spans).
* ``top-victims`` — eviction provenance aggregated per victim pool:
  who lost blocks, how often, and where they trickled.
* ``latency-breakdown`` — per-op p50/p90/p99/p999 from the histogram
  snapshots in the trace meta (exact — histograms see every op even
  when the ring samples).
* ``export`` — convert JSONL to Chrome trace-event / Perfetto JSON.
* ``validate`` — the schema/ledger checker CI runs (see
  :func:`repro.obs.export.validate_trace`).
* ``smoke`` — build a small traced+audited scenario in-process, run it
  to quiescence, and fail on any unclosed span, schema violation, or
  provenance/ledger mismatch.  The strict end-to-end gate.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Tuple

from ..metrics.reporting import format_table
from ..metrics.timeseries import Histogram
from .export import parse_jsonl, validate_trace
from .tracer import QUANTILE_LABELS

__all__ = [
    "load_trace",
    "summarize",
    "top_victims",
    "latency_breakdown",
    "run_smoke",
]

Trace = Tuple[Dict[str, Any], List[Dict[str, Any]]]


def load_trace(path: str) -> Trace:
    """Read and parse a JSONL trace file."""
    return parse_jsonl(Path(path).read_text())


def _ms_per_unit(meta: Dict[str, Any]) -> float:
    """Native-duration-to-milliseconds factor for this trace.

    Simulated traces record seconds; live traces declare
    ``"time_unit": "ns"`` and record integer nanoseconds.
    """
    return 1e-6 if meta.get("time_unit") == "ns" else 1e3


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------

def summarize(trace: Trace) -> str:
    meta, events = trace
    parts: List[str] = []
    spans: Dict[str, List[float]] = defaultdict(list)
    instants: Dict[str, int] = defaultdict(int)
    for event in events:
        if event["ph"] == "X":
            spans[event["name"]].append(event["dur"])
        else:
            instants[event["name"]] += 1

    parts.append(
        f"recorder: {meta['recorded']} events in ring "
        f"(capacity {meta['max_events']}, dropped {meta['dropped']}, "
        f"sampled out {meta['sampled_out']} at 1/{meta['sample']})"
    )
    parts.append(
        f"spans: {meta['spans_started']} begun, "
        f"{meta['spans_finished']} finished, {meta['open_spans']} open"
    )

    if spans:
        ms = _ms_per_unit(meta)
        rows = []
        for name in sorted(spans):
            durations = spans[name]
            total = sum(durations)
            rows.append([
                name, len(durations), total * ms,
                (total / len(durations)) * ms,
                max(durations) * ms,
            ])
        parts.append("")
        parts.append(format_table(
            ["span", "count", "total(ms)", "mean(ms)", "max(ms)"],
            rows, title="-- span time (recorded events) --",
            float_fmt="{:.3f}",
        ))
    if instants:
        rows = [[name, instants[name]] for name in sorted(instants)]
        parts.append("")
        parts.append(format_table(
            ["event", "count"], rows, title="-- provenance events --"))

    ledger = meta.get("ledger", {})
    if ledger:
        rows = []
        for cache in sorted(ledger):
            pools = ledger[cache]
            totals: Dict[str, int] = defaultdict(int)
            for counters in pools.values():
                for field, value in counters.items():
                    totals[field] += value
            rows.append([
                cache, len(pools), totals["gets"], totals["get_hits"],
                totals["puts"], totals["puts_stored"],
                totals["puts"] - totals["puts_stored"],
                totals["evictions"], totals["ssd_writes"],
            ])
        parts.append("")
        parts.append(format_table(
            ["cache", "pools", "gets", "hits", "puts", "stored",
             "rejected", "evictions", "ssd_writes"],
            rows, title="-- provenance ledger (cumulative, exact) --"))
    return "\n".join(parts)


# ----------------------------------------------------------------------
# top-victims
# ----------------------------------------------------------------------

def top_victims(trace: Trace, limit: int = 10) -> str:
    _, events = trace
    stats: Dict[Tuple[str, str, str], Dict[str, int]] = {}
    for event in events:
        if event["name"] != "evict.round":
            continue
        args = event["args"]
        key = (args.get("cache", "?"), args.get("victim_vm", "?"),
               args.get("victim_pool", "?"))
        entry = stats.setdefault(
            key, {"rounds": 0, "evicted": 0, "trickled": 0})
        entry["rounds"] += 1
        entry["evicted"] += args.get("evicted", 0)
        entry["trickled"] += args.get("trickled", 0)
    if not stats:
        return "no eviction rounds recorded"
    ordered = sorted(
        stats.items(), key=lambda item: (-item[1]["evicted"], item[0]))
    rows = [
        [cache, vm, pool, entry["rounds"], entry["evicted"], entry["trickled"]]
        for (cache, vm, pool), entry in ordered[:limit]
    ]
    return format_table(
        ["cache", "victim vm", "victim pool", "rounds", "evicted", "trickled"],
        rows, title=f"-- top eviction victims (of {len(stats)}) --")


# ----------------------------------------------------------------------
# latency-breakdown
# ----------------------------------------------------------------------

def latency_breakdown(trace: Trace, per_vm: bool = False) -> str:
    meta, _ = trace
    snapshots = meta.get("histograms", {})
    if not snapshots:
        return "no latency histograms in trace"
    ms = _ms_per_unit(meta)
    rows = []
    for name in sorted(snapshots, key=lambda n: (n.count("."), n)):
        if not per_vm and ".vm" in name:
            continue
        hist = Histogram.from_dict(snapshots[name])
        if not hist.count:
            continue
        rows.append(
            [name, hist.count, hist.mean * ms]
            + [hist.quantile(q) * ms for q, _ in QUANTILE_LABELS]
        )
    scope = "per op/vm/pool" if per_vm else "per op"
    return format_table(
        ["histogram", "count", "mean(ms)"]
        + [label + "(ms)" for _, label in QUANTILE_LABELS],
        rows, title=f"-- latency breakdown ({scope}) --", float_fmt="{:.4f}")


# ----------------------------------------------------------------------
# smoke
# ----------------------------------------------------------------------

def run_smoke(seed: int = 7, verbose: bool = True) -> int:
    """Traced + audited end-to-end scenario with strict validation.

    Drives the whole instrumented path — cleancache client, hypercall
    channel, DoubleDecker manager (hybrid + memory + SSD pools over two
    VMs, evictions, trickle-downs, migrations, flushes), SSD device —
    with finite deterministic op streams, so the simulation quiesces and
    every span must close.  Then: periodic audits must have stayed clean,
    the tracer ledger must reconcile with pool stats, the JSONL
    round-trip must be lossless, the Perfetto export must be valid JSON,
    and :func:`validate_trace` must pass with no allowance for open
    spans.  Returns a process exit code.
    """
    import json
    import random

    from ..cleancache import CleancacheClient
    from ..core import (
        CachePolicy, DDConfig, DoubleDeckerCache, assert_consistent,
        set_audit_interval,
    )
    from ..simkernel import Environment
    from ..storage import SSD
    from .export import to_jsonl, to_perfetto
    from .tracer import Tracer, ledger_violations, set_tracer

    failures: List[str] = []
    tracer = Tracer(max_events=200_000, sample=1)
    set_tracer(tracer)
    set_audit_interval(5.0)
    try:
        env = Environment()
        block_bytes = 64 * 1024
        ssd = SSD(env, block_bytes)
        config = DDConfig(
            mem_capacity_mb=4.0, ssd_capacity_mb=8.0,
            eviction_batch_mb=0.25, trickle_down=True,
            admission="second_access",
        )
        cache = DoubleDeckerCache(env, config, block_bytes, ssd_device=ssd)
        rng = random.Random(seed)

        clients = []
        pools: List[Tuple[CleancacheClient, int]] = []
        for vm_name, pool_specs in (
            ("alpha", [("web", CachePolicy.memory(60.0)),
                       ("db", CachePolicy.hybrid(30.0, 30.0))]),
            ("beta", [("mail", CachePolicy.ssd(50.0)),
                      ("scratch", CachePolicy.hybrid(20.0, 40.0))]),
        ):
            vm_id = cache.register_vm(vm_name, weight=100.0)
            client = CleancacheClient(env, cache, vm_id, block_bytes)
            clients.append(client)
            for pool_name, policy in pool_specs:
                pool_id = client.create_pool(pool_name, policy)
                pools.append((client, pool_id))

        def driver(client: CleancacheClient, pool_id: int, salt: int):
            # Finite op stream: enough puts to overflow both stores
            # (forcing Algorithm-1 rounds and trickle-downs), re-puts to
            # satisfy second-access admission, then gets and flushes.
            # Each chunk is re-put immediately so the reuse distance stays
            # inside the admission ghost (a whole-stream second pass would
            # thrash the ghost FIFO and admit nothing).
            keys = [(inode, block)
                    for inode in range(salt, salt + 4)
                    for block in range(80)]
            for start in range(0, len(keys), 16):
                chunk = keys[start:start + 16]
                yield from client.put_many(pool_id, chunk)
                yield env.timeout(0.05 + (salt % 3) * 0.01)
                repeat = [key for key in chunk if rng.random() < 0.7]
                yield from client.put_many(pool_id, repeat)
                yield env.timeout(0.05)
            lookups = [key for key in keys if rng.random() < 0.6]
            for start in range(0, len(lookups), 8):
                yield from client.get_many(pool_id, lookups[start:start + 8])
                yield env.timeout(0.02)
            yield from client.flush_many(pool_id, keys[:24])
            yield from client.flush_inode(pool_id, salt)

        for index, (client, pool_id) in enumerate(pools):
            env.process(driver(client, pool_id, salt=10 * (index + 1)),
                        name=f"smoke-driver-{index}")

        def migrator(client: CleancacheClient):
            # Eviction churn can empty any one inode at any one instant,
            # so probe the source pool's inodes until a migration moves
            # blocks (deterministic under the fixed seed).
            yield env.timeout(1.0)
            vm_pools = [pid for cl, pid in pools if cl is client]
            while env.now < 60.0:
                for inode in range(10, 14):
                    if client.migrate(vm_pools[0], vm_pools[1], inode):
                        return
                yield env.timeout(0.2)

        env.process(migrator(clients[0]), name="smoke-migrator")

        # The audit loop reschedules forever, so run to a horizon far
        # past the drivers' last op instead of to queue exhaustion.
        env.run(until=500.0)

        assert_consistent(cache, where="smoke end")
        failures.extend(ledger_violations(tracer, cache))
        if tracer.open_spans:
            failures.append(f"{tracer.open_spans} unclosed span(s)")

        jsonl = to_jsonl(tracer)
        meta, events = parse_jsonl(jsonl)
        if len(events) != len(tracer.events):
            failures.append("JSONL round-trip lost events")
        elif list(tracer.events) != events:
            failures.append("JSONL round-trip altered events")
        failures.extend(validate_trace(meta, events, allow_open_spans=False))

        perfetto = json.loads(to_perfetto(tracer))
        if not perfetto.get("traceEvents"):
            failures.append("Perfetto export has no traceEvents")

        for op in ("get", "put", "flush"):
            hist = tracer.histogram(f"obs.lat.{op}")
            if not hist.count:
                failures.append(f"no {op} latencies recorded")

        total = tracer.ledger.get(cache._obs_label, {})
        evictions = sum(c["evictions"] for c in total.values())
        trickles = sum(c["ssd_writes"] for c in total.values())
        if not evictions:
            failures.append("scenario produced no evictions to trace")
        if not trickles:
            failures.append("scenario produced no SSD writes to trace")
        migrated = sum(c["migrated_out"] for c in total.values())
        if not migrated:
            failures.append("scenario produced no migrations to trace")
        if verbose:
            print(summarize((meta, events)))
            print()
            print(latency_breakdown((meta, events)))
            print()
            print(top_victims((meta, events)))
    finally:
        set_tracer(None)
        set_audit_interval(0.0)

    if failures:
        print("\nsmoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nsmoke OK: spans closed, ledger reconciled, exports valid")
    return 0
