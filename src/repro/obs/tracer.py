"""The flight recorder: spans, provenance events, and latency histograms.

One process-wide :class:`Tracer` (installed with :func:`set_tracer`, the
same global-switch pattern as ``set_audit_interval`` so ``--jobs`` workers
inherit it) collects three kinds of telemetry from the instrumented cache
path:

* **spans** — timed sections of the op path (``op.get`` at the cleancache
  client, ``cache.put`` in the manager, ``hypercall.data``, ``dev.read``
  on a device).  Spans are recorded *at completion* with their start time
  and duration; a begin/finish pair of counters detects spans that never
  completed (a generator abandoned mid-flight), which the validator
  reports as unclosed.
* **instant events** — decision provenance: every eviction round with its
  Algorithm-1 exceed values, every put-outcome breakdown, trickle-downs,
  migrations, and control-path changes (pool/VM lifecycle, policy sets).
* **latency histograms** — log-bucketed per op type, per VM, and per
  pool, owned by the tracer and registered into each simulation's
  :class:`~repro.metrics.collector.MetricsRegistry` so run reports can
  print p50/p90/p99/p999 without touching the event buffer.

Events live in a bounded ring buffer (the "flight recorder"): the newest
``max_events`` events survive, and the ``dropped`` counter says how many
were pushed out.  The provenance *ledger* — cumulative per-pool outcome
counters keyed by a unique per-cache label — is kept outside the ring, so
reconciliation against the shadow-accounting auditor stays exact even
when the buffer wraps.

Instrumentation contract: every call site guards with ``if tracer is not
None`` on the module global ``ACTIVE``; with tracing disabled the entire
subsystem costs one attribute read and one branch per *batch* operation
(never per block), which the end-to-end bench bounds at <= 1.02x.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..metrics.timeseries import Histogram

__all__ = ["Tracer", "ACTIVE", "get_tracer", "set_tracer",
           "ledger_violations", "LEDGER_FIELDS", "QUANTILE_LABELS"]

#: Ledger fields mirror the pool's put-outcome/eviction counters exactly,
#: so reconciliation is a field-by-field equality check.
LEDGER_FIELDS = (
    "gets", "get_hits",
    "puts", "puts_stored",
    "put_rejected_policy", "put_rejected_capacity",
    "put_rejected_admission", "put_rejected_backpressure",
    "flush_requests", "flushes",
    "evictions", "trickle_rejected_admission", "ssd_writes",
    "migrated_in", "migrated_out", "migrated_rejected",
)

#: The quantiles every latency report shows, with their column labels.
QUANTILE_LABELS = (
    (0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999"),
)


class Tracer:
    """Ring-buffered flight recorder plus provenance ledger."""

    #: Multiplier turning this tracer's native duration unit into the
    #: milliseconds :meth:`latency_rows` tabulates.  The base tracer
    #: records simulated seconds; the wall-clock subclass
    #: (:class:`repro.obs.live.LiveTracer`) records integer nanoseconds
    #: and overrides this with ``1e-6``.
    _MS_PER_UNIT = 1e3

    def __init__(self, max_events: int = 200_000, sample: int = 1) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.max_events = max_events
        self.sample = sample
        self.events: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        #: Events pushed out of the ring by newer ones.
        self.dropped = 0
        #: Span events skipped by ``--trace-sample`` (still counted and
        #: still feeding histograms; only the ring entry is elided).
        self.sampled_out = 0
        self.spans_started = 0
        self.spans_finished = 0
        self._span_seq: Dict[str, int] = {}
        #: op -> vm -> pool latency histograms, flat by metric name.
        self._histograms: Dict[str, Histogram] = {}
        self._registries: List[Any] = []
        #: cache label -> pool id -> cumulative outcome counters.
        self.ledger: Dict[str, Dict[int, Dict[str, int]]] = {}
        #: (cache label, pool id) -> pool name, from pool.create events.
        self.pool_names: Dict[Tuple[str, int], str] = {}
        #: (cache label, vm id) -> VM name, from vm.register events.
        self.vm_names: Dict[Tuple[str, int], str] = {}
        self._cache_counts: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------

    def register_cache(self, name: str) -> str:
        """Assign a unique label to one cache instance.

        Experiments build several caches (one per mode) whose pool ids
        restart at 1; the label keys the ledger so their provenance never
        mixes.
        """
        count = self._cache_counts.get(name, 0)
        self._cache_counts[name] = count + 1
        return name if count == 0 else f"{name}#{count + 1}"

    def bind_registry(self, registry) -> None:
        """Register this tracer's histograms into a run's metric registry.

        Called by :class:`~repro.hypervisor.host.Host` at construction;
        histograms created later are registered into every bound registry
        as they appear.
        """
        if registry in self._registries:
            return
        self._registries.append(registry)
        for hist in self._histograms.values():
            registry.register_histogram(hist)

    # -- spans ----------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Spans begun but never finished (in flight or abandoned)."""
        return self.spans_started - self.spans_finished

    def span_begin(self) -> None:
        """Mark a span as in flight (finished by a ``span_end``/``op_span``)."""
        self.spans_started += 1

    def span_end(self, name: str, t0: float, t1: float,
                 vm: Optional[int] = None, pool: Optional[int] = None,
                 **args) -> None:
        """Close a span and (subject to sampling) record it."""
        self.spans_finished += 1
        seq = self._span_seq.get(name, 0)
        self._span_seq[name] = seq + 1
        if seq % self.sample:
            self.sampled_out += 1
            return
        self._append({
            "ph": "X", "name": name, "ts": t0, "dur": t1 - t0,
            "vm": vm, "pool": pool, "args": args,
        })

    def op_span(self, op: str, vm: int, pool: int, t0: float, t1: float,
                scope: str = "", **args) -> None:
        """Close a client-level op span and feed the latency histograms.

        Histograms see *every* op regardless of ``sample`` — they are the
        cheap aggregate; sampling only thins the ring buffer.
        """
        duration = t1 - t0
        self.observe_latency(op, vm, pool, duration, scope=scope)
        self.span_end(f"op.{op}", t0, t1, vm=vm, pool=pool, **args)

    # -- latency histograms ---------------------------------------------

    def histogram(self, name: str) -> Histogram:
        """The tracer-owned histogram ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self._histograms[name] = hist
            for registry in self._registries:
                registry.register_histogram(hist)
        return hist

    def observe_latency(self, op: str, vm: int, pool: int, duration: float,
                        scope: str = "") -> None:
        """Record one op latency at all three aggregation levels.

        ``scope`` (e.g. ``"host2."``) prefixes the vm/pool levels so a
        multi-host fleet keeps per-host breakdowns while the unscoped
        ``obs.lat.{op}`` aggregate stays fleet-wide; with the default
        empty scope the metric names are unchanged.
        """
        self.histogram(f"obs.lat.{op}").add(duration)
        if scope:
            self.histogram(f"obs.lat.{scope}{op}").add(duration)
        self.histogram(f"obs.lat.{scope}{op}.vm{vm}").add(duration)
        self.histogram(f"obs.lat.{scope}{op}.vm{vm}.pool{pool}").add(duration)

    def latency_rows(self, per_pool: bool = True) -> List[List[object]]:
        """Tabulated latencies in milliseconds: one row per histogram.

        Rows: ``[name, count, mean, p50, p90, p99, p999]``; coarser
        aggregates sort first so the per-op summary leads the report.
        """
        rows: List[List[object]] = []
        for name in sorted(self._histograms, key=lambda n: (n.count("."), n)):
            if not per_pool and ".vm" in name:
                continue
            hist = self._histograms[name]
            if not hist.count:
                continue
            rows.append(
                [name, hist.count, hist.mean * self._MS_PER_UNIT]
                + [hist.quantile(q) * self._MS_PER_UNIT
                   for q, _ in QUANTILE_LABELS]
            )
        return rows

    # -- instant events + ledger ----------------------------------------

    def instant(self, name: str, ts: float, vm: Optional[int] = None,
                pool: Optional[int] = None, **args) -> None:
        """Record a provenance event (never sampled out)."""
        self._append({
            "ph": "i", "name": name, "ts": ts,
            "vm": vm, "pool": pool, "args": args,
        })

    def ledger_update(self, cache: str, pool: int, **deltas: int) -> None:
        """Accumulate outcome deltas for ``pool`` of cache ``cache``."""
        pools = self.ledger.get(cache)
        if pools is None:
            pools = self.ledger[cache] = {}
        counters = pools.get(pool)
        if counters is None:
            counters = pools[pool] = dict.fromkeys(LEDGER_FIELDS, 0)
        for field, delta in deltas.items():
            counters[field] += delta

    def note_pool(self, cache: str, pool: int, name: str) -> None:
        self.pool_names[(cache, pool)] = name

    def note_vm(self, cache: str, vm: int, name: str) -> None:
        self.vm_names[(cache, vm)] = name

    # -- internals ------------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(event)

    # -- snapshots ------------------------------------------------------

    def meta(self) -> Dict[str, Any]:
        """Everything the exporters/validators need beyond the events."""
        return {
            "max_events": self.max_events,
            "sample": self.sample,
            "recorded": len(self.events),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "spans_started": self.spans_started,
            "spans_finished": self.spans_finished,
            "open_spans": self.open_spans,
            "ledger": {
                cache: {str(pool): dict(counters)
                        for pool, counters in pools.items()}
                for cache, pools in self.ledger.items()
            },
            "pool_names": {
                f"{cache}/{pool}": name
                for (cache, pool), name in self.pool_names.items()
            },
            "vm_names": {
                f"{cache}/{vm}": name
                for (cache, vm), name in self.vm_names.items()
            },
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
        }


def ledger_violations(tracer: Tracer, cache) -> List[str]:
    """Cross-check the tracer's provenance ledger against ``cache``.

    For every live pool of an observed cache the cumulative ledger must
    equal the pool's own counters field for field — the traced decision
    stream and the shadow-accounted ground truth are two independent
    records of the same ops.  A pool with no ledger entry is compared
    against all-zeros (no traced op ever touched it).  Returns violation
    strings; the auditor folds these into its report.
    """
    label = getattr(cache, "_obs_label", None)
    if label is None:
        return []  # cache was built before tracing was installed
    violations: List[str] = []
    pools_ledger = tracer.ledger.get(label, {})
    for pool in cache._pools.values():
        counters = pools_ledger.get(pool.pool_id)
        stats = pool.stats
        for field in LEDGER_FIELDS:
            traced = counters[field] if counters is not None else 0
            actual = getattr(stats, field)
            if traced != actual:
                violations.append(
                    f"pool {pool.pool_id} ({pool.name!r}): traced {field} = "
                    f"{traced} but pool stats record {actual}"
                )
    return violations


#: The active tracer; ``None`` keeps every instrumented site a no-op.
ACTIVE: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is disabled."""
    return ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or with ``None`` remove) the process-wide tracer.

    Only affects instrumentation sites from this point on; like
    ``set_audit_interval``, callers are expected to install it before
    building the simulation they want observed.
    """
    global ACTIVE
    ACTIVE = tracer
