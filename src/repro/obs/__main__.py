"""``python -m repro.obs`` — trace analysis and validation CLI.

Usage::

    python -m repro.obs summarize trace_caching_modes.jsonl
    python -m repro.obs top-victims trace_caching_modes.jsonl -n 5
    python -m repro.obs latency-breakdown trace_caching_modes.jsonl --per-vm
    python -m repro.obs export trace.jsonl -o trace.perfetto.json
    python -m repro.obs validate trace.jsonl [--allow-open-spans]
    python -m repro.obs smoke

Traces come from the experiment runner::

    python -m repro.experiments caching_modes --scale 0.05 --trace
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analyze import (
    latency_breakdown,
    load_trace,
    run_smoke,
    summarize,
    top_victims,
)
from .export import events_to_perfetto, validate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and validate repro.obs traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="event counts, span time, ledger")
    p.add_argument("trace", help="JSONL trace file")

    p = sub.add_parser("top-victims", help="eviction provenance per pool")
    p.add_argument("trace")
    p.add_argument("-n", "--limit", type=int, default=10)

    p = sub.add_parser("latency-breakdown",
                       help="per-op p50/p90/p99/p999 from the histograms")
    p.add_argument("trace")
    p.add_argument("--per-vm", action="store_true",
                   help="include per-VM and per-pool histograms")

    p = sub.add_parser("export", help="convert JSONL to Perfetto JSON")
    p.add_argument("trace")
    p.add_argument("-o", "--out", default=None,
                   help="output path (default: <trace>.perfetto.json)")

    p = sub.add_parser("validate",
                       help="schema + span-balance + ledger checks")
    p.add_argument("trace")
    p.add_argument("--allow-open-spans", action="store_true",
                   help="tolerate spans left open by a truncated run "
                        "(experiments stopped mid-flight)")

    p = sub.add_parser("smoke",
                       help="run a small traced+audited scenario and "
                            "validate it strictly")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("-q", "--quiet", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "smoke":
        return run_smoke(seed=args.seed, verbose=not args.quiet)

    trace = load_trace(args.trace)
    if args.command == "summarize":
        print(summarize(trace))
        return 0
    if args.command == "top-victims":
        print(top_victims(trace, limit=args.limit))
        return 0
    if args.command == "latency-breakdown":
        print(latency_breakdown(trace, per_vm=args.per_vm))
        return 0
    if args.command == "export":
        out = Path(args.out) if args.out else Path(args.trace).with_suffix(
            ".perfetto.json")
        meta, events = trace
        out.write_text(events_to_perfetto(meta, events) + "\n")
        print(f"wrote {out} ({len(events)} events)")
        return 0
    if args.command == "validate":
        meta, events = trace
        problems = validate_trace(
            meta, events, allow_open_spans=args.allow_open_spans)
        if problems:
            print(f"{args.trace}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"{args.trace}: OK ({len(events)} events, "
              f"{meta['open_spans']} open spans, "
              f"{len(meta.get('ledger', {}))} cache ledgers)")
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
