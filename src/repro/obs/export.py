"""Trace exporters, parsers, and the trace validator.

Two on-disk formats, both plain text:

* **JSONL** — first line is a ``{"type": "meta", ...}`` record (the
  tracer's counters, ledger, and histogram snapshots), every following
  line one ``{"type": "event", ...}`` record.  This is the lossless
  format: :func:`parse_jsonl` returns exactly the dicts
  :func:`to_jsonl` serialized, so analysis tooling round-trips it.
* **Chrome trace-event / Perfetto JSON** — the ``traceEvents`` array
  format that ``chrome://tracing`` and https://ui.perfetto.dev load
  directly.  VMs map to processes (pid), container pools to threads
  (tid); timestamps are converted from simulated seconds to the
  format's microseconds.

:func:`validate_trace` is the schema check CI runs on emitted traces:
field/type validation of every record (hand-enforced, so no external
jsonschema dependency), span-balance (no unclosed spans unless the run
was truncated deliberately), ledger arithmetic (the PR-3 put-outcome
identity ``puts == stored + rejected_*``), and — when the ring buffer
never dropped and sampling was off — a replay check that the provenance
*events* re-add to the cumulative ledger.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from .tracer import LEDGER_FIELDS, Tracer

__all__ = [
    "JSONL_VERSION",
    "EVENT_SCHEMA",
    "to_jsonl",
    "parse_jsonl",
    "to_perfetto",
    "events_to_perfetto",
    "time_scale_us",
    "validate_trace",
]

#: Bumped when the JSONL record shape changes incompatibly.
JSONL_VERSION = 1

#: JSON-Schema-style description of one event record.  Documentation of
#: the wire format; :func:`_check_event` enforces it without needing the
#: ``jsonschema`` package at runtime.
EVENT_SCHEMA = {
    "type": "object",
    "required": ["type", "ph", "name", "ts", "vm", "pool", "args"],
    "properties": {
        "type": {"const": "event"},
        "ph": {"enum": ["X", "i"]},
        "name": {"type": "string", "minLength": 1},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},  # required iff ph == "X"
        "vm": {"type": ["integer", "null"]},
        "pool": {"type": ["integer", "null"]},
        "args": {"type": "object"},
    },
}

_META_COUNTERS = (
    "max_events", "sample", "recorded", "dropped", "sampled_out",
    "spans_started", "spans_finished", "open_spans",
)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def to_jsonl(tracer: Tracer) -> str:
    """Serialize the tracer's meta + ring buffer as a JSONL event log."""
    lines = [json.dumps(
        {"type": "meta", "version": JSONL_VERSION, **tracer.meta()},
        sort_keys=True,
    )]
    for event in tracer.events:
        lines.append(json.dumps({"type": "event", **event}, sort_keys=True))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Inverse of :func:`to_jsonl`: returns ``(meta, events)``.

    Events come back as the exact dicts the tracer recorded (the
    ``"type"`` envelope key stripped), so re-serializing them reproduces
    the file — the round-trip property the exporter tests pin down.
    """
    meta: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("type", None)
        if kind == "meta":
            record.pop("version", None)
            meta = record
        elif kind == "event":
            events.append(record)
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    if not meta:
        raise ValueError("trace has no meta record")
    return meta, events


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ----------------------------------------------------------------------

def _display_names(meta: Dict[str, Any], table: str) -> Dict[int, str]:
    """``{vm_or_pool_id: display name}`` from a meta name table.

    Meta keys are ``"cache_label/id"``; with several caches in one run
    (one per experiment mode) the first label to claim an id wins, which
    is stable because ``meta()`` preserves registration order.
    """
    names: Dict[int, str] = {}
    for key, name in meta.get(table, {}).items():
        ident = int(key.rsplit("/", 1)[1])
        names.setdefault(ident, name)
    return names


def time_scale_us(meta: Dict[str, Any]) -> float:
    """Multiplier from the trace's native time unit to microseconds.

    Simulated traces record seconds; live wall-clock traces declare
    ``"time_unit": "ns"`` in their meta record and record integer
    nanoseconds.  One exporter and one analyzer serve both by scaling
    through this.
    """
    return 1e-3 if meta.get("time_unit") == "ns" else 1e6


def events_to_perfetto(meta: Dict[str, Any],
                       events: Iterable[Dict[str, Any]]) -> str:
    """Render parsed trace records as Chrome trace-event JSON."""
    trace_events: List[Dict[str, Any]] = []
    vm_names = _display_names(meta, "vm_names")
    pool_names = _display_names(meta, "pool_names")
    scale = time_scale_us(meta)
    seen_pids: set = set()
    seen_tids: set = set()
    body: List[Dict[str, Any]] = []
    for event in events:
        pid = event["vm"] if isinstance(event["vm"], int) else 0
        tid = event["pool"] if isinstance(event["pool"], int) else 0
        seen_pids.add(pid)
        seen_tids.add((pid, tid))
        entry: Dict[str, Any] = {
            "name": event["name"],
            "cat": event["name"].split(".", 1)[0],
            "ph": event["ph"],
            "ts": event["ts"] * scale,  # native unit -> microseconds
            "pid": pid,
            "tid": tid,
            "args": event["args"],
        }
        if event["ph"] == "X":
            entry["dur"] = event["dur"] * scale
        else:
            entry["s"] = "t"  # thread-scoped instant
        body.append(entry)
    for pid in sorted(seen_pids):
        label = "host" if pid == 0 else f"vm{pid} ({vm_names.get(pid, '?')})"
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for pid, tid in sorted(seen_tids):
        label = "-" if tid == 0 else f"pool{tid} ({pool_names.get(tid, '?')})"
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
    trace_events.extend(body)
    return json.dumps({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "dropped_events": meta.get("dropped", 0),
            "sampled_out": meta.get("sampled_out", 0),
        },
    }, sort_keys=True)


def to_perfetto(tracer: Tracer) -> str:
    """Render a live tracer as Chrome trace-event JSON."""
    return events_to_perfetto(tracer.meta(), tracer.events)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def _check_event(event: Dict[str, Any], index: int) -> List[str]:
    problems: List[str] = []
    where = f"event[{index}]"
    ph = event.get("ph")
    if ph not in ("X", "i"):
        problems.append(f"{where}: bad ph {ph!r}")
        return problems
    name = event.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: bad name {name!r}")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        problems.append(f"{where} ({name}): bad ts {ts!r}")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            problems.append(f"{where} ({name}): bad dur {dur!r}")
    elif "dur" in event:
        problems.append(f"{where} ({name}): instant event carries dur")
    for field in ("vm", "pool"):
        value = event.get(field, "missing")
        if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
            problems.append(f"{where} ({name}): bad {field} {value!r}")
    if not isinstance(event.get("args"), dict):
        problems.append(f"{where} ({name}): args is not an object")
    return problems


def _replay_provenance(meta: Dict[str, Any],
                       events: Iterable[Dict[str, Any]]) -> List[str]:
    """Re-add the provenance event stream and compare with the ledger.

    Only sound when the ring buffer never overflowed (``dropped == 0``) —
    a wrapped ring legitimately lost early events, and the cumulative
    ledger (kept outside the ring) is then the only exact record.
    """
    problems: List[str] = []
    replayed: Dict[Tuple[str, str], Dict[str, int]] = {}

    def bucket(cache: str, pool: Any) -> Dict[str, int]:
        key = (cache, str(pool))
        entry = replayed.get(key)
        if entry is None:
            entry = replayed[key] = dict.fromkeys(LEDGER_FIELDS, 0)
        return entry

    for event in events:
        name = event.get("name")
        args = event.get("args", {})
        if not isinstance(args, dict):
            continue  # already reported by the schema check
        cache = args.get("cache")
        if cache is None:
            continue
        if name == "put.outcome":
            entry = bucket(cache, event["pool"])
            entry["puts"] += args.get("puts", 0)
            entry["puts_stored"] += args.get("stored", 0)
            entry["put_rejected_policy"] += args.get("rejected_policy", 0)
            entry["put_rejected_capacity"] += args.get("rejected_capacity", 0)
            entry["put_rejected_admission"] += args.get("rejected_admission", 0)
            entry["put_rejected_backpressure"] += args.get(
                "rejected_backpressure", 0)
            entry["ssd_writes"] += args.get("ssd", 0)
        elif name == "evict.round":
            entry = bucket(cache, event["pool"])
            entry["evictions"] += args.get("evicted", 0)
        elif name == "trickle.down":
            entry = bucket(cache, event["pool"])
            entry["ssd_writes"] += args.get("written", 0)
            entry["trickle_rejected_admission"] += args.get(
                "rejected_admission", 0)
        elif name == "migrate":
            source = bucket(cache, args.get("from_pool"))
            source["migrated_out"] += args.get("moved", 0)
            source["migrated_rejected"] += args.get("rejected", 0)
            bucket(cache, args.get("to_pool"))["migrated_in"] += args.get(
                "moved", 0)
        elif name == "migrate.cross_host":
            # Each side of a cross-host VM migration ledgers its own half:
            # the exporter counts moved blocks out, the adopter counts
            # what it accepted and what it turned away.
            entry = bucket(cache, event["pool"])
            if args.get("direction") == "out":
                entry["migrated_out"] += args.get("moved", 0)
            else:
                entry["migrated_in"] += args.get("moved", 0)
                entry["migrated_rejected"] += args.get("rejected", 0)

    checked_fields = (
        "puts", "puts_stored", "put_rejected_policy", "put_rejected_capacity",
        "put_rejected_admission", "put_rejected_backpressure",
        "evictions", "trickle_rejected_admission", "ssd_writes",
        "migrated_in", "migrated_out", "migrated_rejected",
    )
    ledger = meta.get("ledger", {})
    for (cache, pool), entry in sorted(replayed.items()):
        recorded = ledger.get(cache, {}).get(pool)
        if recorded is None:
            problems.append(
                f"provenance events reference cache {cache!r} pool {pool} "
                f"absent from the ledger"
            )
            continue
        for field in checked_fields:
            if entry[field] != recorded.get(field, 0):
                problems.append(
                    f"cache {cache!r} pool {pool}: replayed {field} = "
                    f"{entry[field]} but the ledger records "
                    f"{recorded.get(field, 0)}"
                )
    return problems


def validate_trace(meta: Dict[str, Any], events: List[Dict[str, Any]],
                   allow_open_spans: bool = False) -> List[str]:
    """Full trace check; returns violation strings (empty = valid)."""
    problems: List[str] = []
    for counter in _META_COUNTERS:
        value = meta.get(counter)
        if not isinstance(value, int) or value < 0:
            problems.append(f"meta: bad {counter} {value!r}")
    if problems:
        return problems  # counters unusable; further checks would lie

    if meta["open_spans"] and not allow_open_spans:
        problems.append(
            f"{meta['open_spans']} unclosed span(s): "
            f"{meta['spans_started']} begun, {meta['spans_finished']} finished "
            f"(pass --allow-open-spans for deliberately truncated runs)"
        )
    if meta["recorded"] != len(events):
        problems.append(
            f"meta says {meta['recorded']} events recorded but the log "
            f"holds {len(events)}"
        )
    for index, event in enumerate(events):
        problems.extend(_check_event(event, index))

    last_ts = None
    for index, event in enumerate(events):
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            continue  # already reported
        if event.get("ph") == "i":
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event[{index}] ({event.get('name')}): instant events "
                    f"out of order ({ts} after {last_ts})"
                )
            last_ts = ts

    # Ledger arithmetic: the put-outcome identity per cache/pool.
    for cache, pools in sorted(meta.get("ledger", {}).items()):
        for pool, counters in sorted(pools.items()):
            label = f"cache {cache!r} pool {pool}"
            for field, value in counters.items():
                if not isinstance(value, int) or value < 0:
                    problems.append(f"{label}: bad ledger field {field}={value!r}")
            accounted = (
                counters.get("puts_stored", 0)
                + counters.get("put_rejected_policy", 0)
                + counters.get("put_rejected_capacity", 0)
                + counters.get("put_rejected_admission", 0)
                + counters.get("put_rejected_backpressure", 0)
            )
            if counters.get("puts", 0) != accounted:
                problems.append(
                    f"{label}: put ledger leaks — {counters.get('puts', 0)} "
                    f"puts but {accounted} accounted"
                )
            if counters.get("get_hits", 0) > counters.get("gets", 0):
                problems.append(
                    f"{label}: more hits ({counters.get('get_hits', 0)}) "
                    f"than gets ({counters.get('gets', 0)})"
                )

    if meta["dropped"] == 0 and meta["sample"] == 1:
        problems.extend(_replay_provenance(meta, events))
    return problems
