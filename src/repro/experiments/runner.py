"""Experiment scaffolding: results containers and measurement helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..context import SimContext
from ..metrics import TimeSeries, ascii_plot, format_table
from ..workloads import CounterSnapshot, Workload

__all__ = ["Experiment", "ExperimentResult", "measure_window", "OccupancySampler"]


@dataclass
class ExperimentResult:
    """Everything one experiment produced.

    ``rows`` holds raw table data (name -> header + row tuples) and
    ``series`` the occupancy traces; :meth:`summary` renders both the way
    the paper's tables/figures report them.
    """

    name: str
    description: str = ""
    rows: Dict[str, Tuple[Sequence[str], List[Sequence[object]]]] = field(
        default_factory=dict
    )
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    scalars: Dict[str, float] = field(default_factory=dict)

    def add_table(self, key: str, headers: Sequence[str],
                  table_rows: List[Sequence[object]]) -> None:
        self.rows[key] = (headers, table_rows)

    def add_series(self, key: str, series: TimeSeries) -> None:
        self.series[key] = series

    def note(self, text: str) -> None:
        self.notes.append(text)

    def summary(self, plots: bool = True) -> str:
        """Human-readable rendition of all tables (and optionally plots)."""
        parts: List[str] = [f"== {self.name} ==", self.description]
        for key, (headers, table_rows) in self.rows.items():
            parts.append("")
            parts.append(format_table(headers, table_rows, title=f"-- {key} --"))
        if plots and self.series:
            groups: Dict[str, Dict[str, TimeSeries]] = {}
            for key, ts in self.series.items():
                group, _, label = key.partition("/")
                groups.setdefault(group, {})[label or key] = ts
            for group, members in groups.items():
                parts.append("")
                parts.append(ascii_plot(members, title=f"-- {group} (MB over time) --"))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)


class Experiment(abc.ABC):
    """Base class: every paper table/figure gets one subclass."""

    #: Experiment id from DESIGN.md's index, e.g. ``"FIG-8"``.
    exp_id: str = ""
    name: str = ""
    description: str = ""

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    @abc.abstractmethod
    def run(self) -> ExperimentResult:
        """Execute the experiment and return its result."""

    # -- scaling helpers ------------------------------------------------------

    def mb(self, megabytes: float) -> float:
        """Scale a memory/dataset size."""
        return megabytes * self.scale

    def count(self, n: int) -> int:
        """Scale an object count (files, records)."""
        return max(1, int(n * self.scale))

    def secs(self, seconds: float) -> float:
        """Scale a duration (sub-linear so small scales stay meaningful)."""
        return seconds * max(0.25, min(1.0, self.scale))


def measure_window(
    ctx: SimContext,
    workloads: Sequence[Workload],
    warmup_s: float,
    duration_s: float,
) -> Dict[str, dict]:
    """Run warm-up then a measurement window; returns per-workload rates."""
    ctx.run(until=ctx.now + warmup_s)
    begin: Dict[str, CounterSnapshot] = {
        workload.name: workload.snapshot() for workload in workloads
    }
    ctx.run(until=ctx.now + duration_s)
    rates: Dict[str, dict] = {}
    for workload in workloads:
        rates[workload.name] = workload.snapshot().rates_since(begin[workload.name])
    return rates


class OccupancySampler:
    """Periodically samples hypervisor-cache occupancy per container/VM."""

    def __init__(self, ctx: SimContext, interval_s: float = 10.0) -> None:
        self.ctx = ctx
        self.interval_s = interval_s
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        self._series: Dict[str, TimeSeries] = {}
        self._proc = None

    def watch_pool(self, cache, label: str, pool_id: int, kind=None) -> None:
        """Track one container's pool occupancy in MB.

        ``cache``, ``pool_id``, and ``kind`` are bound eagerly (default
        arguments, not free closure variables) so gauges registered in a
        loop — or against two different caches in one experiment — each
        sample the cache they were registered with.
        """
        def gauge(cache=cache, pool_id=pool_id, kind=kind) -> float:
            return cache.pool_used_mb(pool_id, kind)

        self._gauges.append((label, gauge))

    def watch_vm(self, cache, label: str, vm_id: int, kind=None) -> None:
        """Track one VM's total occupancy in MB (same eager binding)."""
        def gauge(cache=cache, vm_id=vm_id, kind=kind) -> float:
            return cache.vm_used_mb(vm_id, kind)

        self._gauges.append((label, gauge))

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.ctx.env.process(self._loop(), name="occupancy-sampler")

    def _loop(self):
        while True:
            now = self.ctx.now
            for label, gauge in self._gauges:
                series = self._series.get(label)
                if series is None:
                    series = TimeSeries(label)
                    self._series[label] = series
                series.record(now, gauge())
            yield self.ctx.env.timeout(self.interval_s)

    @property
    def series(self) -> Dict[str, TimeSeries]:
        return self._series
