"""FIG-1 / FIG-2 — the motivation experiment (§2.3).

A nesting-agnostic ("Global") hypervisor cache distributes itself across
two identical-limit containers in a non-deterministic, IO-rate-dependent
way: each container fills the whole cache when run alone, but together the
heavier container grabs a disproportionate share, and start-time offsets
flip who owns the cache over time.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..context import SimContext
from ..hypervisor import HostSpec
from ..workloads import WebserverWorkload
from .runner import Experiment, ExperimentResult, OccupancySampler

__all__ = ["MotivationExperiment"]


class MotivationExperiment(Experiment):
    """Two webserver containers under a global (container-agnostic) cache."""

    exp_id = "FIG-1/FIG-2"
    name = "motivation"
    description = (
        "Hypervisor cache distribution across two containers in one VM under "
        "a nesting-agnostic global cache: run separately (Fig 1), started "
        "together, and offset by 200 s (Fig 2)."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 duration_s: Optional[float] = None) -> None:
        super().__init__(scale, seed)
        self.duration_s = duration_s if duration_s is not None else self.secs(800.0)
        self.offset_s = self.secs(200.0)

    # -- scenario plumbing ---------------------------------------------------

    def _build(self, run_c1: bool, run_c2: bool, c2_delay: float = 0.0):
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        cache = host.install_global_cache(
            capacity_mb=self.mb(1024), per_vm_cap_mb=self.mb(1024)
        )
        vm = host.create_vm("vm1", memory_mb=self.mb(2048), vcpus=4)
        containers = {}
        workloads = {}
        limit = self.mb(768)
        sampler = OccupancySampler(ctx, interval_s=max(1.0, self.duration_s / 100))
        specs = [
            ("container1", 2, run_c1, 0.0),
            ("container2", 3, run_c2, c2_delay),
        ]
        for name, threads, enabled, delay in specs:
            if not enabled:
                continue
            container = vm.create_container(name, limit)
            workload = WebserverWorkload(
                name=f"web-{name}",
                nfiles=self.count(14000),
                mean_size_kb=128.0,
                threads=threads,
            )
            containers[name] = container
            workloads[name] = workload
            if delay <= 0:
                workload.start(container, ctx.streams)
            else:
                def starter(env, wl=workload, cont=container, d=delay):
                    yield env.timeout(d)
                    wl.start(cont, ctx.streams)
                ctx.env.process(starter(ctx.env), name=f"start-{name}")
            sampler.watch_pool(cache, name, container.pool_id)
        sampler.start()
        return ctx, sampler, workloads

    def _run_scenario(self, label: str, result: ExperimentResult,
                      run_c1: bool, run_c2: bool, c2_delay: float = 0.0) -> Dict[str, float]:
        ctx, sampler, workloads = self._build(run_c1, run_c2, c2_delay)
        ctx.run(until=self.duration_s)
        peaks = {}
        for name, series in sampler.series.items():
            result.add_series(f"{label}/{name}", series)
            half = self.duration_s / 2
            peaks[name] = series.mean(start=half)
        return peaks

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        alone1 = self._run_scenario("fig1a-container1-alone", result,
                                    run_c1=True, run_c2=False)
        alone2 = self._run_scenario("fig1b-container2-alone", result,
                                    run_c1=False, run_c2=True)
        together = self._run_scenario("fig2a-simultaneous", result,
                                      run_c1=True, run_c2=True)
        offset = self._run_scenario("fig2b-offset-200s", result,
                                    run_c1=True, run_c2=True,
                                    c2_delay=self.offset_s)

        cache_mb = self.mb(1024)
        rows = [
            ["container1 alone", round(alone1.get("container1", 0.0)), "-", cache_mb],
            ["container2 alone", "-", round(alone2.get("container2", 0.0)), cache_mb],
            [
                "simultaneous",
                round(together.get("container1", 0.0)),
                round(together.get("container2", 0.0)),
                cache_mb,
            ],
            [
                "offset 200s",
                round(offset.get("container1", 0.0)),
                round(offset.get("container2", 0.0)),
                cache_mb,
            ],
        ]
        result.add_table(
            "steady-state cache share (MB, mean of second half)",
            ["scenario", "container1", "container2", "cache capacity"],
            rows,
        )
        if together:
            c1 = max(1e-9, together.get("container1", 0.0))
            result.scalars["simultaneous_share_ratio"] = (
                together.get("container2", 0.0) / c1
            )
        result.note(
            "Paper shape: alone, each container fills the cache; together, "
            "container2 (3 threads) holds ~2x container1's share; with a "
            "200 s offset container1 dominates early and is overtaken later."
        )
        return result
