"""FIG-12 / FIG-13 — dynamic cache management (§5.3).

Two experiments demonstrate that DoubleDecker reacts to *live*
re-provisioning at both nesting levels:

* **Containers (Fig 12):** two containers (60/40) are joined at 900 s by a
  videoserver container (weights become 50/30/20); at 1800 s the video
  container is switched to the SSD store and the memory weights reset to
  60/40.
* **VMs (Fig 13):** four VMs boot 600 s apart: VM1 alone (weight 100),
  VM2 joins (60/40), VM3 is SSD-only (does not disturb the memory split),
  VM4 joins as the memory store is grown from 2 GB to 4 GB with weights
  40/35/25.
"""

from __future__ import annotations

from typing import Dict, List

from ..context import SimContext
from ..core import CachePolicy, DDConfig, StoreKind
from ..hypervisor import HostSpec
from ..workloads import (
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from .runner import Experiment, ExperimentResult, OccupancySampler

__all__ = ["DynamicContainersExperiment", "DynamicVMsExperiment"]


class DynamicContainersExperiment(Experiment):
    """Fig 12: weight changes and a store switch, within one VM."""

    exp_id = "FIG-12"
    name = "dynamic_containers"
    description = (
        "Live container-level policy changes: a third container joins at "
        "T/3 (weights 60/40 -> 50/30/20), then moves to the SSD store at "
        "2T/3 (memory weights reset to 60/40)."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 phase_s: float = None) -> None:
        super().__init__(scale, seed)
        #: Length of each of the three phases (paper: 900 s).
        self.phase_s = phase_s if phase_s is not None else self.secs(900.0)

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(DDConfig(
            mem_capacity_mb=self.mb(1024), ssd_capacity_mb=self.mb(245760)
        ))
        vm = host.create_vm("vm1", memory_mb=self.mb(6144), vcpus=8)

        c1 = vm.create_container("container1", self.mb(1024), CachePolicy.memory(60))
        c2 = vm.create_container("container2", self.mb(1024), CachePolicy.memory(40))
        w1 = WebserverWorkload(nfiles=self.count(14000), mean_size_kb=128.0,
                               threads=2, cpu_think_ms=3.0)
        w2 = WebproxyWorkload(nfiles=self.count(14000), mean_size_kb=64.0, threads=2)
        w1.start(c1, ctx.streams)
        w2.start(c2, ctx.streams)

        sampler = OccupancySampler(ctx, interval_s=max(1.0, self.phase_s / 30))
        sampler.watch_pool(cache, "container1", c1.pool_id, StoreKind.MEMORY)
        sampler.watch_pool(cache, "container2", c2.pool_id, StoreKind.MEMORY)
        sampler.start()
        state: Dict[str, object] = {}

        def orchestrator(env):
            # Phase 2: the videoserver container boots; weights 50/30/20.
            yield env.timeout(self.phase_s)
            c3 = vm.create_container("container3", self.mb(1024),
                                     CachePolicy.memory(20))
            w3 = VideoserverWorkload(nvideos=12, video_mb=self.mb(256.0),
                                     threads=2, stream_pace_ms=2.0)
            w3.start(c3, ctx.streams)
            state["c3"] = c3
            sampler.watch_pool(cache, "container3-mem", c3.pool_id,
                               StoreKind.MEMORY)
            sampler.watch_pool(cache, "container3-ssd", c3.pool_id,
                               StoreKind.SSD)
            c1.set_cache_policy(CachePolicy.memory(50))
            c2.set_cache_policy(CachePolicy.memory(30))
            # Phase 3: video moves to the SSD store; memory back to 60/40.
            yield env.timeout(self.phase_s)
            c3.set_cache_policy(CachePolicy.ssd(100))
            c1.set_cache_policy(CachePolicy.memory(60))
            c2.set_cache_policy(CachePolicy.memory(40))

        ctx.env.process(orchestrator(ctx.env), name="fig12-orchestrator")
        ctx.run(until=3 * self.phase_s)

        for label, series in sampler.series.items():
            result.add_series(f"fig12/{label}", series)

        # Phase means capture the redistribution the paper narrates.
        rows: List[List[object]] = []
        for label, series in sampler.series.items():
            rows.append([
                label,
                round(series.mean(start=0.5 * self.phase_s, end=self.phase_s)),
                round(series.mean(start=1.5 * self.phase_s, end=2 * self.phase_s)),
                round(series.mean(start=2.5 * self.phase_s, end=3 * self.phase_s)),
            ])
        result.add_table(
            "fig12: per-phase mean cache occupancy (MB)",
            ["container", "phase1 (2 ctrs)", "phase2 (3 ctrs)", "phase3 (video->SSD)"],
            rows,
        )
        result.note(
            "Paper shape: ~600/400 MB split; then ~500/300/200 when the "
            "video container joins; then back to 60:40 with the video "
            "pool living on the SSD."
        )
        return result


class DynamicVMsExperiment(Experiment):
    """Fig 13: staggered VM boots, an SSD-only VM, and a live cache grow."""

    exp_id = "FIG-13"
    name = "dynamic_vms"
    description = (
        "VM-level dynamics: VM1 (100) -> +VM2 (60/40) -> +VM3 (SSD-only, "
        "memory split undisturbed) -> +VM4 with the memory store grown "
        "2 GB -> 4 GB and weights 40/35/25."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 phase_s: float = None) -> None:
        super().__init__(scale, seed)
        #: Interval between VM boots (paper: 600 s).
        self.phase_s = phase_s if phase_s is not None else self.secs(600.0)

    def _launch_vm(self, ctx, host, cache, sampler, name: str, weight: float,
                   policy: CachePolicy):
        vm = host.create_vm(name, memory_mb=self.mb(4096), vcpus=4,
                            cache_weight=weight)
        container = vm.create_container(f"{name}-video", self.mb(1024), policy)
        workload = VideoserverWorkload(
            name=f"{name}-video", nvideos=12, video_mb=self.mb(256.0),
            threads=2, stream_pace_ms=2.0,
        )
        workload.start(container, ctx.streams)
        kind = (StoreKind.SSD if policy.ssd_weight > 0 else StoreKind.MEMORY)
        sampler.watch_vm(cache, name, vm.vm_id, kind)
        return vm

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        cache = host.install_doubledecker(DDConfig(
            mem_capacity_mb=self.mb(2048), ssd_capacity_mb=self.mb(245760)
        ))
        sampler = OccupancySampler(ctx, interval_s=max(1.0, self.phase_s / 20))
        sampler.start()
        vms: Dict[str, object] = {}

        vms["vm1"] = self._launch_vm(ctx, host, cache, sampler, "vm1", 100,
                                     CachePolicy.memory(100))

        def orchestrator(env):
            yield env.timeout(self.phase_s)
            vms["vm2"] = self._launch_vm(ctx, host, cache, sampler, "vm2", 40,
                                         CachePolicy.memory(100))
            host.set_vm_cache_weight(vms["vm1"], 60)
            yield env.timeout(self.phase_s)
            # VM3 is SSD-only: the memory split must stay 60/40.
            vms["vm3"] = self._launch_vm(ctx, host, cache, sampler, "vm3", 100,
                                         CachePolicy.ssd(100))
            yield env.timeout(self.phase_s)
            vms["vm4"] = self._launch_vm(ctx, host, cache, sampler, "vm4", 25,
                                         CachePolicy.memory(100))
            cache.set_capacity(StoreKind.MEMORY, self.mb(4096))
            host.set_vm_cache_weight(vms["vm1"], 40)
            host.set_vm_cache_weight(vms["vm2"], 35)

        ctx.env.process(orchestrator(ctx.env), name="fig13-orchestrator")
        ctx.run(until=4 * self.phase_s)

        for label, series in sampler.series.items():
            result.add_series(f"fig13/{label}", series)

        rows: List[List[object]] = []
        for label, series in sampler.series.items():
            row: List[object] = [label]
            for phase in range(4):
                start = (phase + 0.5) * self.phase_s
                end = (phase + 1) * self.phase_s
                row.append(round(series.mean(start=start, end=end)))
            rows.append(row)
        result.add_table(
            "fig13: per-phase mean cache occupancy (MB)",
            ["vm", "phase1 (VM1)", "phase2 (+VM2)", "phase3 (+VM3 SSD)",
             "phase4 (+VM4, 4GB)"],
            rows,
        )
        result.note(
            "Paper shape: VM1 fills 2 GB alone; 60/40 (~1200/800) with VM2; "
            "VM3 on SSD leaves that split untouched; after the grow to 4 GB "
            "and 40/35/25 weights: ~1600/1400/1000."
        )
        return result
