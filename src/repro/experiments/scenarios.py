"""Declarative scenario builder.

Experiments in this repository are hand-written classes; users composing
their *own* derivative-cloud studies shouldn't need that.  A
:class:`Scenario` describes a host, its hypervisor cache, VMs, containers,
workloads, and timed policy events as plain data, then runs the whole
thing and returns per-workload rates plus cache statistics::

    from repro.experiments.scenarios import Scenario

    scenario = (
        Scenario(seed=7)
        .cache("doubledecker", mem_mb=1024)
        .vm("vm1", memory_mb=4096, weight=100)
        .container("vm1", "web", limit_mb=1024, policy="mem:60",
                   workload=("webserver", {"nfiles": 8000}))
        .container("vm1", "mail", limit_mb=1024, policy="mem:40",
                   workload=("varmail", {"nfiles": 10000}))
        .at(600, "set_policy", container="mail", policy="ssd:100")
    )
    result = scenario.run(warmup_s=300, duration_s=600)
    print(result.table())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..context import SimContext
from ..core import CachePolicy, DDConfig, StoreKind
from ..hypervisor import HostSpec
from ..metrics import format_table
from ..workloads import (
    FileserverWorkload,
    MongoWorkload,
    MySQLWorkload,
    OLTPWorkload,
    RedisWorkload,
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from .runner import OccupancySampler

__all__ = ["Scenario", "ScenarioResult", "parse_policy", "WORKLOAD_TYPES"]

#: Workload type registry for declarative specs.
WORKLOAD_TYPES = {
    "webserver": WebserverWorkload,
    "webproxy": WebproxyWorkload,
    "varmail": VarmailWorkload,
    "mail": VarmailWorkload,
    "videoserver": VideoserverWorkload,
    "fileserver": FileserverWorkload,
    "oltp": OLTPWorkload,
    "redis": RedisWorkload,
    "mysql": MySQLWorkload,
    "mongodb": MongoWorkload,
}


def parse_policy(spec: Union[str, CachePolicy, None]) -> CachePolicy:
    """Parse ``"mem:60"`` / ``"ssd:100"`` / ``"hybrid:40:60"`` / ``"none"``.

    SSD-backed kinds accept an optional trailing admission-policy name,
    e.g. ``"ssd:100:second_access"`` or ``"hybrid:40:60:write_throttle"``.
    """
    if spec is None:
        return CachePolicy.none()
    if isinstance(spec, CachePolicy):
        return spec
    parts = str(spec).lower().split(":")
    kind = parts[0]
    try:
        if kind == "none":
            return CachePolicy.none()
        if kind == "mem":
            return CachePolicy.memory(float(parts[1]))
        if kind == "ssd":
            admission = parts[2] if len(parts) > 2 else None
            return CachePolicy.ssd(float(parts[1]), admission=admission)
        if kind == "hybrid":
            admission = parts[3] if len(parts) > 3 else None
            return CachePolicy.hybrid(float(parts[1]), float(parts[2]),
                                      admission=admission)
    except (IndexError, ValueError) as exc:
        raise ValueError(f"malformed policy spec {spec!r}") from exc
    raise ValueError(f"unknown policy kind {kind!r} in {spec!r}")


@dataclass
class _VMSpec:
    name: str
    memory_mb: float
    vcpus: int
    weight: float
    readahead_blocks: int


@dataclass
class _ContainerSpec:
    vm: str
    name: str
    limit_mb: float
    policy: CachePolicy
    workload_type: Optional[str]
    workload_args: Dict[str, Any]
    start_at: float
    partition_mb: Optional[float]


@dataclass
class _Event:
    time: float
    action: str
    kwargs: Dict[str, Any]


@dataclass
class ScenarioResult:
    """Rates and cache stats for every workload-bearing container."""

    rates: Dict[str, dict]
    cache_stats: Dict[str, Any]
    series: Dict[str, Any]
    duration_s: float

    def table(self) -> str:
        headers = ["container", "ops/s", "MB/s", "lat (ms)",
                   "hvcache MB", "hit %", "evictions"]
        rows: List[List[object]] = []
        for name in sorted(self.rates):
            rate = self.rates[name]
            stats = self.cache_stats.get(name)
            rows.append([
                name,
                round(rate["ops_per_s"], 1),
                round(rate["mb_per_s"], 2),
                round(rate["mean_latency_ms"], 2),
                round(rate.get("hvcache_mb", 0.0), 1),
                round(100 * stats.hit_ratio, 1) if stats else "-",
                stats.evictions if stats else "-",
            ])
        return format_table(headers, rows, title="scenario results")


class Scenario:
    """A declarative derivative-cloud scenario (see module docstring)."""

    def __init__(self, seed: int = 42, host_spec: Optional[HostSpec] = None) -> None:
        self.seed = seed
        self.host_spec = host_spec
        self._cache_kind = "doubledecker"
        self._cache_kwargs: Dict[str, Any] = {"mem_mb": 1024.0}
        self._vms: List[_VMSpec] = []
        self._containers: List[_ContainerSpec] = []
        self._events: List[_Event] = []
        self._custom_events: List[Tuple[float, Callable]] = []

    # -- declaration -----------------------------------------------------------

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Scenario":
        """Build a scenario from a JSON-able dict::

            {
              "seed": 7,
              "cache": {"kind": "doubledecker", "mem_mb": 1024},
              "vms": [
                {"name": "vm1", "memory_mb": 4096, "weight": 100,
                 "containers": [
                   {"name": "web", "limit_mb": 1024, "policy": "mem:60",
                    "workload": {"type": "webserver", "nfiles": 8000}}
                 ]}
              ],
              "events": [
                {"at": 600, "action": "set_policy",
                 "container": "web", "policy": "ssd:100"}
              ]
            }
        """
        scenario = cls(seed=int(spec.get("seed", 42)))
        cache_spec = dict(spec.get("cache", {}))
        if cache_spec:
            kind = cache_spec.pop("kind", "doubledecker")
            scenario.cache(kind, **cache_spec)
        for vm_spec in spec.get("vms", []):
            vm_spec = dict(vm_spec)
            containers = vm_spec.pop("containers", [])
            name = vm_spec.pop("name")
            scenario.vm(name, **vm_spec)
            for container_spec in containers:
                container_spec = dict(container_spec)
                workload_spec = container_spec.pop("workload", None)
                workload = None
                if workload_spec is not None:
                    workload_spec = dict(workload_spec)
                    workload = (workload_spec.pop("type"), workload_spec)
                scenario.container(
                    name, container_spec.pop("name"),
                    container_spec.pop("limit_mb"),
                    policy=container_spec.pop("policy", None),
                    workload=workload,
                    **container_spec,
                )
        for event_spec in spec.get("events", []):
            event_spec = dict(event_spec)
            time_ = event_spec.pop("at")
            action = event_spec.pop("action")
            scenario.at(time_, action, **event_spec)
        return scenario

    def cache(self, kind: str, **kwargs) -> "Scenario":
        """Choose the hypervisor cache: ``doubledecker`` (mem_mb, ssd_mb,
        plus any DDConfig field), ``global`` (capacity_mb, per_vm_cap_mb),
        ``static`` (capacity_mb), or ``none``."""
        if kind not in ("doubledecker", "global", "static", "none"):
            raise ValueError(f"unknown cache kind {kind!r}")
        self._cache_kind = kind
        self._cache_kwargs = dict(kwargs)
        return self

    def vm(self, name: str, memory_mb: float, vcpus: int = 4,
           weight: float = 100.0, readahead_blocks: int = 0) -> "Scenario":
        self._vms.append(_VMSpec(name, memory_mb, vcpus, weight,
                                 readahead_blocks))
        return self

    def container(self, vm: str, name: str, limit_mb: float,
                  policy: Union[str, CachePolicy, None] = None,
                  workload: Optional[Tuple[str, Dict[str, Any]]] = None,
                  start_at: float = 0.0,
                  partition_mb: Optional[float] = None) -> "Scenario":
        """Add a container; ``partition_mb`` assigns a hard cap when the
        scenario runs the ``static`` (Morai-like) cache."""
        workload_type, workload_args = (None, {})
        if workload is not None:
            workload_type, workload_args = workload
            if workload_type not in WORKLOAD_TYPES:
                raise ValueError(f"unknown workload type {workload_type!r}")
        self._containers.append(_ContainerSpec(
            vm=vm, name=name, limit_mb=limit_mb,
            policy=parse_policy(policy),
            workload_type=workload_type,
            workload_args=dict(workload_args),
            start_at=start_at,
            partition_mb=partition_mb,
        ))
        return self

    def at(self, time: float, action: Union[str, Callable], **kwargs) -> "Scenario":
        """Schedule an event: ``set_policy`` (container=, policy=),
        ``set_limit`` (container=, limit_mb=), ``set_vm_weight`` (vm=,
        weight=), ``set_capacity`` (store=, mb=), or a callable receiving
        the live runtime dict."""
        if callable(action):
            self._custom_events.append((time, action))
            return self
        if action not in ("set_policy", "set_limit", "set_vm_weight",
                          "set_capacity"):
            raise ValueError(f"unknown event action {action!r}")
        self._events.append(_Event(time, action, kwargs))
        return self

    # -- execution ---------------------------------------------------------------

    def _install_cache(self, host):
        kind = self._cache_kind
        kwargs = dict(self._cache_kwargs)
        if kind == "doubledecker":
            mem_mb = kwargs.pop("mem_mb", 1024.0)
            ssd_mb = kwargs.pop("ssd_mb", 0.0)
            return host.install_doubledecker(DDConfig(
                mem_capacity_mb=mem_mb, ssd_capacity_mb=ssd_mb, **kwargs
            ))
        if kind == "global":
            return host.install_global_cache(
                capacity_mb=kwargs.pop("capacity_mb", 1024.0), **kwargs
            )
        if kind == "static":
            return host.install_static_partition(
                capacity_mb=kwargs.pop("capacity_mb", 1024.0)
            )
        return host.install_null_cache()

    def run(self, warmup_s: float = 120.0, duration_s: float = 300.0,
            sample_interval_s: float = 10.0) -> ScenarioResult:
        """Build everything, run warm-up + measurement, return results."""
        if not self._vms:
            raise ValueError("scenario has no VMs")
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(self.host_spec)
        cache = self._install_cache(host)

        vms = {}
        for spec in self._vms:
            vms[spec.name] = host.create_vm(
                spec.name, memory_mb=spec.memory_mb, vcpus=spec.vcpus,
                cache_weight=spec.weight,
                readahead_blocks=spec.readahead_blocks,
            )

        sampler = OccupancySampler(ctx, interval_s=sample_interval_s)
        containers = {}
        workloads = {}

        def boot_container(spec: _ContainerSpec):
            vm = vms[spec.vm]
            container = vm.create_container(spec.name, spec.limit_mb,
                                            spec.policy)
            containers[spec.name] = container
            if spec.partition_mb is not None and hasattr(cache, "set_partition"):
                cache.set_partition(container.pool_id, spec.partition_mb)
            if hasattr(cache, "pool_used_mb"):
                sampler.watch_pool(cache, spec.name, container.pool_id)
            if spec.workload_type is not None:
                workload_cls = WORKLOAD_TYPES[spec.workload_type]
                workload = workload_cls(name=spec.name, **spec.workload_args)
                workload.start(container, ctx.streams)
                workloads[spec.name] = workload

        for spec in self._containers:
            if spec.vm not in vms:
                raise ValueError(f"container {spec.name!r} references "
                                 f"unknown VM {spec.vm!r}")
            if spec.start_at <= 0:
                boot_container(spec)
            else:
                def delayed(env, spec=spec):
                    yield env.timeout(spec.start_at)
                    boot_container(spec)
                ctx.env.process(delayed(ctx.env), name=f"boot-{spec.name}")
        sampler.start()

        runtime = {"ctx": ctx, "host": host, "cache": cache, "vms": vms,
                   "containers": containers, "workloads": workloads}

        def run_event(event: _Event):
            if event.action == "set_policy":
                containers[event.kwargs["container"]].set_cache_policy(
                    parse_policy(event.kwargs["policy"]))
            elif event.action == "set_limit":
                containers[event.kwargs["container"]].set_memory_limit_mb(
                    event.kwargs["limit_mb"])
            elif event.action == "set_vm_weight":
                host.set_vm_cache_weight(vms[event.kwargs["vm"]],
                                         event.kwargs["weight"])
            elif event.action == "set_capacity":
                store = (StoreKind.SSD if str(event.kwargs["store"]).lower()
                         == "ssd" else StoreKind.MEMORY)
                cache.set_capacity(store, event.kwargs["mb"])

        for event in self._events:
            def fire(env, event=event):
                yield env.timeout(event.time)
                run_event(event)
            ctx.env.process(fire(ctx.env), name=f"event@{event.time}")
        for time_, fn in self._custom_events:
            def fire_custom(env, time_=time_, fn=fn):
                yield env.timeout(time_)
                fn(runtime)
            ctx.env.process(fire_custom(ctx.env), name=f"custom@{time_}")

        # Inline measurement (not measure_window): containers may boot
        # mid-run, so the workload set is only known after warm-up.
        ctx.run(until=ctx.now + warmup_s)
        warmup_end = ctx.now
        begin = {name: w.snapshot() for name, w in workloads.items()}
        ctx.run(until=ctx.now + duration_s)
        rates: Dict[str, dict] = {}
        for name, workload in workloads.items():
            baseline = begin.get(name)
            if baseline is None:
                # Booted during the measurement window: rate everything it
                # did against the full window.
                from ..workloads import CounterSnapshot

                baseline = CounterSnapshot(
                    time=warmup_end, ops=0, bytes_read=0, bytes_written=0,
                    latency_total=0.0, latency_count=0,
                )
            rates[name] = workload.snapshot().rates_since(baseline)
        cache_stats = {}
        for name, container in containers.items():
            stats = container.cache_stats()
            cache_stats[name] = stats
            if name in rates:
                rates[name]["hvcache_mb"] = container.hvcache_mb
        return ScenarioResult(
            rates=rates,
            cache_stats=cache_stats,
            series=dict(sampler.series),
            duration_s=duration_s,
        )
