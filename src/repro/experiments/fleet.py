"""FLEET-1 — multi-host cooperative caching across a fleet (§3/§6 outlook).

The paper evaluates DoubleDecker on one host; this experiment scales the
same machinery out to a *fleet*: N hosts, each a private simulation
shard, coupled only by the inter-host network model.  One host is
deliberately overloaded (hot), one deliberately idle (cold), the rest
run moderate load — which exercises both cooperation mechanisms:

* **remote-memory lending** — the coordinator periodically moves slack
  capacity from cold hosts to pressured ones;
* **VM live-migration** — two VMs are evacuated from the hot host to the
  cold host mid-run, their cached blocks shipped and adopted with
  per-block accept/reject accounting.

The run always produces latency histograms at both aggregation levels:
fleet-wide ``obs.lat.{op}`` and per-host ``obs.lat.hostN.{op}`` (a
tracer is installed for the duration if none is active).  Reported:
per-host and fleet-wide cache behaviour, both latency tables, the
migration ledger, and the lending grant history.  The fleet's invariants
(:func:`~repro.fleet.check_fleet`) are asserted at the end of the run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import CachePolicy, DDConfig, StoreKind
from ..fleet import Fleet, assert_fleet_clean
from ..obs import Tracer, set_tracer
from ..obs import tracer as _obs
from ..storage import MB
from ..workloads import VarmailWorkload, WebproxyWorkload, WebserverWorkload
from .runner import Experiment, ExperimentResult

__all__ = ["FleetExperiment"]

_MEMORY = StoreKind.MEMORY

#: Per-host load factor: index 0 is the hot host, the last host is the
#: cold one (the migration target and lending donor), the rest moderate.
_HOT, _MODERATE, _COLD = 2.0, 0.7, 0.15


class FleetExperiment(Experiment):
    """N-host fleet: sharded simulation, lending, and live migration."""

    exp_id = "FLEET-1"
    name = "fleet"
    description = (
        "Multi-host cooperative caching: one overloaded host, one idle "
        "host, remote-memory lending plus two live migrations; per-host "
        "and fleet-wide cache behaviour and latency."
    )
    #: The CLI threads ``--hosts``/``--jobs`` into this experiment only.
    takes_fleet_args = True

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 hosts: Optional[int] = None, jobs: int = 1,
                 warmup_s: float = None, duration_s: float = None) -> None:
        super().__init__(scale, seed)
        self.hosts = 4 if hosts is None else hosts
        if self.hosts < 2:
            raise ValueError(
                f"fleet experiment needs at least 2 hosts, got {self.hosts}"
            )
        self.jobs = jobs
        self.vms_per_host = max(2, self.count(10))
        self.warmup_s = warmup_s if warmup_s is not None else self.secs(120.0)
        self.duration_s = (duration_s if duration_s is not None
                           else self.secs(360.0))

    # -- workload construction -------------------------------------------

    def _host_factor(self, host: int) -> float:
        if host == 0:
            return _HOT
        if host == self.hosts - 1:
            return _COLD
        return _MODERATE

    def _make_workload(self, kind: str, factor: float):
        def files(base: int) -> int:
            return max(10, int(self.count(base) * factor))

        if kind == "webserver":
            return WebserverWorkload("webserver", nfiles=files(1500),
                                     mean_size_kb=64.0, threads=1)
        if kind == "webproxy":
            return WebproxyWorkload("webproxy", nfiles=files(1800),
                                    mean_size_kb=32.0, threads=1)
        return VarmailWorkload("mail", nfiles=files(4000),
                               mean_size_kb=16.0, threads=1)

    # -- the run ----------------------------------------------------------

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        # Latency histograms are part of this experiment's contract, so
        # install a tracer when the harness hasn't (restored afterwards).
        own_tracer = _obs.ACTIVE is None
        tracer = Tracer(max_events=50_000) if own_tracer else _obs.ACTIVE
        if own_tracer:
            set_tracer(tracer)
        try:
            return self._run(result, tracer)
        finally:
            if own_tracer:
                set_tracer(None)

    def _run(self, result: ExperimentResult, tracer: Tracer) -> ExperimentResult:
        fleet = Fleet(seed=self.seed, hosts=self.hosts, jobs=self.jobs)
        caches = fleet.install_doubledecker(
            DDConfig(mem_capacity_mb=self.mb(512))
        )
        weight = 100.0 / self.vms_per_host
        kinds = ("webserver", "webproxy", "mail")
        # One record per VM, updated in place when the VM migrates:
        # {name, kind, factor, host, container, workload}.
        records: List[Dict[str, object]] = []
        by_name: Dict[str, Dict[str, object]] = {}
        for host in range(self.hosts):
            factor = self._host_factor(host)
            for slot in range(self.vms_per_host):
                name = f"h{host}v{slot}"
                kind = kinds[(host * self.vms_per_host + slot) % len(kinds)]
                vm = fleet.create_vm(host, name, memory_mb=self.mb(64),
                                     vcpus=2, cache_weight=weight)
                container = vm.create_container(
                    "app", self.mb(256), CachePolicy.memory(weight)
                )
                workload = self._make_workload(kind, factor)
                workload.start(container, fleet.nodes[host].streams)
                record = {"name": name, "kind": kind, "factor": factor,
                          "host": host, "container": container,
                          "workload": workload}
                records.append(record)
                by_name[name] = record

        fleet.enable_lending(interval_s=max(5.0, self.secs(30.0)),
                             low_util=0.5, high_util=0.9, lend_fraction=0.5)

        def on_depart(vm, node) -> None:
            by_name[vm.name]["workload"].stop()

        def on_arrival(new_vm, node) -> None:
            record = by_name[new_vm.name]
            container = new_vm.containers["app"]
            workload = self._make_workload(record["kind"], record["factor"])
            workload.start(container, node.streams)
            record.update(host=node.index, container=container,
                          workload=workload)

        # Two migrations toward the cold host mid-measurement.  With only
        # two VMs per host the second one comes from host 1 so the hot
        # host is never fully emptied; in a 2-host fleet the first VM
        # migrates back instead (exercising both directions).
        cold = self.hosts - 1
        if self.vms_per_host > 2:
            second = ("h0v1", 0, cold)
        elif self.hosts > 2:
            second = ("h1v0", 1, cold)
        else:
            second = ("h0v0", cold, 0)
        first = ("h0v0", 0, cold)
        for step, (vm_name, src, dst) in ((0.3, first), (0.6, second)):
            fleet.migrate_vm(vm_name, src, dst,
                             at=self.warmup_s + step * self.duration_s,
                             on_depart=on_depart, on_arrival=on_arrival)

        fleet.run(until=self.warmup_s + self.duration_s)
        assert_fleet_clean(fleet, where="fleet experiment end")
        fleet.close()

        self._report(result, fleet, caches, records, tracer)
        return result

    # -- reporting --------------------------------------------------------

    def _report(self, result, fleet, caches, records, tracer) -> None:
        rows: List[List[object]] = []
        fleet_gets = fleet_hits = fleet_evict = 0
        for host, cache in enumerate(caches):
            gets = hits = evictions = 0
            nvms = 0
            for record in records:
                if record["host"] != host:
                    continue
                nvms += 1
                stats = record["container"].cache_stats()
                if stats is not None:
                    gets += stats.gets
                    hits += stats.get_hits
                    evictions += stats.evictions
            fleet_gets += gets
            fleet_hits += hits
            fleet_evict += evictions
            rows.append([
                f"host{host}", nvms, gets,
                round(100.0 * hits / gets, 1) if gets else 0.0,
                round(cache.used[_MEMORY] * cache.block_bytes / MB, 1),
                round(cache.capacities[_MEMORY] * cache.block_bytes / MB, 1),
                cache.lend_in[_MEMORY], cache.lend_out[_MEMORY],
                evictions,
            ])
        rows.append([
            "fleet", len(records), fleet_gets,
            round(100.0 * fleet_hits / fleet_gets, 1) if fleet_gets else 0.0,
            round(sum(c.used[_MEMORY] * c.block_bytes / MB for c in caches), 1),
            round(sum(c.capacities[_MEMORY] * c.block_bytes / MB
                      for c in caches), 1),
            sum(c.lend_in[_MEMORY] for c in caches),
            sum(c.lend_out[_MEMORY] for c in caches),
            fleet_evict,
        ])
        result.add_table(
            "per-host cache behaviour",
            ["host", "vms", "gets", "hit%", "used MB", "cap MB",
             "lend_in", "lend_out", "evict"],
            rows,
        )

        quantiles = ["op", "count", "mean", "p50", "p90", "p99", "p999"]
        all_rows = tracer.latency_rows(per_pool=False)  # dd-lint: disable=DD006 (run installs a tracer when none is active, so _report always receives a live one)
        fleet_rows = [r for r in all_rows if ".host" not in r[0]]
        host_rows = [r for r in all_rows if ".host" in r[0]]
        if fleet_rows:
            result.add_table("fleet-wide op latency (ms)", quantiles,
                             [[r[0]] + [round(v, 3) for v in r[1:]]
                              for r in fleet_rows])
        if host_rows:
            result.add_table("per-host op latency (ms)", quantiles,
                             [[r[0]] + [round(v, 3) for v in r[1:]]
                              for r in host_rows])

        result.add_table(
            "migrations",
            ["vm", "src", "dst", "exported", "accepted", "rejected",
             "downtime ms", "moved MB"],
            [[m.vm, m.src_host, m.dst_host, m.blocks_exported,
              m.blocks_accepted, m.blocks_rejected,
              round(m.downtime_s * 1e3, 2), round(m.bytes_moved / MB, 1)]
             for m in fleet.migrations],
        )

        lending = fleet.lending
        result.add_table(
            "lending grants (signed blocks; + borrowed, - lent)",
            ["time s", "grants"],
            [[round(when, 1),
              " ".join(f"host{idx}:{blocks:+d}"
                       for idx, blocks in sorted(grants.items()))]
             for when, grants in lending.history[-8:]],
        )

        result.scalars["fleet_hit_ratio_pct"] = (
            100.0 * fleet_hits / fleet_gets if fleet_gets else 0.0
        )
        result.scalars["blocks_migrated"] = float(
            sum(m.blocks_accepted for m in fleet.migrations)
        )
        result.scalars["lending_rebalances"] = float(lending.rebalances)
        result.note(
            "Expected shape: pressured hosts saturate their stores while "
            "the cold host idles, so lending grants flow cold->hot; the "
            "migrations then move load onto the cold host, and migrated "
            "memory blocks are adopted unless its store fills up."
        )
