"""FIG-8 / FIG-9 / TAB-2 — impact of caching modes (§5.1).

One VM, four containers (webserver, webproxy, varmail, videoserver), three
hypervisor-cache configurations:

* **Global** — 3 GB memory-backed, container-agnostic FIFO;
* **DDMem**  — 3 GB memory-backed DoubleDecker, equal (25%) weights;
* **DDSSD**  — 240 GB SSD-backed DoubleDecker, equal weights.

Reports the occupancy traces (Figs 8-9) and Table 2's per-workload
throughput / latency / lookup-hit ratio / eviction counts.
"""

from __future__ import annotations

from typing import Dict, List

from ..context import SimContext
from ..core import CachePolicy, DDConfig
from ..hypervisor import HostSpec
from ..workloads import (
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from .runner import Experiment, ExperimentResult, OccupancySampler, measure_window

__all__ = ["CachingModesExperiment", "MODES"]

MODES = ("Global", "DDMem", "DDSSD")


class CachingModesExperiment(Experiment):
    """Global vs DoubleDecker (memory) vs DoubleDecker (SSD)."""

    exp_id = "FIG-8/FIG-9/TAB-2"
    name = "caching_modes"
    description = (
        "Four Filebench containers in an 8 GB VM under three hypervisor "
        "cache modes; cache occupancy over time plus application "
        "performance and cache behaviour."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 warmup_s: float = None, duration_s: float = None) -> None:
        super().__init__(scale, seed)
        self.warmup_s = warmup_s if warmup_s is not None else self.secs(500.0)
        self.duration_s = duration_s if duration_s is not None else self.secs(700.0)

    def _workloads(self):
        # Footprints (at scale 1.0): web ~1.75 GB, proxy ~1.5 GB,
        # mail ~1.6 GB, video 4.5 GB (Zipf-popular) — total overflow past
        # the 4x1 GB containers exceeds the 3 GB cache, creating the
        # paper's contention regime with video as the IO hog.
        return [
            ("webserver", WebserverWorkload(
                nfiles=self.count(11500), mean_size_kb=128.0, threads=2,
                cpu_think_ms=3.0)),
            ("webproxy", WebproxyWorkload(
                nfiles=self.count(11000), mean_size_kb=64.0, threads=2)),
            ("mail", VarmailWorkload(
                nfiles=self.count(25000), mean_size_kb=32.0, threads=2)),
            ("videoserver", VideoserverWorkload(
                nvideos=18, video_mb=self.mb(256.0), threads=4,
                stream_pace_ms=2.0)),
        ]

    def _run_mode(self, mode: str, result: ExperimentResult) -> Dict[str, dict]:
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        if mode == "Global":
            cache = host.install_global_cache(
                capacity_mb=self.mb(3072), per_vm_cap_mb=self.mb(3072)
            )
            policies = {name: CachePolicy.memory(25.0) for name in
                        ("webserver", "webproxy", "mail", "videoserver")}
        elif mode == "DDMem":
            cache = host.install_doubledecker(DDConfig(mem_capacity_mb=self.mb(3072)))
            policies = {name: CachePolicy.memory(25.0) for name in
                        ("webserver", "webproxy", "mail", "videoserver")}
        elif mode == "DDSSD":
            cache = host.install_doubledecker(
                DDConfig(mem_capacity_mb=0.0, ssd_capacity_mb=self.mb(245760))
            )
            policies = {name: CachePolicy.ssd(25.0) for name in
                        ("webserver", "webproxy", "mail", "videoserver")}
        else:
            raise ValueError(f"unknown mode {mode!r}")

        vm = host.create_vm("vm1", memory_mb=self.mb(8192), vcpus=8)
        sampler = OccupancySampler(ctx, interval_s=max(
            1.0, (self.warmup_s + self.duration_s) / 120))
        workloads = []
        containers = {}
        for name, workload in self._workloads():
            container = vm.create_container(name, self.mb(1024), policies[name])
            workload.start(container, ctx.streams)
            sampler.watch_pool(cache, name, container.pool_id)
            workloads.append(workload)
            containers[name] = container
        sampler.start()

        rates = measure_window(ctx, workloads, self.warmup_s, self.duration_s)
        for name, series in sampler.series.items():
            result.add_series(f"{mode}/{name}", series)
        out: Dict[str, dict] = {}
        for workload in workloads:
            name = workload.name
            stats = containers[name].cache_stats()
            cell = dict(rates[name])
            cell["hit_ratio_pct"] = 100.0 * stats.hit_ratio if stats else 0.0
            cell["evictions"] = stats.evictions if stats else 0
            out[name] = cell
        return out

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        per_mode: Dict[str, Dict[str, dict]] = {}
        for mode in MODES:
            per_mode[mode] = self._run_mode(mode, result)

        headers = ["workload"]
        for mode in MODES:
            headers += [f"{mode} MB/s", f"{mode} lat(ms)",
                        f"{mode} lookup%", f"{mode} evict"]
        rows: List[List[object]] = []
        for name in ("webserver", "webproxy", "mail", "videoserver"):
            row: List[object] = [name]
            for mode in MODES:
                cell = per_mode[mode][name]
                row += [
                    round(cell["mb_per_s"], 1),
                    round(cell["mean_latency_ms"], 1),
                    round(cell["hit_ratio_pct"], 1),
                    int(cell["evictions"]),
                ]
            rows.append(row)
        result.add_table("table2: performance and cache behaviour", headers, rows)

        web_global = per_mode["Global"]["webserver"]["mb_per_s"]
        web_ddmem = per_mode["DDMem"]["webserver"]["mb_per_s"]
        result.scalars["web_ddmem_speedup"] = (
            web_ddmem / web_global if web_global > 0 else float("inf")
        )
        for name in ("webserver", "webproxy", "mail"):
            result.scalars[f"{name}_ddmem_evictions"] = (
                per_mode["DDMem"][name]["evictions"]
            )
        result.note(
            "Paper shape: DDMem webserver ~6x Global throughput; zero "
            "evictions for web/proxy/mail under DD (only videoserver is "
            "victimized); SSD mode slower for web/video but better for "
            "mail; no evictions at all on the SSD."
        )
        return result
