"""FIG-10 / FIG-11 / TAB-3 — flexible hypervisor cache management (§5.2).

Containers get *different* in-VM memory limits (web 1.25 GB, proxy 1 GB,
mail 1 GB, video 0.75 GB) and a 2 GB DoubleDecker memory cache.  Four
policies are compared:

* **Global**   — no container-level enforcement (baseline);
* **DDMem**    — cgroup-proportional weights  (32 / 25 / 25 / 18);
* **DDMemEx**  — video excluded from the cache (40 / 30 / 30 / 0);
* **DDHybrid** — video moved to the SSD store  (40 / 30 / 30 / SSD:100).

Reports per-workload speedup over Global (Fig 10) and occupancy traces
(Fig 11); Table 3 is the settings table itself.
"""

from __future__ import annotations

from typing import Dict, List

from ..context import SimContext
from ..core import CachePolicy, DDConfig
from ..hypervisor import HostSpec
from ..workloads import (
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from .runner import Experiment, ExperimentResult, OccupancySampler, measure_window

__all__ = ["FlexiblePolicyExperiment", "POLICY_TABLE"]

#: Table 3 — the <T, W> settings per mode (weights in percent).
POLICY_TABLE: Dict[str, Dict[str, CachePolicy]] = {
    "DDMem": {
        "webserver": CachePolicy.memory(32.0),
        "webproxy": CachePolicy.memory(25.0),
        "mail": CachePolicy.memory(25.0),
        "videoserver": CachePolicy.memory(18.0),
    },
    "DDMemEx": {
        "webserver": CachePolicy.memory(40.0),
        "webproxy": CachePolicy.memory(30.0),
        "mail": CachePolicy.memory(30.0),
        "videoserver": CachePolicy.none(),
    },
    "DDHybrid": {
        "webserver": CachePolicy.memory(40.0),
        "webproxy": CachePolicy.memory(30.0),
        "mail": CachePolicy.memory(30.0),
        "videoserver": CachePolicy.ssd(100.0),
    },
}

#: In-VM cgroup limits (MB at scale 1.0) per container.
MEMORY_LIMITS = {
    "webserver": 1280.0,
    "webproxy": 1024.0,
    "mail": 1024.0,
    "videoserver": 768.0,
}


class FlexiblePolicyExperiment(Experiment):
    """Differentiated container policies vs global cache management."""

    exp_id = "FIG-10/FIG-11/TAB-3"
    name = "flexible_policy"
    description = (
        "Differently-sized containers under a 2 GB DD memory cache with "
        "per-container weights (DDMem/DDMemEx) and SSD offload (DDHybrid), "
        "compared against global cache management."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 warmup_s: float = None, duration_s: float = None) -> None:
        super().__init__(scale, seed)
        self.warmup_s = warmup_s if warmup_s is not None else self.secs(500.0)
        self.duration_s = duration_s if duration_s is not None else self.secs(700.0)

    def _workloads(self):
        return [
            ("webserver", WebserverWorkload(
                nfiles=self.count(13000), mean_size_kb=128.0, threads=2,
                cpu_think_ms=3.0)),
            ("webproxy", WebproxyWorkload(
                nfiles=self.count(13000), mean_size_kb=64.0, threads=2)),
            ("mail", VarmailWorkload(
                nfiles=self.count(25000), mean_size_kb=32.0, threads=2)),
            ("videoserver", VideoserverWorkload(
                nvideos=18, video_mb=self.mb(256.0), threads=4,
                stream_pace_ms=2.0)),
        ]

    def _run_mode(self, mode: str, result: ExperimentResult) -> Dict[str, dict]:
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        if mode == "Global":
            cache = host.install_global_cache(
                capacity_mb=self.mb(2048), per_vm_cap_mb=self.mb(2048)
            )
            policies = {name: CachePolicy.memory(25.0) for name in MEMORY_LIMITS}
        else:
            ssd_mb = self.mb(245760) if mode == "DDHybrid" else 0.0
            cache = host.install_doubledecker(
                DDConfig(mem_capacity_mb=self.mb(2048), ssd_capacity_mb=ssd_mb)
            )
            policies = POLICY_TABLE[mode]

        vm = host.create_vm("vm1", memory_mb=self.mb(8192), vcpus=8)
        sampler = OccupancySampler(ctx, interval_s=max(
            1.0, (self.warmup_s + self.duration_s) / 120))
        workloads = []
        containers = {}
        for name, workload in self._workloads():
            container = vm.create_container(
                name, self.mb(MEMORY_LIMITS[name]), policies[name]
            )
            workload.start(container, ctx.streams)
            sampler.watch_pool(cache, name, container.pool_id)
            workloads.append(workload)
            containers[name] = container
        sampler.start()

        rates = measure_window(ctx, workloads, self.warmup_s, self.duration_s)
        for name, series in sampler.series.items():
            result.add_series(f"{mode}/{name}", series)
        out = {}
        for workload in workloads:
            stats = containers[workload.name].cache_stats()
            cell = dict(rates[workload.name])
            cell["evictions"] = stats.evictions if stats else 0
            out[workload.name] = cell
        return out

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        modes = ["Global", "DDMem", "DDMemEx", "DDHybrid"]
        per_mode: Dict[str, Dict[str, dict]] = {}
        for mode in modes:
            per_mode[mode] = self._run_mode(mode, result)

        # Table 3 (configuration) — rendered for reference.
        t3_rows = []
        for mode, policies in POLICY_TABLE.items():
            row = [mode]
            for name in ("webserver", "webproxy", "mail", "videoserver"):
                policy = policies[name]
                if policy.ssd_weight > 0:
                    row.append(f"SSD:{policy.ssd_weight:.0f}")
                elif policy.mem_weight > 0:
                    row.append(f"Mem:{policy.mem_weight:.0f}")
                else:
                    row.append("none")
            t3_rows.append(row)
        result.add_table(
            "table3: cache settings",
            ["mode", "webserver(C1)", "webproxy(C2)", "mail(C3)", "video(C4)"],
            t3_rows,
        )

        # Fig 10 — speedup over Global.
        headers = ["workload", "Global MB/s"] + [f"{m} speedup" for m in modes[1:]]
        rows = []
        for name in ("webserver", "webproxy", "mail", "videoserver"):
            base = per_mode["Global"][name]["mb_per_s"]
            row: List[object] = [name, round(base, 2)]
            for mode in modes[1:]:
                value = per_mode[mode][name]["mb_per_s"]
                speedup = value / base if base > 0 else float("inf")
                row.append(round(speedup, 2))
                result.scalars[f"{name}_{mode.lower()}_speedup"] = speedup
            rows.append(row)
        result.add_table("fig10: speedup vs Global", headers, rows)

        result.note(
            "Paper shape: webserver gains ~10-11x under all DD policies; "
            "webproxy ~2-3x; mail marginal; videoserver loses ~20-25% under "
            "DDMem/DDMemEx but gains ~3.6x when moved to the SSD (DDHybrid)."
        )
        return result
