"""FIG-3 / TAB-1 — memory-split sensitivity per application (§2.3.1).

2 GB is split between the container's in-VM memory (cgroup limit) and the
hypervisor cache.  File-backed apps (Webserver, MongoDB) are insensitive
to the split — the combined cache is what matters; anon-memory apps
(Redis, MySQL) degrade as in-VM memory shrinks because the hypervisor
cache cannot absorb anonymous pages (they swap instead).

Table 1 is the diagnosis at the equal (1:1) split: swap traffic, anon
usage and hypervisor-cache usage per app.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..context import SimContext
from ..core import CachePolicy, DDConfig
from ..hypervisor import HostSpec
from ..workloads import (
    MongoWorkload,
    MySQLWorkload,
    RedisWorkload,
    WebserverWorkload,
    Workload,
)
from .runner import Experiment, ExperimentResult, measure_window

__all__ = ["AppBehaviorExperiment", "SPLITS"]

#: (in-VM GB, hypervisor-cache GB) splits of the 2 GB budget (Figure 3's x-axis).
SPLITS: List[Tuple[float, float]] = [
    (2.0, 0.0),
    (1.5, 0.5),
    (1.0, 1.0),
    (0.5, 1.5),
    (0.25, 1.75),
]


class AppBehaviorExperiment(Experiment):
    """Throughput vs in-VM:cache split for Webserver/Redis/MongoDB/MySQL."""

    exp_id = "FIG-3/TAB-1"
    name = "app_behavior"
    description = (
        "2 GB split between container memory and hypervisor cache; ops/sec "
        "per app and the guest-metric diagnosis at the equal split."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 warmup_s: float = None, duration_s: float = None) -> None:
        super().__init__(scale, seed)
        self.warmup_s = warmup_s if warmup_s is not None else self.secs(240.0)
        self.duration_s = duration_s if duration_s is not None else self.secs(360.0)

    # -- workload factory -------------------------------------------------------

    def _make_workload(self, app: str) -> Workload:
        if app == "webserver":
            return WebserverWorkload(
                nfiles=self.count(14000), mean_size_kb=128.0, threads=2
            )
        if app == "redis":
            return RedisWorkload(nrecords=self.count(1_800_000), record_kb=1.0,
                                 threads=2)
        if app == "mongodb":
            return MongoWorkload(nrecords=self.count(3_000_000), record_kb=1.0,
                                 threads=2)
        if app == "mysql":
            return MySQLWorkload(
                nrecords=self.count(2_000_000),
                record_kb=1.0,
                buffer_pool_mb=self.mb(1024.0),
                threads=2,
            )
        raise ValueError(f"unknown app {app!r}")

    def _run_cell(self, app: str, vm_gb: float, cache_gb: float) -> dict:
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        host.install_doubledecker(
            DDConfig(mem_capacity_mb=max(0.0, self.mb(cache_gb * 1024)))
        )
        vm = host.create_vm(
            "vm1", memory_mb=self.mb(vm_gb * 1024) + 256, vcpus=4,
            kernel_reserve_mb=64.0,
        )
        policy = CachePolicy.memory(100.0) if cache_gb > 0 else CachePolicy.none()
        container = vm.create_container(app, self.mb(vm_gb * 1024), policy)
        workload = self._make_workload(app)
        workload.start(container, ctx.streams)
        rates = measure_window(ctx, [workload], self.warmup_s, self.duration_s)
        out = dict(rates[workload.name])
        out["swap_mb"] = container.swap_out_mb
        out["anon_mb"] = container.anon_mb
        out["hvcache_mb"] = container.hvcache_mb
        return out

    def run_table1_only(self) -> ExperimentResult:
        """Only the equal-split cells (Table 1) — cheaper than the sweep."""
        result = ExperimentResult(self.name + "-table1",
                                  "Guest metrics at the 1:1 split (Table 1).")
        rows: List[List[object]] = []
        for app in ("webserver", "redis", "mongodb", "mysql"):
            cell = self._run_cell(app, 1.0, 1.0)
            rows.append([
                app,
                round(cell["swap_mb"], 1),
                round(cell["anon_mb"], 1),
                round(cell["hvcache_mb"], 1),
            ])
            result.scalars[f"{app}_swap_mb"] = cell["swap_mb"]
            result.scalars[f"{app}_anon_mb"] = cell["anon_mb"]
            result.scalars[f"{app}_hvcache_mb"] = cell["hvcache_mb"]
        result.add_table(
            "table1: guest metrics at the 1:1 split",
            ["app", "total swap (MB)", "anon usage (MB)", "hv cache usage (MB)"],
            rows,
        )
        return result

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        apps = ["webserver", "redis", "mongodb", "mysql"]
        fig3_rows: List[List[object]] = []
        table1_rows: List[List[object]] = []
        cells: Dict[Tuple[str, float], dict] = {}
        for app in apps:
            row: List[object] = [app]
            for vm_gb, cache_gb in SPLITS:
                cell = self._run_cell(app, vm_gb, cache_gb)
                cells[(app, vm_gb)] = cell
                row.append(round(cell["ops_per_s"], 1))
            fig3_rows.append(row)
            equal = cells[(app, 1.0)]
            table1_rows.append([
                app,
                round(equal["swap_mb"], 1),
                round(equal["anon_mb"], 1),
                round(equal["hvcache_mb"], 1),
            ])
        headers = ["app"] + [f"{a}:{b}" for a, b in SPLITS]
        result.add_table("fig3: ops/sec by (in-VM GB : cache GB) split",
                         headers, fig3_rows)
        result.add_table(
            "table1: guest metrics at the 1:1 split",
            ["app", "total swap (MB)", "anon usage (MB)", "hv cache usage (MB)"],
            table1_rows,
        )
        for app in apps:
            full = cells[(app, SPLITS[0][0])]["ops_per_s"]
            tight = cells[(app, SPLITS[-1][0])]["ops_per_s"]
            result.scalars[f"{app}_degradation"] = (
                tight / full if full > 0 else 0.0
            )
        result.note(
            "Paper shape: Webserver and MongoDB flat across splits; Redis "
            "very fast at 2:0 and stalled at 0.25:1.75; MySQL degrades as "
            "in-VM memory shrinks. Table 1: Redis/MySQL swap and cannot use "
            "the hypervisor cache; Webserver/MongoDB fill it instead."
        )
        return result
