"""EXT-END — SSD endurance under write-aware admission (extension).

Not a paper artifact: DoubleDecker's evaluation treats the SSD as free,
but every block spilled or trickled onto flash consumes program/erase
budget.  This experiment reruns the §5.1 container mix on the two
SSD-backed configurations (DDSSD and the hybrid spill mode) under each
admission policy of :mod:`repro.endurance` and tabulates the trade the
admission knob buys: lookup hit ratio versus device bytes written, WAF,
projected device lifetime, and hits-per-GB-written efficiency.  The
``admit_all`` rows are the paper's behaviour (the hook is a no-op);
``second_access`` and ``write_throttle`` trade hit ratio for wear.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..context import SimContext
from ..core import CachePolicy, DDConfig
from ..endurance import ADMISSION_POLICIES, endurance_summary
from ..hypervisor import HostSpec
from .caching_modes import CachingModesExperiment
from .runner import ExperimentResult, measure_window

__all__ = ["EnduranceExperiment", "ENDURANCE_SCENARIOS"]

ENDURANCE_SCENARIOS = ("DDSSD", "DDHybrid")


class EnduranceExperiment(CachingModesExperiment):
    """Admission-policy sweep on the SSD-backed caching modes."""

    exp_id = "EXT-END"
    name = "endurance"
    description = (
        "Four Filebench containers in an 8 GB VM on the SSD-backed cache "
        "modes, swept over the three SSD admission policies; reports the "
        "hit-ratio vs device-bytes-written Pareto trade plus WAF and "
        "projected flash lifetime."
    )

    def _run_config(
        self, scenario: str, admission: str, result: ExperimentResult
    ) -> dict:
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        if scenario == "DDSSD":
            config = DDConfig(
                mem_capacity_mb=0.0,
                ssd_capacity_mb=self.mb(245760),
                admission=admission,
            )
            policy = CachePolicy.ssd(25.0)
        elif scenario == "DDHybrid":
            config = DDConfig(
                mem_capacity_mb=self.mb(3072),
                ssd_capacity_mb=self.mb(245760),
                trickle_down=True,
                admission=admission,
            )
            policy = CachePolicy.hybrid(25.0, 25.0)
        else:
            raise ValueError(f"unknown scenario {scenario!r}")
        host.install_doubledecker(config)

        vm = host.create_vm("vm1", memory_mb=self.mb(8192), vcpus=8)
        workloads = []
        containers = {}
        for name, workload in self._workloads():
            container = vm.create_container(name, self.mb(1024), policy)
            workload.start(container, ctx.streams)
            workloads.append(workload)
            containers[name] = container

        rates = measure_window(ctx, workloads, self.warmup_s, self.duration_s)

        gets = hits = ssd_writes = rejected = 0
        for container in containers.values():
            stats = container.cache_stats()
            gets += stats.gets
            hits += stats.get_hits
            ssd_writes += stats.ssd_writes
            rejected += (
                stats.put_rejected_admission + stats.trickle_rejected_admission
            )
        wear = host.ssd.wear
        cell = endurance_summary(wear, elapsed_s=ctx.now, hits=hits)
        cell["hit_ratio_pct"] = 100.0 * hits / gets if gets else 0.0
        cell["mb_per_s"] = sum(r["mb_per_s"] for r in rates.values())
        cell["ssd_writes"] = ssd_writes
        cell["rejected_admission"] = rejected
        return cell

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        cells: Dict[Tuple[str, str], dict] = {}
        for scenario in ENDURANCE_SCENARIOS:
            for admission in ADMISSION_POLICIES:
                cells[scenario, admission] = self._run_config(
                    scenario, admission, result
                )

        headers = ["config", "admission", "hit %", "MB/s", "SSD GB written",
                   "WAF", "wear %", "lifetime", "hits/GB", "rejected"]
        rows: List[List[object]] = []
        for (scenario, admission), cell in cells.items():
            rows.append([
                scenario,
                admission,
                round(cell["hit_ratio_pct"], 1),
                round(cell["mb_per_s"], 1),
                round(cell["ssd_gb_written"], 2),
                round(cell["waf"], 2),
                round(cell["wear_pct"], 4),
                cell["projected_lifetime"],
                round(cell["hits_per_gb"], 0) if cell["hits_per_gb"] else "-",
                int(cell["rejected_admission"]),
            ])
        result.add_table(
            "endurance: hit ratio vs flash wear per admission policy",
            headers, rows,
        )

        # The Pareto front per scenario: a policy survives unless another
        # one both hits more and writes less.
        for scenario in ENDURANCE_SCENARIOS:
            front = []
            for admission in ADMISSION_POLICIES:
                mine = cells[scenario, admission]
                dominated = any(
                    other["hit_ratio_pct"] > mine["hit_ratio_pct"]
                    and other["ssd_gb_written"] < mine["ssd_gb_written"]
                    for name, other in (
                        (a, cells[scenario, a]) for a in ADMISSION_POLICIES
                    )
                    if name != admission
                )
                if not dominated:
                    front.append(admission)
            result.scalars[f"{scenario}_pareto_size"] = len(front)
            result.note(f"{scenario} Pareto front (hit% up, GB down): "
                        + ", ".join(front))

        for (scenario, admission), cell in cells.items():
            key = f"{scenario}_{admission}"
            result.scalars[f"{key}_hit_pct"] = cell["hit_ratio_pct"]
            result.scalars[f"{key}_gb_written"] = cell["ssd_gb_written"]
        base = cells["DDHybrid", "admit_all"]["ssd_gb_written"]
        second = cells["DDHybrid", "second_access"]["ssd_gb_written"]
        result.scalars["hybrid_second_access_write_savings_pct"] = (
            100.0 * (1.0 - second / base) if base > 0 else 0.0
        )
        result.note(
            "admit_all reproduces the paper's byte-for-byte behaviour (the "
            "admission hook never fires); second_access keeps one-touch "
            "blocks off the flash at a bounded hit-ratio cost; "
            "write_throttle caps the sustained SSD fill rate regardless of "
            "access pattern."
        )
        return result
