"""Experiment harness: one class per table/figure of the paper.

See DESIGN.md's per-experiment index for the mapping.  Every experiment
takes ``scale`` (shrinks datasets/cache sizes together, preserving
ratios) and ``seed``; ``run()`` returns an
:class:`~repro.experiments.runner.ExperimentResult` whose ``summary()``
prints the same rows/series the paper reports.
"""

from .app_behavior import AppBehaviorExperiment
from .caching_modes import CachingModesExperiment
from .cooperative import CooperativeExperiment
from .dynamic import DynamicContainersExperiment, DynamicVMsExperiment
from .endurance import EnduranceExperiment
from .fleet import FleetExperiment
from .flexible import FlexiblePolicyExperiment
from .motivation import MotivationExperiment
from .runner import Experiment, ExperimentResult, OccupancySampler, measure_window
from .scenarios import Scenario, ScenarioResult

ALL_EXPERIMENTS = {
    "motivation": MotivationExperiment,
    "app_behavior": AppBehaviorExperiment,
    "caching_modes": CachingModesExperiment,
    "flexible_policy": FlexiblePolicyExperiment,
    "cooperative": CooperativeExperiment,
    "dynamic_containers": DynamicContainersExperiment,
    "dynamic_vms": DynamicVMsExperiment,
    "endurance": EnduranceExperiment,
    "fleet": FleetExperiment,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "AppBehaviorExperiment",
    "CachingModesExperiment",
    "CooperativeExperiment",
    "DynamicContainersExperiment",
    "DynamicVMsExperiment",
    "EnduranceExperiment",
    "Experiment",
    "ExperimentResult",
    "FleetExperiment",
    "FlexiblePolicyExperiment",
    "MotivationExperiment",
    "OccupancySampler",
    "Scenario",
    "ScenarioResult",
    "measure_window",
]
