"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments motivation --scale 0.25
    python -m repro.experiments all --scale 0.25 --out results/

Each experiment prints the same rows/series its paper table or figure
reports (see DESIGN.md's per-experiment index).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from . import ALL_EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the DoubleDecker paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset/cache scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--no-plots", action="store_true",
                        help="omit ASCII occupancy plots")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to also write summaries into")
    parser.add_argument("--json", action="store_true",
                        help="with --out, also write machine-readable JSON")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("available experiments:")
        for name, cls in ALL_EXPERIMENTS.items():
            print(f"  {name:20s} {cls.exp_id:18s} {cls.description.strip()[:60]}")
        return 0

    if args.experiment == "all":
        names = list(ALL_EXPERIMENTS)
    elif args.experiment in ALL_EXPERIMENTS:
        names = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; use --list",
              file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in names:
        cls = ALL_EXPERIMENTS[name]
        print(f"\n### running {name} ({cls.exp_id}) at scale {args.scale} ###")
        started = time.time()
        result = cls(scale=args.scale, seed=args.seed).run()
        elapsed = time.time() - started
        summary = result.summary(plots=not args.no_plots)
        print(summary)
        print(f"(wall time {elapsed:.1f}s)")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(summary + "\n")
            if args.json:
                from ..analysis import result_to_json

                (args.out / f"{name}.json").write_text(result_to_json(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
