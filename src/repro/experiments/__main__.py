"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments motivation --scale 0.25
    python -m repro.experiments all --scale 0.25 --out results/
    python -m repro.experiments all --scale 0.25 --jobs 4
    python -m repro.experiments caching_modes --profile hot.pstats
    python -m repro.experiments caching_modes --trace --audit

``--trace [PREFIX]`` turns on the flight recorder for each experiment and
writes ``PREFIX_<name>.jsonl`` (lossless, ``python -m repro.obs`` reads
it) plus ``PREFIX_<name>.perfetto.json`` (load in Perfetto/chrome about
tracing); the run report grows a per-op latency quantile table.  Tracing
off, output is byte-identical to a build without the subsystem.

Each experiment prints the same rows/series its paper table or figure
reports (see DESIGN.md's per-experiment index).

``--jobs N`` fans independent experiments out over N worker processes.
Experiments share nothing (each builds its own simulation Environment
from ``scale``/``seed``), so results are byte-identical to a serial run;
only the wall clock changes.  Output is still printed in the canonical
experiment order regardless of which worker finishes first.

``--profile [FILE]`` wraps the run in :mod:`cProfile` and dumps a
``.pstats`` file for ``pstats``/``snakeviz``-style analysis.  Combined
with ``--jobs N`` each experiment is profiled inside its worker process
(profiling the pool's parent would only see an idle dispatcher) and one
``FILE``-derived ``<stem>.<rank>.pstats`` is written per experiment,
ranked in canonical experiment order no matter which worker finishes
first; the parent prints a combined hotspot table across all ranks.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Tuple

from . import ALL_EXPERIMENTS


def _run_one(
    task: Tuple[str, float, int, bool, bool, float, Optional[str],
                Optional[str], int, int, bool, Optional[int], int]
) -> Tuple[str, str, float, Optional[str], Optional[str], Optional[str],
           Optional[bytes]]:
    """Run one experiment; module-level so multiprocessing can pickle it.

    Returns ``(name, summary, elapsed, json_text, trace_jsonl,
    trace_perfetto, profile_blob)`` — plain strings/bytes only, so the
    result pickles cheaply and the parent never needs the (large,
    unpicklable) simulation objects.  The trace fields are ``None`` with
    tracing off, keeping the untraced output byte-identical whether or
    not this build knows about tracing.  ``profile_blob`` (set by the
    ``--profile --jobs N`` path) is the worker's marshalled cProfile
    stats — the exact byte format ``Profile.dump_stats`` writes, so the
    parent can persist it verbatim and ``pstats`` can load it.
    """
    (name, scale, seed, plots, want_json, audit, admission,
     trace, trace_ops, trace_sample, profile, hosts, fleet_jobs) = task
    cls = ALL_EXPERIMENTS[name]
    # Fleet-topology experiments additionally take a host count and a
    # shard-worker count; every other experiment keeps its signature.
    extra = {}
    if getattr(cls, "takes_fleet_args", False):
        extra["jobs"] = fleet_jobs
        if hosts is not None:
            extra["hosts"] = hosts
    from ..core import set_audit_interval, set_default_admission

    # Installed here (not in main) so --jobs workers inherit it too.
    set_audit_interval(audit)
    set_default_admission(admission)
    tracer = None
    if trace is not None:
        from ..obs import Tracer, set_tracer

        tracer = Tracer(max_events=trace_ops, sample=trace_sample)
        set_tracer(tracer)
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
    try:
        started = time.time()  # dd-lint: disable=DD001 (host-side wall clock for the CLI's elapsed-time report, never feeds simulated state)
        if profiler is not None:
            profiler.enable()
        try:
            result = cls(scale=scale, seed=seed, **extra).run()
        finally:
            if profiler is not None:
                profiler.disable()
        elapsed = time.time() - started  # dd-lint: disable=DD001 (host-side wall clock for the CLI's elapsed-time report, never feeds simulated state)
    finally:
        set_audit_interval(0.0)
        set_default_admission(None)
        if tracer is not None:
            from ..obs import set_tracer

            set_tracer(None)
    trace_jsonl = trace_perfetto = None
    if tracer is not None:
        from ..obs import attach_latency_report, to_jsonl, to_perfetto

        # Fold p50/p90/p99/p999 per op into the run report itself.
        attach_latency_report(result, tracer)
        trace_jsonl = to_jsonl(tracer)
        trace_perfetto = to_perfetto(tracer)
    profile_blob = None
    if profiler is not None:
        import marshal

        profiler.create_stats()
        profile_blob = marshal.dumps(profiler.stats)
    summary = result.summary(plots=plots)
    json_text = None
    if want_json:
        from ..analysis import result_to_json

        json_text = result_to_json(result)
    return (name, summary, elapsed, json_text, trace_jsonl, trace_perfetto,
            profile_blob)


def _emit(args, name: str, summary: str, elapsed: float,
          json_text: Optional[str], trace_jsonl: Optional[str] = None,
          trace_perfetto: Optional[str] = None) -> None:
    cls = ALL_EXPERIMENTS[name]
    print(f"\n### running {name} ({cls.exp_id}) at scale {args.scale} ###")
    print(summary)
    print(f"(wall time {elapsed:.1f}s)")
    if args.out is not None:
        (args.out / f"{name}.txt").write_text(summary + "\n")
        if json_text is not None:
            (args.out / f"{name}.json").write_text(json_text)
    if trace_jsonl is not None:
        # Artifacts are written by the parent in canonical experiment
        # order, so --jobs fan-out yields the same files as a serial run.
        jsonl_path = Path(f"{args.trace}_{name}.jsonl")
        perfetto_path = Path(f"{args.trace}_{name}.perfetto.json")
        jsonl_path.write_text(trace_jsonl)
        perfetto_path.write_text(trace_perfetto)
        print(f"(trace written to {jsonl_path} and {perfetto_path})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the DoubleDecker paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name, comma-separated names, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset/cache scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--no-plots", action="store_true",
                        help="omit ASCII occupancy plots")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to also write summaries into")
    parser.add_argument("--json", action="store_true",
                        help="with --out, also write machine-readable JSON")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments in N worker processes "
                             "(results identical to serial; default 1); "
                             "for fleet-topology experiments also the "
                             "shard-worker count per fleet")
    parser.add_argument("--hosts", type=int, default=None, metavar="N",
                        help="host count for fleet-topology experiments "
                             "(default: experiment-specific)")
    parser.add_argument("--audit", type=float, nargs="?", const=10.0,
                        default=0.0, metavar="SECONDS",
                        help="audit every cache's shadow accounting every "
                             "SECONDS simulated seconds (default 10 when "
                             "the flag is given); aborts on any invariant "
                             "violation")
    parser.add_argument("--admission", default=None, metavar="POLICY",
                        help="process-wide default SSD admission policy "
                             "(admit_all, second_access, write_throttle) "
                             "for pools that don't set their own")
    parser.add_argument("--trace", nargs="?", const="trace", default=None,
                        metavar="PREFIX",
                        help="record an operation/provenance trace per "
                             "experiment; writes PREFIX_<name>.jsonl and "
                             "PREFIX_<name>.perfetto.json (PREFIX defaults "
                             "to 'trace'); analyze with python -m repro.obs")
    parser.add_argument("--trace-ops", type=int, default=200_000, metavar="N",
                        help="flight-recorder capacity: keep the newest N "
                             "events (default 200000)")
    parser.add_argument("--trace-sample", type=int, default=1, metavar="K",
                        help="record every Kth span per span type; "
                             "histograms and provenance still see every op "
                             "(default 1 = record all)")
    parser.add_argument("--profile", nargs="?", const="profile.pstats",
                        default=None, metavar="FILE",
                        help="profile the run with cProfile and dump "
                             "pstats to FILE (default profile.pstats); "
                             "with --jobs N each experiment is profiled "
                             "in its worker and written as "
                             "<stem>.<rank>.pstats in canonical order")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("available experiments:")
        for name, cls in ALL_EXPERIMENTS.items():
            print(f"  {name:20s} {cls.exp_id:18s} {cls.description.strip()[:60]}")
        return 0

    if args.experiment == "all":
        names = list(ALL_EXPERIMENTS)
    else:
        names = [part.strip() for part in args.experiment.split(",") if part.strip()]
        if not names:
            print(f"empty experiment list {args.experiment!r}; use --list",
                  file=sys.stderr)
            return 2
        unknown = [name for name in names if name not in ALL_EXPERIMENTS]
        if unknown:
            print(f"unknown experiment {', '.join(map(repr, unknown))}; use --list",
                  file=sys.stderr)
            return 2

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    if args.hosts is not None and not any(
        getattr(ALL_EXPERIMENTS[name], "takes_fleet_args", False)
        for name in names
    ):
        print("--hosts only applies to fleet-topology experiments "
              "(e.g. 'fleet')", file=sys.stderr)
        return 2

    if args.audit < 0:
        print(f"--audit must be >= 0, got {args.audit}", file=sys.stderr)
        return 2

    if args.admission is not None:
        from ..core import ADMISSION_POLICIES

        if args.admission not in ADMISSION_POLICIES:
            print(f"unknown admission policy {args.admission!r}; choose from "
                  f"{', '.join(ADMISSION_POLICIES)}", file=sys.stderr)
            return 2

    if args.trace_ops < 1:
        print(f"--trace-ops must be >= 1, got {args.trace_ops}", file=sys.stderr)
        return 2
    if args.trace_sample < 1:
        print(f"--trace-sample must be >= 1, got {args.trace_sample}",
              file=sys.stderr)
        return 2

    # Under --jobs, profiling must happen inside the workers (profiling
    # the pool's parent would only see an idle dispatcher), so the flag
    # rides along in the task tuple.
    fan_out = args.jobs > 1 and len(names) > 1
    profile_in_worker = args.profile is not None and fan_out
    tasks = [(name, args.scale, args.seed, not args.no_plots, args.json,
              args.audit, args.admission,
              args.trace, args.trace_ops, args.trace_sample,
              profile_in_worker, args.hosts, args.jobs)
             for name in names]

    if args.profile is not None and not fan_out:
        # Serial run: one profiler around everything, one pstats file.
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            for task in tasks:
                _emit(args, *_run_one(task)[:6])
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"\nprofile written to {args.profile}; top hotspots:")
        stats.print_stats(10)
        return 0

    if fan_out:
        import multiprocessing as mp

        profile_paths = []
        base = Path(args.profile) if profile_in_worker else None
        # imap preserves submission order, so output — and the profile
        # rank numbering — stays deterministic no matter which worker
        # finishes first.
        with mp.Pool(processes=min(args.jobs, len(tasks))) as pool:
            for rank, outcome in enumerate(pool.imap(_run_one, tasks)):
                _emit(args, *outcome[:6])
                if base is not None:
                    suffix = base.suffix or ".pstats"
                    path = base.with_name(f"{base.stem}.{rank}{suffix}")
                    # The blob is marshalled cProfile stats — identical
                    # bytes to Profile.dump_stats, loadable by pstats.
                    path.write_bytes(outcome[6])
                    profile_paths.append(path)
                    print(f"(profile written to {path})")
        if profile_paths:
            import pstats

            stats = pstats.Stats(str(profile_paths[0]))
            for path in profile_paths[1:]:
                stats.add(str(path))
            stats.sort_stats("cumulative")
            print(f"\ncombined hotspots across {len(profile_paths)} workers:")
            stats.print_stats(10)
    else:
        for task in tasks:
            _emit(args, *_run_one(task)[:6])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
