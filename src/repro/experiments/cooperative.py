"""TAB-4 — efficacy of cooperative memory management (§5.2.1).

Four data-store containers (MongoDB, MySQL, Redis, Webserver) with
per-application SLAs share one VM and a 2 GB hypervisor cache.

* **Morai++** approximates centralized SLA-driven cache partitioning: the
  VM-internal memory provisioning is untouched (containers share the VM
  under global reclaim) and we exhaustively search static hypervisor-cache
  partitions, reporting the best (SLA-adherent, max aggregate) one.
* **DoubleDecker** additionally provisions *in-VM* memory (cgroup limits
  1 / 2 / 2 / 1 GB chosen from the Table-1-style diagnosis) and searches
  the cache weights — the two-level provisioning centralized schemes
  cannot express.

The paper's shape: Morai++ cannot satisfy Redis/MySQL (anonymous-memory
apps squeezed by the webserver's page-cache appetite); DoubleDecker meets
every SLA, with Redis improving by orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..context import SimContext
from ..core import CachePolicy, DDConfig
from ..hypervisor import HostSpec
from ..workloads import (
    MongoWorkload,
    MySQLWorkload,
    RedisWorkload,
    WebserverWorkload,
)
from .runner import Experiment, ExperimentResult, measure_window

__all__ = ["CooperativeExperiment", "DEFAULT_SLAS", "PARTITION_CANDIDATES"]

APPS = ("mongodb", "mysql", "redis", "webserver")

#: Target throughputs (ops/sec); chosen to discriminate like the paper's.
DEFAULT_SLAS = {"mongodb": 15.0, "mysql": 50.0, "redis": 5000.0, "webserver": 100.0}

#: Hypervisor-cache split candidates (%, order = APPS).  The paper swept
#: partitions by hand; this grid includes its reported winner (60:40
#: between MongoDB and Webserver) and the natural alternatives.
PARTITION_CANDIDATES: List[Tuple[float, float, float, float]] = [
    (25.0, 25.0, 25.0, 25.0),
    (60.0, 0.0, 0.0, 40.0),
    (40.0, 0.0, 0.0, 60.0),
    (30.0, 0.0, 0.0, 70.0),
    (50.0, 25.0, 0.0, 25.0),
    (34.0, 33.0, 0.0, 33.0),
]

#: DoubleDecker's in-VM memory plan (GB at scale 1.0), from the VM-level
#: manager's knowledge of anon vs file behaviour (Table 1).
DD_MEMORY_PLAN_GB = {"mongodb": 1.0, "mysql": 2.0, "redis": 2.0, "webserver": 1.0}


class CooperativeExperiment(Experiment):
    """Morai++ (centralized) vs DoubleDecker (cooperative two-level)."""

    exp_id = "TAB-4"
    name = "cooperative"
    description = (
        "SLA-driven provisioning of four data stores: centralized cache "
        "partition search (Morai++) vs DoubleDecker's cooperative in-VM + "
        "cache provisioning."
    )

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 warmup_s: float = None, duration_s: float = None,
                 slas: Optional[Dict[str, float]] = None,
                 candidates: Optional[Sequence[Tuple[float, ...]]] = None) -> None:
        super().__init__(scale, seed)
        self.warmup_s = warmup_s if warmup_s is not None else self.secs(300.0)
        self.duration_s = duration_s if duration_s is not None else self.secs(300.0)
        self.slas = dict(slas or DEFAULT_SLAS)
        self.candidates = list(candidates or PARTITION_CANDIDATES)

    def _make_workloads(self):
        return {
            "mongodb": MongoWorkload(nrecords=self.count(3_000_000), threads=2),
            "mysql": MySQLWorkload(
                nrecords=self.count(2_000_000),
                buffer_pool_mb=self.mb(1024.0), threads=2),
            "redis": RedisWorkload(nrecords=self.count(1_900_000), threads=2),
            "webserver": WebserverWorkload(
                nfiles=self.count(15000), mean_size_kb=128.0, threads=2,
                cpu_think_ms=3.0),
        }

    def _run_config(self, technique: str,
                    partition: Tuple[float, ...]) -> Dict[str, dict]:
        """One simulation run; returns per-app rates + memory usage."""
        ctx = SimContext(seed=self.seed)
        host = ctx.create_host(HostSpec())
        vm_mb = self.mb(6144)

        if technique == "morai":
            cache = host.install_static_partition(capacity_mb=self.mb(2048))
        else:
            cache = host.install_doubledecker(DDConfig(mem_capacity_mb=self.mb(2048)))

        vm = host.create_vm("vm1", memory_mb=vm_mb, vcpus=8)
        workloads = self._make_workloads()
        containers = {}
        for app, weight in zip(APPS, partition):
            if technique == "morai":
                # Centralized: the VM is a black box; containers share the
                # VM memory with no individual limits.
                limit = vm_mb
                policy = CachePolicy.memory(100.0)
            else:
                limit = self.mb(DD_MEMORY_PLAN_GB[app] * 1024)
                policy = (CachePolicy.memory(weight) if weight > 0
                          else CachePolicy.none())
            container = vm.create_container(app, limit, policy)
            containers[app] = container
            if technique == "morai":
                cache.set_partition(container.pool_id,
                                    self.mb(2048) * weight / 100.0)
        for app, workload in workloads.items():
            workload.start(containers[app], ctx.streams)

        rates = measure_window(
            ctx, list(workloads.values()), self.warmup_s, self.duration_s
        )
        out: Dict[str, dict] = {}
        for app, workload in workloads.items():
            container = containers[app]
            cell = dict(rates[workload.name])
            cell["app_memory_gb"] = (container.anon_mb + container.file_mb) / 1024.0
            cell["hvcache_gb"] = container.hvcache_mb / 1024.0
            out[app] = cell
        return out

    def _score(self, cells: Dict[str, dict]) -> Tuple[int, float]:
        """(#SLAs met, aggregate throughput) — lexicographic, as in the
        paper: first SLA adherence, then maximum aggregate ops/sec."""
        met = sum(
            1 for app in APPS if cells[app]["ops_per_s"] >= self.slas[app]
        )
        aggregate = sum(cells[app]["ops_per_s"] for app in APPS)
        return met, aggregate

    def _search(self, technique: str) -> Tuple[Tuple[float, ...], Dict[str, dict]]:
        best_partition = None
        best_cells = None
        best_score = (-1, -1.0)
        for partition in self.candidates:
            cells = self._run_config(technique, partition)
            score = self._score(cells)
            if score > best_score:
                best_score = score
                best_partition = partition
                best_cells = cells
        return best_partition, best_cells

    def run(self) -> ExperimentResult:
        result = ExperimentResult(self.name, self.description)
        morai_part, morai = self._search("morai")
        dd_part, dd = self._search("dd")

        rows: List[List[object]] = []
        for app in APPS:
            for technique, cells in (("Morai++", morai), ("DoubleDecker", dd)):
                cell = cells[app]
                rows.append([
                    app,
                    f"{self.slas[app]:.0f}",
                    technique,
                    round(cell["ops_per_s"], 1),
                    "yes" if cell["ops_per_s"] >= self.slas[app] else "NO",
                    round(cell["app_memory_gb"], 2),
                    round(cell["hvcache_gb"], 2),
                ])
        result.add_table(
            "table4: centralized vs cooperative provisioning",
            ["workload", "SLA (ops/s)", "technique", "ops/s", "SLA met",
             "app memory (GB)", "hv cache (GB)"],
            rows,
        )
        result.note(f"Morai++ best partition (mongo/mysql/redis/web %): {morai_part}")
        result.note(f"DoubleDecker best weights: {dd_part}; "
                    f"in-VM plan GB: {DD_MEMORY_PLAN_GB}")
        for app in APPS:
            base = morai[app]["ops_per_s"]
            result.scalars[f"{app}_dd_vs_morai"] = (
                dd[app]["ops_per_s"] / base if base > 0 else float("inf")
            )
        result.scalars["morai_slas_met"] = self._score(morai)[0]
        result.scalars["dd_slas_met"] = self._score(dd)[0]
        result.note(
            "Paper shape: Morai++ misses the Redis and MySQL SLAs (anon "
            "memory squeezed by the webserver's page-cache appetite) while "
            "DD meets all four; Redis improves by ~1000x under DD."
        )
        return result
