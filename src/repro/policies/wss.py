"""Working-set-size estimation over sliding windows.

The lightweight companion to MRC estimation: tracks how many distinct
blocks a container touched in recent time windows, which the adaptive
controller uses to detect anon-heavy vs file-heavy behaviour and to cap
useless cache shares (a container cannot profit from more cache than its
working set).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, Optional

__all__ = ["WSSEstimator"]


class WSSEstimator:
    """Distinct-reference counter over a sliding simulated-time window.

    Maintains per-epoch key sets; the working set at query time is the
    union of the sets in the window.  Epoch rotation keeps cost bounded
    and gives a natural decay.
    """

    def __init__(self, window_s: float = 120.0, epochs: int = 4) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        if epochs < 1:
            raise ValueError(f"need at least one epoch, got {epochs}")
        self.window_s = window_s
        self.epochs = epochs
        self._epoch_len = window_s / epochs
        self._buckets: Deque[set] = deque([set()], maxlen=epochs)
        self._epoch_start = 0.0
        self.total_accesses = 0

    def _rotate_to(self, now: float) -> None:
        if now - self._epoch_start > self.window_s + self._epoch_len:
            # Long idle gap: everything in the window has expired.
            self._buckets.clear()
            self._buckets.append(set())
            self._epoch_start = now
            return
        while now - self._epoch_start >= self._epoch_len:
            self._buckets.append(set())
            self._epoch_start += self._epoch_len

    def access(self, key: Hashable, now: float) -> None:
        """Record one access at simulated time ``now``."""
        self._rotate_to(now)
        self._buckets[-1].add(key)
        self.total_accesses += 1

    def working_set(self, now: Optional[float] = None) -> int:
        """Distinct keys referenced within the window."""
        if now is not None:
            self._rotate_to(now)
        union: set = set()
        for bucket in self._buckets:
            union |= bucket
        return len(union)

    def hot_set(self) -> int:
        """Distinct keys in the most recent epoch only."""
        return len(self._buckets[-1]) if self._buckets else 0
