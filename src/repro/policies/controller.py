"""Adaptive in-VM policy controllers.

The paper's closing argument (§5.2.1): because DoubleDecker exposes
per-container statistics (GET_STATS) and accepts live re-weighting
(SET_CG_WEIGHT), a VM-level controller can provision the hypervisor cache
*adaptively* using MRC/WSS estimation — something centralized schemes
cannot do.  This module supplies that controller.

:class:`AdaptiveWeightController` periodically:

1. samples each container's cache stats (hits, misses, usage),
2. folds per-container access profiles into SHARDS miss-ratio curves,
3. solves a greedy marginal-gain allocation of the VM's cache share, and
4. pushes the resulting ``<T, W>`` weights via ``SET_CG_WEIGHT``.

:class:`BalloonController` additionally rebalances *in-VM* cgroup memory
between anon-bound and file-bound containers — the cooperative two-level
story of Table 4, automated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import CachePolicy
from ..guest import Container
from ..simkernel import Environment, Interrupt
from .mrc import MissRatioCurve, ShardsEstimator

__all__ = ["AdaptiveWeightController", "BalloonController"]


class _ContainerProfile:
    """Per-container adaptive state."""

    __slots__ = ("container", "estimator", "last_stats", "weight")

    def __init__(self, container: Container, sample_rate: float) -> None:
        self.container = container
        self.estimator = ShardsEstimator(initial_rate=sample_rate)
        self.last_stats = None
        self.weight = 0.0


class AdaptiveWeightController:
    """Greedy MRC-driven cache-weight controller for one VM.

    The controller taps the guest's cleancache *get* stream (installed via
    :meth:`attach`) to feed the SHARDS estimators — in the real system
    this is a kernel hook; here it wraps the guest OS method.
    """

    def __init__(
        self,
        env: Environment,
        containers: List[Container],
        total_cache_blocks: int,
        interval_s: float = 60.0,
        sample_rate: float = 0.05,
        min_weight: float = 5.0,
        quantum_blocks: int = 256,
    ) -> None:
        if not containers:
            raise ValueError("need at least one container to control")
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.env = env
        self.total_cache_blocks = total_cache_blocks
        self.interval_s = interval_s
        self.min_weight = min_weight
        self.quantum_blocks = max(1, quantum_blocks)
        self.profiles: Dict[str, _ContainerProfile] = {
            c.name: _ContainerProfile(c, sample_rate) for c in containers
        }
        self.rounds = 0
        self._proc = None
        self._installed = False

    # -- wiring ----------------------------------------------------------------

    def attach(self) -> None:
        """Hook the VM's miss stream and start the control loop."""
        if self._installed:
            return
        self._installed = True
        vm = next(iter(self.profiles.values())).container.vm
        original = vm.os._fill_misses
        profiles = self.profiles

        def tapped(cgroup, file, misses, result):
            profile = profiles.get(cgroup.name)
            if profile is not None:
                for key in misses:
                    profile.estimator.access(key)
            return original(cgroup, file, misses, result)

        vm.os._fill_misses = tapped
        self._proc = self.env.process(self._loop(), name="adaptive-controller")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
            self._proc = None

    # -- the control loop ------------------------------------------------------------

    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval_s)
                self.rebalance()
        except Interrupt:
            return

    def rebalance(self) -> Dict[str, float]:
        """One control round: estimate curves, allocate, apply weights."""
        self.rounds += 1
        curves: Dict[str, MissRatioCurve] = {}
        rates: Dict[str, float] = {}
        for name, profile in self.profiles.items():
            curves[name] = profile.estimator.curve()
            rates[name] = max(1.0, float(profile.estimator.accesses))

        allocation = self._greedy_allocate(curves, rates)
        total = sum(allocation.values()) or 1.0
        weights: Dict[str, float] = {}
        for name, blocks in allocation.items():
            weight = max(self.min_weight, 100.0 * blocks / total)
            weights[name] = weight
        self._apply(weights)
        return weights

    def _greedy_allocate(self, curves: Dict[str, MissRatioCurve],
                         rates: Dict[str, float]) -> Dict[str, int]:
        """Steepest-average-slope water-filling.

        Plain quantum-greedy stalls on MRC *cliffs* (a cyclic or
        nearly-cyclic pattern gains nothing until the whole working set
        fits).  Instead, each step looks ahead along the curve for the
        jump with the best average miss-savings per block (the convex
        minorant of the MRC) and allocates that jump at once.
        """
        allocation = {name: 0 for name in curves}
        remaining = self.total_cache_blocks
        while remaining >= self.quantum_blocks:
            best_name = None
            best_slope = 0.0
            best_delta = 0
            for name, curve in curves.items():
                current = allocation[name]
                here = curve.miss_ratio_at(current)
                targets = [s for s in curve.sizes
                           if current < s <= current + remaining]
                targets.append(current + remaining)
                for target in targets:
                    delta = target - current
                    if delta < self.quantum_blocks:
                        continue
                    gain = here - curve.miss_ratio_at(target)
                    slope = gain / delta * rates[name]
                    if slope > best_slope:
                        best_slope = slope
                        best_name = name
                        best_delta = delta
            if best_name is None:
                break  # nobody benefits; stop handing out capacity
            allocation[best_name] += best_delta
            remaining -= best_delta
        if all(v == 0 for v in allocation.values()):
            # Degenerate cold start: split evenly.
            share = self.total_cache_blocks // max(1, len(allocation))
            allocation = {name: share for name in allocation}
        return allocation

    def _apply(self, weights: Dict[str, float]) -> None:
        for name, weight in weights.items():
            profile = self.profiles[name]
            profile.weight = weight
            policy = profile.container.cgroup.policy
            if policy.ssd_weight > 0 and policy.mem_weight == 0:
                new_policy = CachePolicy.ssd(weight)
            else:
                new_policy = CachePolicy.memory(weight)
            profile.container.set_cache_policy(new_policy)


class BalloonController:
    """Two-level rebalancer: shifts in-VM memory toward swapping
    containers and compensates file-bound ones with hypervisor cache.

    A minimal automated version of the manual provisioning the paper does
    for Table 4: watch swap-out rates; grow the cgroup limit of the worst
    swapper at the expense of the container with the most reclaimable file
    cache (whose working set the hypervisor cache can absorb instead).
    """

    def __init__(
        self,
        env: Environment,
        containers: List[Container],
        interval_s: float = 120.0,
        step_mb: float = 128.0,
        min_limit_mb: float = 128.0,
    ) -> None:
        if len(containers) < 2:
            raise ValueError("need at least two containers to rebalance")
        self.env = env
        self.containers = list(containers)
        self.interval_s = interval_s
        self.step_mb = step_mb
        self.min_limit_mb = min_limit_mb
        self._last_swap: Dict[str, float] = {
            c.name: c.cgroup.swap_out_blocks for c in containers
        }
        self.moves = 0
        self._proc = env.process(self._loop(), name="balloon-controller")

    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval_s)
                self.rebalance()
        except Interrupt:
            return

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
            self._proc = None

    def rebalance(self) -> Optional[str]:
        """One round; returns the name of the grown container, if any."""
        swap_rates: Dict[str, float] = {}
        for container in self.containers:
            now = container.cgroup.swap_out_blocks
            swap_rates[container.name] = now - self._last_swap[container.name]
            self._last_swap[container.name] = now

        needy = max(self.containers, key=lambda c: swap_rates[c.name])
        if swap_rates[needy.name] <= 0:
            return None
        block_mb = needy.vm.block_bytes / (1 << 20)
        donors = [
            c for c in self.containers
            if c is not needy
            and c.cgroup.limit_blocks * block_mb - self.step_mb
            >= self.min_limit_mb
        ]
        if not donors:
            return None
        # Donate from the container with the most file cache (its pages
        # can live in the hypervisor cache instead).
        donor = max(donors, key=lambda c: c.cgroup.file_blocks)
        donor_mb = donor.cgroup.limit_blocks * block_mb
        needy_mb = needy.cgroup.limit_blocks * block_mb
        donor.set_memory_limit_mb(donor_mb - self.step_mb)
        needy.set_memory_limit_mb(needy_mb + self.step_mb)
        self.moves += 1
        return needy.name
