"""Adaptive provisioning policies (the paper's §5.2.1 direction):
MRC/SHARDS estimation, WSS tracking, and in-VM controllers that drive
SET_CG_WEIGHT / cgroup-limit changes from live measurements."""

from .controller import AdaptiveWeightController, BalloonController
from .mrc import MissRatioCurve, ReuseDistanceTracker, ShardsEstimator
from .wss import WSSEstimator

__all__ = [
    "AdaptiveWeightController",
    "BalloonController",
    "MissRatioCurve",
    "ReuseDistanceTracker",
    "ShardsEstimator",
    "WSSEstimator",
]
