"""Miss-ratio curve (MRC) estimation.

The paper (§5.2.1) points at MRC and SHARDS-style estimation as the way a
VM-level manager would *discover* good cache partitions instead of having
them hand-configured.  This module implements both:

* :class:`ReuseDistanceTracker` — exact LRU reuse-distance histogram via
  the classic Mattson stack algorithm (a balanced order-statistics tree
  would be O(log n); the stack here uses a Fenwick tree over access
  timestamps, which is the standard O(log n) trick).
* :class:`ShardsEstimator` — SHARDS (Waldspurger et al., FAST '15):
  spatially-hashed sampling with rate adaptation, giving approximate MRCs
  at a tiny fraction of the cost.

Both produce a :class:`MissRatioCurve` that answers "what would the miss
ratio be at cache size X?" — exactly what an adaptive weight controller
needs.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable, List, Optional

__all__ = ["MissRatioCurve", "ReuseDistanceTracker", "ShardsEstimator"]


class MissRatioCurve:
    """A miss-ratio curve over cache sizes (in blocks)."""

    def __init__(self, sizes: List[int], miss_ratios: List[float],
                 total_accesses: int) -> None:
        if len(sizes) != len(miss_ratios):
            raise ValueError("sizes and miss_ratios must align")
        self.sizes = sizes
        self.miss_ratios = miss_ratios
        self.total_accesses = total_accesses

    def miss_ratio_at(self, size: int) -> float:
        """Interpolated miss ratio for a cache of ``size`` blocks."""
        if not self.sizes:
            return 1.0
        if size <= self.sizes[0]:
            return self.miss_ratios[0]
        for (s0, m0), (s1, m1) in zip(
            zip(self.sizes, self.miss_ratios),
            zip(self.sizes[1:], self.miss_ratios[1:]),
        ):
            if size <= s1:
                if s1 == s0:
                    return m1
                frac = (size - s0) / (s1 - s0)
                return m0 + frac * (m1 - m0)
        return self.miss_ratios[-1]

    def marginal_gain(self, size: int, delta: int) -> float:
        """Miss-ratio reduction from growing the cache by ``delta``."""
        if delta <= 0:
            return 0.0
        return self.miss_ratio_at(size) - self.miss_ratio_at(size + delta)


class _Fenwick:
    """Binary indexed tree over access positions (for stack distances)."""

    __slots__ = ("tree", "n")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, idx: int, delta: int) -> None:
        idx += 1
        while idx <= self.n:
            self.tree[idx] += delta
            idx += idx & (-idx)

    def prefix_sum(self, idx: int) -> int:
        """Sum of positions [0, idx]."""
        idx += 1
        total = 0
        while idx > 0:
            total += self.tree[idx]
            idx -= idx & (-idx)
        return total

    def grow(self, new_n: int) -> None:
        if new_n <= self.n:
            return
        old = self
        grown = _Fenwick(new_n)
        # Rebuild from per-position values (O(n log n), amortized rare).
        for pos in range(old.n):
            value = old.prefix_sum(pos) - (old.prefix_sum(pos - 1) if pos else 0)
            if value:
                grown.add(pos, value)
        self.tree = grown.tree
        self.n = grown.n


class ReuseDistanceTracker:
    """Exact LRU stack-distance histogram (Mattson) in O(log n) per access."""

    def __init__(self, max_tracked: int = 1 << 20) -> None:
        self.max_tracked = max_tracked
        self._last_pos: Dict[Hashable, int] = {}
        self._clock = 0
        self._fenwick = _Fenwick(1024)
        #: histogram: stack distance -> count (inf distances in `cold`)
        self.histogram: Dict[int, int] = {}
        self.cold_misses = 0
        self.accesses = 0

    def access(self, key: Hashable) -> Optional[int]:
        """Record one access; returns its stack distance (None if cold)."""
        self.accesses += 1
        if self._clock >= self._fenwick.n:
            self._fenwick.grow(self._fenwick.n * 2)
        last = self._last_pos.get(key)
        distance: Optional[int] = None
        if last is None:
            self.cold_misses += 1
        else:
            # Stack distance = number of distinct keys accessed since.
            distance = (
                self._fenwick.prefix_sum(self._clock - 1)
                - self._fenwick.prefix_sum(last)
            )
            self.histogram[distance] = self.histogram.get(distance, 0) + 1
            self._fenwick.add(last, -1)
        self._fenwick.add(self._clock, 1)
        self._last_pos[key] = self._clock
        self._clock += 1
        if len(self._last_pos) > self.max_tracked:
            # Tracking bound: drop the oldest half (approximation guard).
            ordered = sorted(self._last_pos.items(), key=lambda kv: kv[1])
            for key_, _ in ordered[: len(ordered) // 2]:
                del self._last_pos[key_]
        return distance

    def curve(self, points: int = 32) -> MissRatioCurve:
        """Integrate the histogram into a miss-ratio curve."""
        if not self.accesses:
            return MissRatioCurve([], [], 0)
        max_distance = max(self.histogram) if self.histogram else 1
        sizes: List[int] = []
        ratios: List[float] = []
        step = max(1, max_distance // max(1, points - 1))
        ordered = sorted(self.histogram.items())
        for size in range(0, max_distance + step, step):
            hits = sum(count for dist, count in ordered if dist < size)
            misses = self.accesses - hits
            sizes.append(size)
            ratios.append(misses / self.accesses)
        return MissRatioCurve(sizes, ratios, self.accesses)


class ShardsEstimator:
    """SHARDS: sampled reuse distances with spatial hashing.

    Keys whose hash falls below the sampling threshold are tracked with an
    exact tracker; recorded distances are scaled up by 1/rate.  With
    ``fixed_size`` set, the sample set is bounded and the rate adapts
    downward (SHARDS_adj's eviction rule).
    """

    def __init__(self, initial_rate: float = 0.01,
                 fixed_size: Optional[int] = 2048) -> None:
        if not (0.0 < initial_rate <= 1.0):
            raise ValueError(f"rate must be in (0, 1], got {initial_rate}")
        self.rate = initial_rate
        self.fixed_size = fixed_size
        self._modulus = 1 << 24
        self._threshold = int(initial_rate * self._modulus)
        self._tracker = ReuseDistanceTracker()
        #: sampled keys -> their hash value (for rate-adaptive eviction)
        self._sampled: Dict[Hashable, int] = {}
        self.accesses = 0
        self.sampled_accesses = 0

    @staticmethod
    def _seed_independent(key: Hashable) -> bool:
        """True when ``hash(key)`` cannot depend on PYTHONHASHSEED:
        ints (and tuples of such, like BlockKey) hash structurally;
        str/bytes — and anything containing them — are randomized per
        process, which would make the *sample set* (and therefore the
        MRC the adaptive controller acts on) differ across runs and
        ``--jobs`` workers."""
        if isinstance(key, (int, bool)):
            return True
        if isinstance(key, tuple):
            return all(ShardsEstimator._seed_independent(item) for item in key)
        return False

    @staticmethod
    def _hash(key: Hashable) -> int:
        # Fibonacci hashing of a seed-independent basis: cheap,
        # well-spread, and stable across processes.  Int/int-tuple keys
        # keep Python's structural hash (the historical behaviour, so
        # fixed-seed fingerprints are unchanged); hash-randomized types
        # fall back to a CRC of their canonical repr.
        if ShardsEstimator._seed_independent(key):
            basis = hash(key)
        else:
            basis = zlib.crc32(repr(key).encode("utf-8"))
        return (basis * 2654435761) % (1 << 32)

    def access(self, key: Hashable) -> None:
        """Record one access (sampled internally)."""
        self.accesses += 1
        value = self._hash(key) % self._modulus
        if value >= self._threshold:
            return
        self.sampled_accesses += 1
        self._tracker.access(key)
        self._sampled[key] = value
        if self.fixed_size and len(self._sampled) > self.fixed_size:
            self._lower_rate()

    def _lower_rate(self) -> None:
        """Evict the highest-hash sampled keys and shrink the threshold."""
        cutoff = sorted(self._sampled.values())[self.fixed_size // 2]
        self._threshold = max(1, cutoff)
        self.rate = self._threshold / self._modulus
        for key in [k for k, v in self._sampled.items() if v >= cutoff]:
            del self._sampled[key]
            self._tracker._last_pos.pop(key, None)

    def curve(self, points: int = 32) -> MissRatioCurve:
        """Scaled miss-ratio curve (sizes scaled by 1/rate)."""
        base = self._tracker.curve(points)
        scale = 1.0 / self.rate if self.rate > 0 else 1.0
        sizes = [int(size * scale) for size in base.sizes]
        return MissRatioCurve(sizes, base.miss_ratios, self.accesses)

    def working_set_estimate(self) -> int:
        """Distinct-block estimate: sampled uniques scaled by 1/rate."""
        if self.rate <= 0:
            return 0
        return int(len(self._sampled) / self.rate)
