"""Post-run analysis helpers.

Turns :class:`~repro.experiments.runner.ExperimentResult` and
:class:`~repro.experiments.scenarios.ScenarioResult` objects into
comparable, exportable artifacts: speedup tables, series CSV/JSON dumps,
and simple shape checks (the same ones the benchmark suite asserts,
available programmatically).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from .metrics import TimeSeries, format_table

__all__ = [
    "speedup_table",
    "series_to_json",
    "result_to_json",
    "compare_scalars",
    "shape_check",
    "ShapeExpectation",
]


def speedup_table(
    baseline: Mapping[str, float],
    variants: Mapping[str, Mapping[str, float]],
    metric_name: str = "throughput",
) -> str:
    """Render per-key speedups of each variant over a baseline.

    ``baseline`` maps workload -> value; ``variants`` maps variant name ->
    (workload -> value).  Zero/absent baselines render as ``inf``.
    """
    headers = ["workload", f"baseline {metric_name}"] + [
        f"{name} speedup" for name in variants
    ]
    rows: List[List[object]] = []
    for key in baseline:
        row: List[object] = [key, round(baseline[key], 2)]
        for name, values in variants.items():
            value = values.get(key, 0.0)
            base = baseline[key]
            row.append(round(value / base, 2) if base > 0 else float("inf"))
        rows.append(row)
    return format_table(headers, rows)


def series_to_json(series: Mapping[str, TimeSeries]) -> str:
    """Serialize occupancy traces to JSON (times/values per label)."""
    payload = {
        label: {"times": list(ts.times), "values": list(ts.values)}
        for label, ts in series.items()
    }
    return json.dumps(payload, sort_keys=True)


def result_to_json(result) -> str:
    """Serialize an ExperimentResult (tables, scalars, notes) to JSON."""
    payload: Dict[str, Any] = {
        "name": result.name,
        "description": result.description,
        "scalars": dict(result.scalars),
        "notes": list(result.notes),
        "tables": {
            key: {"headers": list(headers), "rows": [list(r) for r in rows]}
            for key, (headers, rows) in result.rows.items()
        },
        "series": {
            label: {"times": list(ts.times), "values": list(ts.values)}
            for label, ts in result.series.items()
        },
    }
    return json.dumps(payload, sort_keys=True)


def compare_scalars(
    a: Mapping[str, float], b: Mapping[str, float], rel_tol: float = 0.05
) -> Dict[str, dict]:
    """Diff two scalar dicts; returns per-key {a, b, ratio, within_tol}."""
    out: Dict[str, dict] = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        entry: Dict[str, Any] = {"a": va, "b": vb}
        if va is not None and vb is not None and va != 0:
            ratio = vb / va
            entry["ratio"] = ratio
            entry["within_tol"] = abs(ratio - 1.0) <= rel_tol
        else:
            entry["ratio"] = None
            entry["within_tol"] = va == vb
        out[key] = entry
    return out


class ShapeExpectation:
    """A declarative qualitative expectation over result scalars.

    The same language the benchmark suite uses in code, as data::

        exp = ShapeExpectation()
        exp.greater("web_ddmem_speedup", 3.0)
        exp.ratio_above("redis_dd", "redis_morai", 5.0)
        failures = exp.check(result.scalars)
    """

    def __init__(self) -> None:
        self._checks: List[tuple] = []

    def greater(self, key: str, threshold: float) -> "ShapeExpectation":
        self._checks.append(("greater", key, threshold))
        return self

    def less(self, key: str, threshold: float) -> "ShapeExpectation":
        self._checks.append(("less", key, threshold))
        return self

    def equals(self, key: str, value: float, tol: float = 1e-9) -> "ShapeExpectation":
        self._checks.append(("equals", key, (value, tol)))
        return self

    def ratio_above(self, num_key: str, den_key: str,
                    threshold: float) -> "ShapeExpectation":
        self._checks.append(("ratio", (num_key, den_key), threshold))
        return self

    def check(self, scalars: Mapping[str, float]) -> List[str]:
        """Evaluate all expectations; returns human-readable failures."""
        failures: List[str] = []
        for kind, key, arg in self._checks:
            if kind == "ratio":
                num_key, den_key = key
                num = scalars.get(num_key)
                den = scalars.get(den_key)
                if num is None or den is None or den == 0:
                    failures.append(f"ratio {num_key}/{den_key}: missing data")
                elif num / den <= arg:
                    failures.append(
                        f"ratio {num_key}/{den_key} = {num / den:.3g} <= {arg}"
                    )
                continue
            value = scalars.get(key)
            if value is None:
                failures.append(f"{key}: missing")
            elif kind == "greater" and not value > arg:
                failures.append(f"{key} = {value:.3g} not > {arg}")
            elif kind == "less" and not value < arg:
                failures.append(f"{key} = {value:.3g} not < {arg}")
            elif kind == "equals":
                target, tol = arg
                if abs(value - target) > tol:
                    failures.append(f"{key} = {value:.3g} != {target}")
        return failures


def shape_check(result, expectation: ShapeExpectation) -> None:
    """Assert an expectation against a result (raises AssertionError)."""
    failures = expectation.check(result.scalars)
    if failures:
        raise AssertionError(
            f"shape check failed for {result.name}: " + "; ".join(failures)
        )
