"""Top-level simulation context: one object wiring env, RNG, and metrics.

Most users start here::

    from repro import SimContext, HostSpec, DDConfig, CachePolicy

    ctx = SimContext(seed=42)
    host = ctx.create_host()
    host.install_doubledecker(DDConfig(mem_capacity_mb=2048))
    vm = host.create_vm("vm1", memory_mb=4096)
    web = vm.create_container("web", 1024, CachePolicy.memory(60))
    ...
    ctx.run(until=1800)
"""

from __future__ import annotations

from typing import Optional

from .hypervisor import Host, HostSpec
from .metrics import MetricsRegistry
from .simkernel import Environment, RandomStreams

__all__ = ["SimContext"]


class SimContext:
    """Deterministic simulation session: environment + RNG + metrics."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.env = Environment()
        self.streams = RandomStreams(seed)
        self.registry = MetricsRegistry()

    def create_host(self, spec: Optional[HostSpec] = None) -> Host:
        """Build a host wired to this context's env/RNG/metrics."""
        return Host(self.env, spec=spec, streams=self.streams, registry=self.registry)

    def run(self, until: Optional[float] = None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    @property
    def now(self) -> float:
        return self.env.now
