"""The cgroup subsystem: container lifecycle and cleancache notification.

Implements the paper's cgroup/cleancache integration events:

* ``CREATE_CGROUP``  — on container boot, ask the hypervisor cache for a
  fresh pool id and store it in the cgroup state;
* ``SET_CG_WEIGHT`` — propagate a changed ``<T, W>`` tuple;
* ``DESTROY_CGROUP`` — free the pool;
* ``GET_STATS``     — expose per-container cache stats to the in-VM policy
  controller.

The subsystem only manages *state*; memory charging and reclaim live in
the guest OS, which owns the devices and the page cache.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.config import CachePolicy
from ..core.stats import PoolStats
from .cgroup import Cgroup

__all__ = ["CgroupSubsystem"]


class CgroupSubsystem:
    """Registry of the containers running inside one VM."""

    def __init__(self, cleancache_client) -> None:
        self.cleancache = cleancache_client
        self.cgroups: Dict[int, Cgroup] = {}
        self._by_name: Dict[str, Cgroup] = {}
        self._next_id = 1

    def create(
        self, name: str, limit_blocks: int, policy: CachePolicy
    ) -> Cgroup:
        """Boot a container: allocate the cgroup and its cache pool."""
        if name in self._by_name:
            raise ValueError(f"cgroup {name!r} already exists")
        cgroup = Cgroup(self._next_id, name, limit_blocks, policy)
        self._next_id += 1
        # CREATE_CGROUP: the cleancache layer forwards the event to the
        # hypervisor cache, which returns the unique pool identifier.
        cgroup.pool_id = self.cleancache.create_pool(name, policy)
        self.cgroups[cgroup.cgroup_id] = cgroup
        self._by_name[name] = cgroup
        return cgroup

    def destroy(self, cgroup: Cgroup) -> None:
        """Shut a container down: DESTROY_CGROUP plus local teardown."""
        if not cgroup.alive:
            return
        cgroup.alive = False
        if cgroup.pool_id is not None:
            self.cleancache.destroy_pool(cgroup.pool_id)
            cgroup.pool_id = None
        cgroup.anon.release_all()
        del self.cgroups[cgroup.cgroup_id]
        del self._by_name[cgroup.name]

    def set_policy(self, cgroup: Cgroup, policy: CachePolicy) -> None:
        """SET_CG_WEIGHT: update the <T, W> tuple, locally and remotely."""
        cgroup.policy = policy
        if cgroup.pool_id is not None:
            self.cleancache.set_policy(cgroup.pool_id, policy)

    def set_limit(self, cgroup: Cgroup, limit_blocks: int) -> None:
        """Adjust a container's in-VM memory limit (reclaim is lazy)."""
        cgroup.set_limit(limit_blocks)

    def stats(self, cgroup: Cgroup) -> Optional[PoolStats]:
        """GET_STATS for one container's hypervisor-cache pool."""
        if cgroup.pool_id is None:
            return None
        return self.cleancache.get_stats(cgroup.pool_id)

    def by_name(self, name: str) -> Cgroup:
        cgroup = self._by_name.get(name)
        if cgroup is None:
            raise KeyError(f"no cgroup named {name!r}")
        return cgroup

    def __iter__(self):
        return iter(self.cgroups.values())

    def __len__(self) -> int:
        return len(self.cgroups)
