"""Linux-cgroup-like resource control with DoubleDecker cache extensions."""

from .cgroup import Cgroup
from .subsystem import CgroupSubsystem

__all__ = ["Cgroup", "CgroupSubsystem"]
