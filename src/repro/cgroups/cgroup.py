"""Cgroup state: the guest kernel's view of one application container.

Carries the paper's two DoubleDecker extensions alongside the usual memory
controller state: the hypervisor-cache policy tuple ``<T, W>`` and the
pool id handed back by the hypervisor cache at ``CREATE_CGROUP`` time.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import CachePolicy
from ..mem.anon import AnonSpace

__all__ = ["Cgroup"]


class Cgroup:
    """Memory accounting and cache policy for one container."""

    def __init__(
        self,
        cgroup_id: int,
        name: str,
        limit_blocks: int,
        policy: CachePolicy,
    ) -> None:
        if limit_blocks <= 0:
            raise ValueError(f"cgroup limit must be positive, got {limit_blocks}")
        self.cgroup_id = cgroup_id
        self.name = name
        #: Hard memory limit (anon + file), in blocks.
        self.limit_blocks = limit_blocks
        #: DoubleDecker <T, W> policy (storage type + weight).
        self.policy = policy
        #: Hypervisor-cache pool id (assigned on CREATE_CGROUP).
        self.pool_id: Optional[int] = None
        self.anon = AnonSpace()
        #: Resident file pages charged here (kept in sync by the guest OS).
        self.file_blocks = 0
        #: Cumulative swap traffic in blocks (Table 1's "total swap").
        self.swap_out_blocks = 0
        self.swap_in_blocks = 0
        self.alive = True

    @property
    def anon_blocks(self) -> int:
        """Resident anonymous pages."""
        return self.anon.resident_pages

    @property
    def usage_blocks(self) -> int:
        """Total charged memory (anon + file)."""
        return self.anon_blocks + self.file_blocks

    def headroom(self) -> int:
        """Blocks left before the limit (negative when over)."""
        return self.limit_blocks - self.usage_blocks

    def set_limit(self, limit_blocks: int) -> None:
        """Dynamically adjust the memory limit (reclaim happens lazily)."""
        if limit_blocks <= 0:
            raise ValueError(f"cgroup limit must be positive, got {limit_blocks}")
        self.limit_blocks = limit_blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cgroup {self.name!r} id={self.cgroup_id} "
            f"use={self.usage_blocks}/{self.limit_blocks} pool={self.pool_id}>"
        )
