"""The guest-side cleancache layer.

Sits between the guest page cache and the hypervisor cache, exactly as
Linux ``cleancache`` does: exclusive get on page-cache miss, put on clean
eviction, flush on invalidation — extended per the paper with per-cgroup
pools and the CREATE/SET_WEIGHT/MIGRATE/DESTROY/GET_STATS events.

All data-path methods are generators; they charge hypercall costs through
the :class:`~repro.cleancache.hypercall.HypercallChannel` and then
delegate to whichever :class:`~repro.core.interface.HypervisorCacheBase`
implementation the host runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.config import CachePolicy
from ..core.interface import HypervisorCacheBase
from ..core.pools import BlockKey
from ..core.stats import PoolStats
from ..obs import tracer as _obs
from ..simkernel import Environment
from .hypercall import HypercallChannel, HypercallCosts

__all__ = ["CleancacheClient"]


class CleancacheClient:
    """Per-VM cleancache front-end."""

    def __init__(
        self,
        env: Environment,
        hvcache: HypervisorCacheBase,
        vm_id: int,
        block_bytes: int,
        costs: Optional[HypercallCosts] = None,
        enabled: bool = True,
    ) -> None:
        self.env = env
        self.hvcache = hvcache
        self.vm_id = vm_id
        self.block_bytes = block_bytes
        self.channel = HypercallChannel(env, costs or HypercallCosts())
        #: Kill switch: a guest kernel booted without cleancache support.
        self.enabled = enabled
        #: Histogram-name prefix for per-host breakdowns in a fleet
        #: (e.g. ``"host2."``); empty outside one, leaving names unchanged.
        self.obs_scope = ""

    # -- control path (cgroup events) ------------------------------------------

    def create_pool(self, name: str, policy: CachePolicy) -> Optional[int]:
        """CREATE_CGROUP → new pool id (None when cleancache is off)."""
        if not self.enabled:
            return None
        return self.hvcache.create_pool(self.vm_id, name, policy)

    def destroy_pool(self, pool_id: int) -> None:
        """DESTROY_CGROUP."""
        if self.enabled:
            self.hvcache.destroy_pool(self.vm_id, pool_id)

    def set_policy(self, pool_id: int, policy: CachePolicy) -> None:
        """SET_CG_WEIGHT."""
        if self.enabled:
            self.hvcache.set_policy(self.vm_id, pool_id, policy)

    def get_stats(self, pool_id: int) -> Optional[PoolStats]:
        """GET_STATS."""
        if not self.enabled:
            return None
        return self.hvcache.pool_stats(self.vm_id, pool_id)

    def migrate(self, from_pool: int, to_pool: int, inode: int) -> int:
        """MIGRATE_OBJECT for one shared file."""
        if not self.enabled:
            return 0
        return self.hvcache.migrate_objects(self.vm_id, from_pool, to_pool, inode)

    # -- data path ---------------------------------------------------------------

    # Each data-path op is one top-level span ("op.get", "op.put", ...)
    # covering the manager work *and* the hypercall charge, closed after
    # the last yield so the recorded duration is the guest-visible
    # latency; the same duration feeds the per-op/VM/pool histograms.

    def get_many(self, pool_id: Optional[int], keys: Sequence[BlockKey]):
        """Exclusive lookup; generator returning the found key set."""
        if not self.enabled or pool_id is None or not keys:
            return set()
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        found = yield from self.hvcache.get_many(self.vm_id, pool_id, keys)
        payload = len(found) * self.block_bytes
        yield from self.channel.charge_data(len(keys), payload)
        if tracer is not None:
            tracer.op_span("get", self.vm_id, pool_id, t0, self.env.now,
                           scope=self.obs_scope, keys=len(keys),
                           hits=len(found))
        return found

    def put_many(self, pool_id: Optional[int], keys: Sequence[BlockKey]):
        """Best-effort store of clean evicted blocks; returns #stored."""
        if not self.enabled or pool_id is None or not keys:
            return 0
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        stored = yield from self.hvcache.put_many(self.vm_id, pool_id, keys)
        payload = stored * self.block_bytes
        yield from self.channel.charge_data(len(keys), payload)
        if tracer is not None:
            tracer.op_span("put", self.vm_id, pool_id, t0, self.env.now,
                           scope=self.obs_scope, keys=len(keys),
                           stored=stored)
        return stored

    def flush_many(self, pool_id: Optional[int], keys: Sequence[BlockKey]):
        """Invalidate specific blocks; returns #dropped."""
        if not self.enabled or pool_id is None or not keys:
            return 0
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        dropped = self.hvcache.flush_many(self.vm_id, pool_id, keys)
        yield from self.channel.charge_control(len(keys))
        if tracer is not None:
            tracer.op_span("flush", self.vm_id, pool_id, t0, self.env.now,
                           scope=self.obs_scope, keys=len(keys),
                           dropped=dropped)
        return dropped

    def flush_inode(self, pool_id: Optional[int], inode: int,
                    nblocks: Optional[int] = None):
        """Invalidate a whole file; returns #dropped.

        ``nblocks`` (the file's size as the guest knows it) feeds the
        requested-flush accounting; see ``HypervisorCacheBase.flush_inode``.
        """
        if not self.enabled or pool_id is None:
            return 0
        tracer = _obs.ACTIVE
        if tracer is not None:
            tracer.span_begin()
            t0 = self.env.now
        dropped = self.hvcache.flush_inode(self.vm_id, pool_id, inode,
                                           nblocks=nblocks)
        yield from self.channel.charge_control(1)
        if tracer is not None:
            tracer.op_span("flush_inode", self.vm_id, pool_id, t0,
                           self.env.now, scope=self.obs_scope, inode=inode,
                           dropped=dropped)
        return dropped
