"""The guest→hypervisor call channel (the VMCALL path).

Each cleancache operation crosses the VM boundary once per block:
a VMCALL world-switch plus an argument/data copy in the KVM module.  The
channel charges that cost before delegating to the hypervisor cache, so
cache "hits" are cheap but never free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import tracer as _obs
from ..simkernel import Environment

__all__ = ["HypercallChannel", "HypercallCosts"]


@dataclass(frozen=True)
class HypercallCosts:
    """Per-call overheads of the VMCALL path.

    ``call_us`` covers the VM exit/entry and argument marshalling;
    ``copy_us_per_kb`` the host-side data copy for get/put payloads.
    """

    call_us: float = 2.0
    copy_us_per_kb: float = 0.05

    def control_cost(self, ncalls: int) -> float:
        """Seconds for ``ncalls`` metadata-only hypercalls."""
        return ncalls * self.call_us * 1e-6

    def data_cost(self, ncalls: int, payload_bytes: int) -> float:
        """Seconds for ``ncalls`` hypercalls moving ``payload_bytes`` total."""
        return (
            ncalls * self.call_us * 1e-6
            + (payload_bytes / 1024.0) * self.copy_us_per_kb * 1e-6
        )


class HypercallChannel:
    """Latency-accounting wrapper around the raw hypervisor interface."""

    def __init__(
        self,
        env: Environment,
        costs: HypercallCosts = HypercallCosts(),
    ) -> None:
        self.env = env
        self.costs = costs
        self.calls = 0

    def charge_control(self, ncalls: int):
        """Generator: pay for metadata-only hypercalls."""
        self.calls += ncalls
        cost = self.costs.control_cost(ncalls)
        if cost > 0:
            tracer = _obs.ACTIVE
            if tracer is None:
                yield self.env.timeout(cost)
                return
            tracer.span_begin()
            t0 = self.env.now
            yield self.env.timeout(cost)
            tracer.span_end("hypercall.control", t0, self.env.now, calls=ncalls)

    def charge_data(self, ncalls: int, payload_bytes: int):
        """Generator: pay for data-moving hypercalls."""
        self.calls += ncalls
        cost = self.costs.data_cost(ncalls, payload_bytes)
        if cost > 0:
            tracer = _obs.ACTIVE
            if tracer is None:
                yield self.env.timeout(cost)
                return
            tracer.span_begin()
            t0 = self.env.now
            yield self.env.timeout(cost)
            tracer.span_end("hypercall.data", t0, self.env.now,
                            calls=ncalls, payload_bytes=payload_bytes)
