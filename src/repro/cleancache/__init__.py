"""Guest-side second-chance cache interface (Linux cleancache analogue)."""

from .client import CleancacheClient
from .hypercall import HypercallChannel, HypercallCosts

__all__ = ["CleancacheClient", "HypercallChannel", "HypercallCosts"]
