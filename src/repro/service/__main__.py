"""CLI: ``python -m repro.service --port 11311 --dir /tmp/ddcache``.

Telemetry flags wire in :mod:`repro.obs.live`: ``--metrics-port`` starts
the Prometheus/``/stats.json`` sidecar on the same event loop,
``--trace`` records a wall-clock span trace written at shutdown (read it
with ``python -m repro.obs``), ``--ops-log`` appends structured JSON
operational events (otherwise they go to stderr), and ``--snapshot``
appends periodic counter-delta records benchmarks can assert against.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from ..endurance import ADMISSION_POLICIES
from ..obs.live import (
    LiveTracer,
    OpsLogger,
    SnapshotWriter,
    TelemetrySidecar,
    bind_store_probe,
    write_trace,
)
from .cache import ServiceCache
from .protocol import MAX_VALUE_BYTES
from .server import CacheServer
from .store import DiskStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="DoubleDecker disk cache service (memcached text "
                    "protocol; per-tenant DD containers).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=11311,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--dir", default="./ddcache",
                        help="persistent store directory")
    parser.add_argument("--capacity-mb", type=float, default=64.0,
                        help="disk cache capacity in MB")
    parser.add_argument("--block-bytes", type=int, default=4096,
                        help="accounting block size")
    parser.add_argument("--eviction-batch-mb", type=float, default=2.0,
                        help="Algorithm-1 eviction batch (the paper's 2MB)")
    parser.add_argument("--admission", default=None,
                        choices=list(ADMISSION_POLICIES),
                        help="SSD admission controller for every tenant")
    parser.add_argument("--max-value-bytes", type=int,
                        default=MAX_VALUE_BYTES)
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip per-value fsync (benchmarks only)")
    telemetry = parser.add_argument_group("telemetry")
    telemetry.add_argument("--metrics-port", type=int, default=None,
                           help="serve /metrics, /healthz, /stats.json on "
                                "this port (0 picks a free one)")
    telemetry.add_argument("--metrics-host", default="127.0.0.1")
    telemetry.add_argument("--trace", default=None, metavar="PATH",
                           help="record a wall-clock JSONL trace, written "
                                "at shutdown")
    telemetry.add_argument("--trace-sample", type=int, default=1,
                           help="keep 1-in-N span events in the trace ring")
    telemetry.add_argument("--ops-log", default=None, metavar="PATH",
                           help="append structured JSON ops events here "
                                "(default: stderr)")
    telemetry.add_argument("--slow-op-ms", type=float, default=10.0,
                           help="slow-op log threshold in milliseconds")
    telemetry.add_argument("--snapshot", default=None, metavar="PATH",
                           help="append periodic counter-delta snapshots "
                                "to this JSONL artifact")
    telemetry.add_argument("--snapshot-interval", type=float, default=2.0,
                           help="seconds between snapshots")
    return parser


async def _run(args: argparse.Namespace, ops_stream=None) -> None:
    ops = OpsLogger(stream=ops_stream,
                    slow_op_ns=int(args.slow_op_ms * 1e6))
    tracer = LiveTracer(sample=args.trace_sample) if args.trace else None

    store = DiskStore(args.dir, sync_writes=not args.no_fsync)
    if store.recovered_rows or store.recovered_orphans:
        ops.log("store.recovery", rows=store.recovered_rows,
                orphans=store.recovered_orphans, dir=store.directory)
    cache = ServiceCache(
        store,
        capacity_mb=args.capacity_mb,
        block_bytes=args.block_bytes,
        eviction_batch_mb=args.eviction_batch_mb,
        admission=args.admission,
        tracer=tracer,
    )
    if tracer is not None:
        tracer.bind_registry(cache.registry)
        bind_store_probe(store, tracer, registry=cache.registry)

    server = CacheServer(cache, host=args.host, port=args.port,
                         max_value_bytes=args.max_value_bytes,
                         tracer=tracer, ops_log=ops)
    await server.start()
    print(f"repro.service listening on {server.host}:{server.port} "
          f"(dir={store.directory}, capacity={args.capacity_mb}MB)",
          flush=True)

    sidecar = None
    if args.metrics_port is not None:
        sidecar = TelemetrySidecar(cache, protocol=server.protocol,
                                   host=args.metrics_host,
                                   port=args.metrics_port, ops=ops)
        await sidecar.start()
        print(f"repro.service metrics on "
              f"http://{sidecar.host}:{sidecar.port}/metrics", flush=True)
    ops.log("server.start", host=server.host, port=server.port,
            dir=store.directory, capacity_mb=args.capacity_mb,
            metrics_port=sidecar.port if sidecar else None)

    snapshot = None
    snapshot_task = None
    if args.snapshot:
        snapshot = SnapshotWriter(
            args.snapshot, cache, protocol=server.protocol,
            interval_s=args.snapshot_interval, tracer=tracer, ops=ops)
        snapshot.write_once()  # seq 0: the baseline totals
        snapshot_task = asyncio.get_running_loop().create_task(
            snapshot.run())

    # Graceful shutdown on SIGINT/SIGTERM so the trace and the final
    # snapshot are written even when CI kills the process.
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            break  # event-loop signals unsupported; KeyboardInterrupt rules
    try:
        await stop.wait()
    finally:
        if snapshot_task is not None:
            snapshot_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await snapshot_task
        if snapshot is not None:
            snapshot.write_once()  # final totals for post-run assertions
        if sidecar is not None:
            sidecar.close()
            await sidecar.wait_closed()
        ops.log("server.stop", ops=server.protocol.ops,
                connections=server.protocol.connections,
                protocol_errors=server.protocol.protocol_errors)
        await server.close()
        if tracer is not None:
            write_trace(tracer, args.trace)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # The ops stream opens here, outside the event loop: file I/O in the
    # sync entry point, never inside an async def (sim-lint DD010).
    ops_stream = open(args.ops_log, "a") if args.ops_log else None
    try:
        asyncio.run(_run(args, ops_stream))
    except KeyboardInterrupt:
        pass
    finally:
        if ops_stream is not None:
            ops_stream.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
