"""CLI: ``python -m repro.service --port 11311 --dir /tmp/ddcache``."""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..endurance import ADMISSION_POLICIES
from .cache import ServiceCache
from .protocol import MAX_VALUE_BYTES
from .server import CacheServer
from .store import DiskStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="DoubleDecker disk cache service (memcached text "
                    "protocol; per-tenant DD containers).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=11311,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--dir", default="./ddcache",
                        help="persistent store directory")
    parser.add_argument("--capacity-mb", type=float, default=64.0,
                        help="disk cache capacity in MB")
    parser.add_argument("--block-bytes", type=int, default=4096,
                        help="accounting block size")
    parser.add_argument("--eviction-batch-mb", type=float, default=2.0,
                        help="Algorithm-1 eviction batch (the paper's 2MB)")
    parser.add_argument("--admission", default=None,
                        choices=list(ADMISSION_POLICIES),
                        help="SSD admission controller for every tenant")
    parser.add_argument("--max-value-bytes", type=int,
                        default=MAX_VALUE_BYTES)
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip per-value fsync (benchmarks only)")
    return parser


async def _run(args: argparse.Namespace) -> None:
    store = DiskStore(args.dir, sync_writes=not args.no_fsync)
    cache = ServiceCache(
        store,
        capacity_mb=args.capacity_mb,
        block_bytes=args.block_bytes,
        eviction_batch_mb=args.eviction_batch_mb,
        admission=args.admission,
    )
    server = CacheServer(cache, host=args.host, port=args.port,
                         max_value_bytes=args.max_value_bytes)
    await server.start()
    print(f"repro.service listening on {server.host}:{server.port} "
          f"(dir={store.directory}, capacity={args.capacity_mb}MB)",
          flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
