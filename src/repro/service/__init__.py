"""``repro.service``: the DoubleDecker policy core serving real requests.

The simulator proves the policy; this package runs it.  Three layers:

* :class:`~repro.service.store.DiskStore` — a crash-safe, process-safe,
  pure-Python persistent value store (SQLite metadata + one blob file
  per entry, in the python-diskcache mold).
* :class:`~repro.service.cache.ServiceCache` — drives the same
  :class:`~repro.core.engine.PolicyEngine` the simulator uses: one DD
  container (pool) per tenant, Algorithm-1 victim selection, the
  ``repro.endurance`` admission controllers, per-tenant accounting.
* :class:`~repro.service.server.CacheServer` — an asyncio front-end
  speaking the memcached text protocol (``python -m repro.service``),
  with wall-clock latency histograms in :mod:`repro.metrics` and an
  optional :mod:`repro.obs` tracer.

Unlike the simulator's exclusive second-chance cache, the service cache
is the system of record for its values: a ``get`` hit leaves the entry
resident.  Residence order is still FIFO per pool, so Algorithm 1's
batch eviction behaves exactly as in the paper.

These modules live on the host wall clock by design; sim-lint's DD001
(wall-clock) and DD007 rules are allowlisted for ``repro/service/``
(see ``repro.lint.rules.REALTIME_MODULES``).
"""

from .cache import ServiceCache, SetStatus
from .store import DiskStore, StoredEntry

__all__ = ["DiskStore", "ServiceCache", "SetStatus", "StoredEntry"]
