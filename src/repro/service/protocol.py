"""Memcached text protocol for the DD cache service.

Implements the subset a stock memcached client library exercises:
``set``, ``get``/``gets`` (multi-key), ``delete``, ``flush_all``,
``stats``, ``version``, ``quit`` — plus ``noreply`` on mutations and
natural pipelining (commands are consumed from the stream back to back,
so a batch written in one TCP segment is answered in order).

One extension: ``tenant <name>`` switches the connection's namespace,
mapping it onto that tenant's DD container.  Connections start in the
``default`` tenant, so plain memcached clients work unmodified.

Error discipline follows memcached: unknown commands answer ``ERROR``,
malformed arguments answer ``CLIENT_ERROR``, an oversized body is *fully
consumed* and answered ``SERVER_ERROR object too large for cache`` so
the stream stays in sync.  An abrupt disconnect mid-body is not an
error — the partial command is simply discarded.
"""

from __future__ import annotations

# dd-lint: disable-file=DD010 (ServiceCache/DiskStore calls are bounded sub-ms blob+SQLite ops at memcached entry sizes; a thread offload costs more than it buys — see benchmarks/bench_service.py)

import asyncio
import time
from typing import Optional

from .cache import ServiceCache, SetStatus

__all__ = ["MemcacheProtocol", "DEFAULT_TENANT", "MAX_VALUE_BYTES",
           "parse_stats"]

DEFAULT_TENANT = "default"
#: Stock memcached's default item-size ceiling.
MAX_VALUE_BYTES = 1 << 20

_CRLF = b"\r\n"

#: Commands with dedicated span names; anything else is ``cmd.unknown``
#: so a hostile client cannot balloon the tracer's span-name table.
_COMMANDS = frozenset((
    "set", "get", "gets", "delete", "flush_all", "stats", "version",
    "tenant", "quit",
))


def _fmt_stat(value: float) -> str:
    """Render one STAT value: integral stays ``int``, derived ratios
    keep their fraction (``parse_stats`` mirrors this)."""
    if float(value) == int(value):
        return str(int(value))
    return f"{value:.6g}"


class MemcacheProtocol:
    """Per-server protocol state: one instance handles every connection."""

    def __init__(self, cache: ServiceCache,
                 max_value_bytes: int = MAX_VALUE_BYTES,
                 tracer=None, ops_log=None) -> None:
        self.cache = cache
        self.max_value_bytes = max_value_bytes
        #: ERROR/CLIENT_ERROR/SERVER_ERROR replies sent (the load
        #: generator asserts this stays 0 on a clean run).
        self.protocol_errors = 0
        self.connections = 0
        self.ops = 0
        #: Optional :class:`repro.obs.live.LiveTracer` for conn/cmd spans.
        self.tracer = tracer
        #: Optional :class:`repro.obs.live.OpsLogger` for the slow-op log.
        self.ops_log = ops_log

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Serve one connection until EOF or ``quit``."""
        self.connections += 1
        tracer = self.tracer
        if tracer is None:
            await self._serve(reader, writer)
            return
        conn_id = self.connections
        tracer.instant("conn.accept", tracer.clock(), conn=conn_id)
        tracer.span_begin()
        t0 = tracer.clock()
        ops_before = self.ops
        try:
            await self._serve(reader, writer)
        finally:
            tracer.span_end("conn", t0, tracer.clock(), conn=conn_id,
                            ops=self.ops - ops_before)

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        tenant = DEFAULT_TENANT
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break  # EOF
                line = line.rstrip(b"\r\n")
                if not line:
                    continue
                try:
                    parts = line.decode("utf-8").split()
                except UnicodeDecodeError:
                    if not await self._reply(
                            writer, b"CLIENT_ERROR malformed command\r\n",
                            error=True):
                        break
                    continue
                keep_going, tenant = await self._dispatch(
                    reader, writer, parts, tenant)
                if not keep_going:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- dispatch -------------------------------------------------------

    async def _dispatch(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter,
                        parts: list, tenant: str) -> tuple:
        """Run one command (span-wrapped); returns ``(keep_going, tenant)``."""
        tracer = self.tracer
        if tracer is None:
            return await self._run_command(reader, writer, parts, tenant)
        command = parts[0]
        name = f"cmd.{command}" if command in _COMMANDS else "cmd.unknown"
        tracer.span_begin()
        t0 = tracer.clock()
        try:
            return await self._run_command(reader, writer, parts, tenant)
        finally:
            tracer.span_end(name, t0, tracer.clock(), tenant=tenant)

    async def _run_command(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter,
                           parts: list, tenant: str) -> tuple:
        command = parts[0]
        self.ops += 1
        if command == "set":
            ok = await self._cmd_set(reader, writer, parts[1:], tenant)
            return (ok, tenant)
        if command in ("get", "gets"):
            ok = await self._cmd_get(writer, parts[1:], tenant,
                                     with_cas=(command == "gets"))
            return (ok, tenant)
        if command == "delete":
            ok = await self._cmd_delete(writer, parts[1:], tenant)
            return (ok, tenant)
        if command == "flush_all":
            ok = await self._cmd_flush(writer, parts[1:], tenant)
            return (ok, tenant)
        if command == "stats":
            ok = await self._cmd_stats(writer, parts[1:], tenant)
            return (ok, tenant)
        if command == "version":
            ok = await self._reply(writer, b"VERSION repro-dd/1\r\n")
            return (ok, tenant)
        if command == "tenant":
            if len(parts) != 2 or not parts[1]:
                ok = await self._reply(
                    writer, b"CLIENT_ERROR usage: tenant <name>\r\n",
                    error=True)
                return (ok, tenant)
            ok = await self._reply(writer, b"OK\r\n")
            return (ok, parts[1])
        if command == "quit":
            return (False, tenant)
        ok = await self._reply(writer, b"ERROR\r\n", error=True)
        return (ok, tenant)

    # -- commands -------------------------------------------------------

    async def _cmd_set(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       args: list, tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        if noreply:
            args = args[:-1]
        if len(args) != 4:
            return await self._reply(
                writer, b"CLIENT_ERROR bad command line format\r\n",
                error=True, suppress=noreply)
        key = args[0]
        try:
            flags = int(args[1])
            int(args[2])  # exptime accepted and ignored (no TTL support)
            nbytes = int(args[3])
            if nbytes < 0 or flags < 0:
                raise ValueError
        except ValueError:
            return await self._reply(
                writer, b"CLIENT_ERROR bad command line format\r\n",
                error=True, suppress=noreply)

        try:
            body = await reader.readexactly(nbytes + 2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return False  # abrupt disconnect mid-body: discard quietly
        if not body.endswith(_CRLF):
            return await self._reply(
                writer, b"CLIENT_ERROR bad data chunk\r\n",
                error=True, suppress=noreply)
        if nbytes > self.max_value_bytes:
            return await self._reply(
                writer, b"SERVER_ERROR object too large for cache\r\n",
                error=True, suppress=noreply)

        t0 = time.perf_counter_ns()
        status = self.cache.set(tenant, key, body[:-2], flags)
        self._observe("set", t0, tenant)
        if status == SetStatus.STORED:
            return await self._reply(writer, b"STORED\r\n",
                                     suppress=noreply)
        if status == SetStatus.TOO_LARGE:
            return await self._reply(
                writer, b"SERVER_ERROR object too large for cache\r\n",
                error=True, suppress=noreply)
        return await self._reply(writer, b"NOT_STORED\r\n",
                                 suppress=noreply)

    async def _cmd_get(self, writer: asyncio.StreamWriter, keys: list,
                       tenant: str, with_cas: bool) -> bool:
        if not keys:
            return await self._reply(
                writer, b"CLIENT_ERROR get requires a key\r\n", error=True)
        chunks = []
        for key in keys:
            t0 = time.perf_counter_ns()
            found = self.cache.get(tenant, key)
            self._observe("get", t0, tenant)
            if found is None:
                continue
            value, flags, cas = found
            header = f"VALUE {key} {flags} {len(value)}"
            if with_cas:
                header += f" {cas}"
            chunks.append(header.encode("utf-8") + _CRLF + value + _CRLF)
        chunks.append(b"END\r\n")
        return await self._reply(writer, b"".join(chunks))

    async def _cmd_delete(self, writer: asyncio.StreamWriter, args: list,
                          tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        if noreply:
            args = args[:-1]
        if len(args) != 1:
            return await self._reply(
                writer, b"CLIENT_ERROR usage: delete <key> [noreply]\r\n",
                error=True, suppress=noreply)
        t0 = time.perf_counter_ns()
        deleted = self.cache.delete(tenant, args[0])
        self._observe("delete", t0, tenant)
        return await self._reply(
            writer, b"DELETED\r\n" if deleted else b"NOT_FOUND\r\n",
            suppress=noreply)

    async def _cmd_flush(self, writer: asyncio.StreamWriter, args: list,
                         tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        self.cache.flush_all(tenant)
        return await self._reply(writer, b"OK\r\n", suppress=noreply)

    async def _cmd_stats(self, writer: asyncio.StreamWriter,
                         args: list, tenant: str) -> bool:
        if args == ["tenants"]:
            return await self._cmd_stats_tenants(writer)
        if args:
            return await self._reply(
                writer, b"CLIENT_ERROR usage: stats [tenants]\r\n",
                error=True)
        lines = []
        snapshot = self.cache.stats()
        for scope in sorted(snapshot):
            fields = dict(snapshot[scope])
            if scope != "_host":
                gets = fields.get("gets", 0)
                fields["hit_ratio"] = (
                    fields.get("get_hits", 0) / gets if gets else 0.0)
            for field in sorted(fields):
                lines.append(
                    f"STAT {scope}:{field} {_fmt_stat(fields[field])}\r\n")
        for op in ("get", "set", "delete"):
            hist = self.cache.registry.wallclock_histogram(
                f"service.lat.{op}")
            if hist.count:
                lines.append(
                    f"STAT lat:{op}:p50_ns {int(hist.quantile(0.5))}\r\n")
                lines.append(
                    f"STAT lat:{op}:p99_ns {int(hist.quantile(0.99))}\r\n")
        lines.append("END\r\n")
        return await self._reply(writer, "".join(lines).encode("utf-8"))

    async def _cmd_stats_tenants(self, writer: asyncio.StreamWriter) -> bool:
        """``stats tenants``: the per-tenant breakdown over the wire —
        ledger counters plus derived hit ratio, stored bytes, and each
        tenant's share of the host's occupied blocks."""
        lines = []
        snapshot = self.cache.stats()
        host = snapshot.pop("_host", {})
        host_used = host.get("used_blocks", 0)
        stored_bytes = self.cache.store.tenant_bytes()
        for tenant in sorted(snapshot):
            fields = dict(snapshot[tenant])
            gets = fields.get("gets", 0)
            fields["hit_ratio"] = (
                fields.get("get_hits", 0) / gets if gets else 0.0)
            fields["bytes"] = stored_bytes.get(tenant, 0)
            fields["occupancy_share"] = (
                fields.get("used_blocks", 0) / host_used if host_used
                else 0.0)
            for field in sorted(fields):
                lines.append(
                    f"STAT {tenant}:{field} {_fmt_stat(fields[field])}\r\n")
        lines.append("END\r\n")
        return await self._reply(writer, "".join(lines).encode("utf-8"))

    # -- plumbing -------------------------------------------------------

    def _observe(self, op: str, t0_ns: int, tenant: str) -> None:
        duration = time.perf_counter_ns() - t0_ns
        self.cache.registry.wallclock_histogram(
            f"service.lat.{op}").add(duration)
        if self.ops_log is not None:
            self.ops_log.slow_op(op, tenant, duration)

    async def _reply(self, writer: asyncio.StreamWriter, payload: bytes,
                     error: bool = False, suppress: bool = False) -> bool:
        """Send a reply (unless ``noreply`` suppressed it); False means
        the connection died and the caller should stop."""
        if error:
            self.protocol_errors += 1
        if suppress:
            return True
        try:
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True


def parse_stats(payload: str) -> dict:
    """Parse a ``stats`` reply (client-side helper).

    Counter values come back ``int``, derived values (hit ratios,
    occupancy shares — anything with a fraction) come back ``float``,
    and a value that is neither survives as the raw string rather than
    raising mid-parse.
    """
    out: dict = {}
    for line in payload.splitlines():
        parts = line.split()
        if len(parts) != 3 or parts[0] != "STAT":
            continue
        raw = parts[2]
        try:
            out[parts[1]] = int(raw)
        except ValueError:
            try:
                out[parts[1]] = float(raw)
            except ValueError:
                out[parts[1]] = raw
    return out
