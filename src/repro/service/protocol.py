"""Memcached text protocol for the DD cache service.

Implements the subset a stock memcached client library exercises:
``set``, ``get``/``gets`` (multi-key), ``delete``, ``flush_all``,
``stats``, ``version``, ``quit`` — plus ``noreply`` on mutations and
natural pipelining (commands are consumed from the stream back to back,
so a batch written in one TCP segment is answered in order).

One extension: ``tenant <name>`` switches the connection's namespace,
mapping it onto that tenant's DD container.  Connections start in the
``default`` tenant, so plain memcached clients work unmodified.

Error discipline follows memcached: unknown commands answer ``ERROR``,
malformed arguments answer ``CLIENT_ERROR``, an oversized body is *fully
consumed* and answered ``SERVER_ERROR object too large for cache`` so
the stream stays in sync.  An abrupt disconnect mid-body is not an
error — the partial command is simply discarded.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from .cache import ServiceCache, SetStatus

__all__ = ["MemcacheProtocol", "DEFAULT_TENANT", "MAX_VALUE_BYTES"]

DEFAULT_TENANT = "default"
#: Stock memcached's default item-size ceiling.
MAX_VALUE_BYTES = 1 << 20

_CRLF = b"\r\n"


class MemcacheProtocol:
    """Per-server protocol state: one instance handles every connection."""

    def __init__(self, cache: ServiceCache,
                 max_value_bytes: int = MAX_VALUE_BYTES) -> None:
        self.cache = cache
        self.max_value_bytes = max_value_bytes
        #: ERROR/CLIENT_ERROR/SERVER_ERROR replies sent (the load
        #: generator asserts this stays 0 on a clean run).
        self.protocol_errors = 0
        self.connections = 0
        self.ops = 0

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Serve one connection until EOF or ``quit``."""
        self.connections += 1
        tenant = DEFAULT_TENANT
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError,
                        ValueError):
                    break
                if not line:
                    break  # EOF
                line = line.rstrip(b"\r\n")
                if not line:
                    continue
                try:
                    parts = line.decode("utf-8").split()
                except UnicodeDecodeError:
                    if not await self._reply(
                            writer, b"CLIENT_ERROR malformed command\r\n",
                            error=True):
                        break
                    continue
                keep_going, tenant = await self._dispatch(
                    reader, writer, parts, tenant)
                if not keep_going:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- dispatch -------------------------------------------------------

    async def _dispatch(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter,
                        parts: list, tenant: str) -> tuple:
        """Run one command; returns ``(keep_going, tenant)``."""
        command = parts[0]
        self.ops += 1
        if command == "set":
            ok = await self._cmd_set(reader, writer, parts[1:], tenant)
            return (ok, tenant)
        if command in ("get", "gets"):
            ok = await self._cmd_get(writer, parts[1:], tenant,
                                     with_cas=(command == "gets"))
            return (ok, tenant)
        if command == "delete":
            ok = await self._cmd_delete(writer, parts[1:], tenant)
            return (ok, tenant)
        if command == "flush_all":
            ok = await self._cmd_flush(writer, parts[1:], tenant)
            return (ok, tenant)
        if command == "stats":
            ok = await self._cmd_stats(writer, tenant)
            return (ok, tenant)
        if command == "version":
            ok = await self._reply(writer, b"VERSION repro-dd/1\r\n")
            return (ok, tenant)
        if command == "tenant":
            if len(parts) != 2 or not parts[1]:
                ok = await self._reply(
                    writer, b"CLIENT_ERROR usage: tenant <name>\r\n",
                    error=True)
                return (ok, tenant)
            ok = await self._reply(writer, b"OK\r\n")
            return (ok, parts[1])
        if command == "quit":
            return (False, tenant)
        ok = await self._reply(writer, b"ERROR\r\n", error=True)
        return (ok, tenant)

    # -- commands -------------------------------------------------------

    async def _cmd_set(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter,
                       args: list, tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        if noreply:
            args = args[:-1]
        if len(args) != 4:
            return await self._reply(
                writer, b"CLIENT_ERROR bad command line format\r\n",
                error=True, suppress=noreply)
        key = args[0]
        try:
            flags = int(args[1])
            int(args[2])  # exptime accepted and ignored (no TTL support)
            nbytes = int(args[3])
            if nbytes < 0 or flags < 0:
                raise ValueError
        except ValueError:
            return await self._reply(
                writer, b"CLIENT_ERROR bad command line format\r\n",
                error=True, suppress=noreply)

        try:
            body = await reader.readexactly(nbytes + 2)
        except (asyncio.IncompleteReadError, ConnectionError):
            return False  # abrupt disconnect mid-body: discard quietly
        if not body.endswith(_CRLF):
            return await self._reply(
                writer, b"CLIENT_ERROR bad data chunk\r\n",
                error=True, suppress=noreply)
        if nbytes > self.max_value_bytes:
            return await self._reply(
                writer, b"SERVER_ERROR object too large for cache\r\n",
                error=True, suppress=noreply)

        t0 = time.perf_counter_ns()
        status = self.cache.set(tenant, key, body[:-2], flags)
        self._observe("set", t0)
        if status == SetStatus.STORED:
            return await self._reply(writer, b"STORED\r\n",
                                     suppress=noreply)
        if status == SetStatus.TOO_LARGE:
            return await self._reply(
                writer, b"SERVER_ERROR object too large for cache\r\n",
                error=True, suppress=noreply)
        return await self._reply(writer, b"NOT_STORED\r\n",
                                 suppress=noreply)

    async def _cmd_get(self, writer: asyncio.StreamWriter, keys: list,
                       tenant: str, with_cas: bool) -> bool:
        if not keys:
            return await self._reply(
                writer, b"CLIENT_ERROR get requires a key\r\n", error=True)
        chunks = []
        for key in keys:
            t0 = time.perf_counter_ns()
            found = self.cache.get(tenant, key)
            self._observe("get", t0)
            if found is None:
                continue
            value, flags, cas = found
            header = f"VALUE {key} {flags} {len(value)}"
            if with_cas:
                header += f" {cas}"
            chunks.append(header.encode("utf-8") + _CRLF + value + _CRLF)
        chunks.append(b"END\r\n")
        return await self._reply(writer, b"".join(chunks))

    async def _cmd_delete(self, writer: asyncio.StreamWriter, args: list,
                          tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        if noreply:
            args = args[:-1]
        if len(args) != 1:
            return await self._reply(
                writer, b"CLIENT_ERROR usage: delete <key> [noreply]\r\n",
                error=True, suppress=noreply)
        t0 = time.perf_counter_ns()
        deleted = self.cache.delete(tenant, args[0])
        self._observe("delete", t0)
        return await self._reply(
            writer, b"DELETED\r\n" if deleted else b"NOT_FOUND\r\n",
            suppress=noreply)

    async def _cmd_flush(self, writer: asyncio.StreamWriter, args: list,
                         tenant: str) -> bool:
        noreply = bool(args) and args[-1] == "noreply"
        self.cache.flush_all(tenant)
        return await self._reply(writer, b"OK\r\n", suppress=noreply)

    async def _cmd_stats(self, writer: asyncio.StreamWriter,
                         tenant: str) -> bool:
        lines = []
        snapshot = self.cache.stats()
        for scope in sorted(snapshot):
            for field in sorted(snapshot[scope]):
                value = snapshot[scope][field]
                lines.append(f"STAT {scope}:{field} {int(value)}\r\n")
        for op in ("get", "set", "delete"):
            hist = self.cache.registry.wallclock_histogram(
                f"service.lat.{op}")
            if hist.count:
                lines.append(
                    f"STAT lat:{op}:p50_ns {int(hist.quantile(0.5))}\r\n")
                lines.append(
                    f"STAT lat:{op}:p99_ns {int(hist.quantile(0.99))}\r\n")
        lines.append("END\r\n")
        return await self._reply(writer, "".join(lines).encode("utf-8"))

    # -- plumbing -------------------------------------------------------

    def _observe(self, op: str, t0_ns: int) -> None:
        self.cache.registry.wallclock_histogram(f"service.lat.{op}").add(
            time.perf_counter_ns() - t0_ns)

    async def _reply(self, writer: asyncio.StreamWriter, payload: bytes,
                     error: bool = False, suppress: bool = False) -> bool:
        """Send a reply (unless ``noreply`` suppressed it); False means
        the connection died and the caller should stop."""
        if error:
            self.protocol_errors += 1
        if suppress:
            return True
        try:
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True


def parse_stats(payload: str) -> dict:
    """Parse a ``stats`` reply into ``{name: int}`` (client-side helper)."""
    out = {}
    for line in payload.splitlines():
        parts = line.split()
        if len(parts) == 3 and parts[0] == "STAT":
            out[parts[1]] = int(parts[2])
    return out
