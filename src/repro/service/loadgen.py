"""Load generator for the cache service (client side of the benchmark).

Drives a running server over real sockets with a seeded, skewed
workload: each operation picks a key from a Zipf-like distribution over
a fixed keyspace and issues a ``get``; a miss is followed by a ``set``
of that key (read-through idiom), so the hit ratio converges to
whatever the capacity and eviction policy allow.  Latency is sampled
client-side in integer nanoseconds into ns-bucketed histograms
(:meth:`repro.metrics.Histogram.wallclock_ns`).

Also runnable standalone::

    python -m repro.service.loadgen --port 11311 --ops 10000 --tenants 2
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import time
from typing import Dict, List, Optional

from ..metrics import Histogram, format_table

__all__ = ["LoadResult", "run_load", "main"]

_CRLF = b"\r\n"
_ERROR_PREFIXES = (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")


class LoadResult:
    """Aggregated outcome of one load run."""

    def __init__(self) -> None:
        self.ops = 0
        self.gets = 0
        self.hits = 0
        self.sets = 0
        self.stored = 0
        self.protocol_errors = 0
        self.duration_s = 0.0
        self.latency = Histogram.wallclock_ns("loadgen.lat")
        #: Per-op breakdowns: a get and the read-through set it triggers
        #: have very different cost profiles, so the merged histogram
        #: alone hides the write tail.
        self.lat_get = Histogram.wallclock_ns("loadgen.lat.get")
        self.lat_set = Histogram.wallclock_ns("loadgen.lat.set")

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.duration_s if self.duration_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "gets": self.gets,
            "hits": self.hits,
            "sets": self.sets,
            "stored": self.stored,
            "hit_ratio": round(self.hit_ratio, 4),
            "protocol_errors": self.protocol_errors,
            "duration_s": round(self.duration_s, 3),
            "ops_per_s": round(self.ops_per_s, 1),
            "p50_ns": int(self.latency.quantile(0.5)),
            "p99_ns": int(self.latency.quantile(0.99)),
            "get_p50_ns": int(self.lat_get.quantile(0.5)),
            "get_p99_ns": int(self.lat_get.quantile(0.99)),
            "set_p50_ns": int(self.lat_set.quantile(0.5)),
            "set_p99_ns": int(self.lat_set.quantile(0.99)),
        }

    def merge(self, other: "LoadResult") -> None:
        self.ops += other.ops
        self.gets += other.gets
        self.hits += other.hits
        self.sets += other.sets
        self.stored += other.stored
        self.protocol_errors += other.protocol_errors
        self.duration_s = max(self.duration_s, other.duration_s)
        self.latency.merge(other.latency)
        self.lat_get.merge(other.lat_get)
        self.lat_set.merge(other.lat_set)

    def latency_table(self) -> str:
        """Client-observed wall-clock latency per op type, in µs."""
        rows = []
        for label, hist in (("all", self.latency),
                            ("get", self.lat_get),
                            ("set", self.lat_set)):
            if not hist.count:
                continue
            rows.append([label, hist.count, hist.mean / 1e3]
                        + [hist.quantile(q) / 1e3
                           for q in (0.5, 0.9, 0.99)])
        return format_table(
            ["op", "count", "mean(us)", "p50(us)", "p90(us)", "p99(us)"],
            rows, title="-- client latency --", float_fmt="{:.1f}")


def _zipf_key(rng: random.Random, keyspace: int) -> int:
    """A cheap Zipf-ish skew: squared uniform biases toward low ids."""
    u = rng.random()
    return int(u * u * keyspace)


async def _read_reply(reader: asyncio.StreamReader) -> bytes:
    """One non-get reply line."""
    return await reader.readline()


async def _read_get_reply(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Consume a full get reply; the value on a hit, ``None`` on a miss."""
    value = None
    while True:
        line = await reader.readline()
        if not line or line.startswith(_ERROR_PREFIXES):
            raise ProtocolError(line)
        if line.startswith(b"END"):
            return value
        if line.startswith(b"VALUE"):
            nbytes = int(line.split()[3])
            body = await reader.readexactly(nbytes + 2)
            value = body[:-2]


class ProtocolError(Exception):
    pass


async def _worker(host: str, port: int, tenant: str, ops: int,
                  keyspace: int, value_bytes: int, seed: int) -> LoadResult:
    result = LoadResult()
    rng = random.Random(seed)
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"tenant {tenant}\r\n".encode())
    await writer.drain()
    await _read_reply(reader)
    payload = b"x" * value_bytes
    start = time.perf_counter_ns()
    for i in range(ops):
        key = f"k{_zipf_key(rng, keyspace)}"
        t0 = time.perf_counter_ns()
        writer.write(f"get {key}\r\n".encode())
        await writer.drain()
        try:
            value = await _read_get_reply(reader)
        except ProtocolError:
            result.protocol_errors += 1
            value = None
        elapsed = time.perf_counter_ns() - t0
        result.latency.add(elapsed)
        result.lat_get.add(elapsed)
        result.gets += 1
        result.ops += 1
        if value is not None:
            result.hits += 1
            continue
        t0 = time.perf_counter_ns()
        writer.write(
            f"set {key} 0 0 {len(payload)}\r\n".encode() + payload + _CRLF)
        await writer.drain()
        reply = await _read_reply(reader)
        elapsed = time.perf_counter_ns() - t0
        result.latency.add(elapsed)
        result.lat_set.add(elapsed)
        result.sets += 1
        result.ops += 1
        if reply.startswith(b"STORED"):
            result.stored += 1
        elif reply.startswith(_ERROR_PREFIXES):
            result.protocol_errors += 1
    result.duration_s = (time.perf_counter_ns() - start) / 1e9
    writer.write(b"quit\r\n")
    await writer.drain()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return result


async def run_load(host: str = "127.0.0.1", port: int = 11311,
                   ops: int = 10_000, tenants: int = 2,
                   connections: int = 4, keyspace: int = 2_000,
                   value_bytes: int = 4_096, seed: int = 42) -> LoadResult:
    """Run ``ops`` operations split across connections and tenants."""
    per_conn = max(1, ops // connections)
    tasks: List[asyncio.Task] = []
    for conn in range(connections):
        tenant = f"tenant{conn % max(1, tenants)}"
        tasks.append(asyncio.ensure_future(_worker(
            host, port, tenant, per_conn, keyspace, value_bytes,
            seed + conn)))
    results = await asyncio.gather(*tasks)
    total = LoadResult()
    for result in results:
        total.merge(result)
    return total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--ops", type=int, default=10_000)
    parser.add_argument("--tenants", type=int, default=2)
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--keyspace", type=int, default=2_000)
    parser.add_argument("--value-bytes", type=int, default=4_096)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--min-hit-ratio", type=float, default=None,
                        help="exit 1 if the hit ratio lands below this")
    args = parser.parse_args(argv)
    result = asyncio.run(run_load(
        host=args.host, port=args.port, ops=args.ops,
        tenants=args.tenants, connections=args.connections,
        keyspace=args.keyspace, value_bytes=args.value_bytes,
        seed=args.seed))
    print(json.dumps(result.as_dict(), indent=2))
    if result.ops:
        print(result.latency_table())
    if result.protocol_errors:
        print(f"FAIL: {result.protocol_errors} protocol errors")
        return 1
    if args.min_hit_ratio is not None \
            and result.hit_ratio < args.min_hit_ratio:
        print(f"FAIL: hit ratio {result.hit_ratio:.3f} < "
              f"{args.min_hit_ratio}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
