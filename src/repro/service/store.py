"""Disk-backed value store: SQLite metadata + one blob file per entry.

The layout follows python-diskcache (SNIPPETS.md 1–2): a small SQLite
database holds the metadata rows and the values live as individual files
next to it, so large bodies never travel through the SQL layer.  The
write protocol makes every state crash-recoverable without a journal of
its own:

1. ``INSERT`` the row with ``ready = 0`` and commit — the id allocated
   here names the blob file, so filenames need no randomness.
2. Write the blob to its final path, flush, ``fsync``.
3. ``UPDATE ... SET ready = 1`` and commit.

A crash between any two steps leaves either a ``ready = 0`` row (swept
at :meth:`recover`, its half-written blob unlinked) or a committed row
whose blob is already durable.  Deletion commits the row removal first
and unlinks after, so a crash can only leave an orphan blob — also swept
at recovery.  SQLite runs in WAL mode, giving readers-and-one-writer
process safety across server restarts and concurrent tools.

Entry ids are monotonically increasing and never reused, so iterating
rows in id order at recovery rebuilds the FIFO residence order the
eviction policy depends on.
"""

from __future__ import annotations

import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["DiskStore", "StoredEntry"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant TEXT NOT NULL,
    key TEXT NOT NULL,
    flags INTEGER NOT NULL DEFAULT 0,
    size INTEGER NOT NULL,
    ready INTEGER NOT NULL DEFAULT 0,
    UNIQUE (tenant, key)
);
"""


@dataclass(frozen=True)
class StoredEntry:
    """Metadata of one committed value, as recovery iterates them."""

    entry_id: int
    tenant: str
    key: str
    flags: int
    size: int


class DiskStore:
    """Crash-safe persistent ``(tenant, key) -> bytes`` store."""

    def __init__(self, directory: str, sync_writes: bool = True) -> None:
        self.directory = os.path.abspath(directory)
        self._data_dir = os.path.join(self.directory, "data")
        os.makedirs(self._data_dir, exist_ok=True)
        self._sync_writes = sync_writes
        self._db = sqlite3.connect(
            os.path.join(self.directory, "meta.db"),
            isolation_level=None,  # explicit BEGIN/COMMIT below
            check_same_thread=False,
        )
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute(
            "PRAGMA synchronous=" + ("FULL" if sync_writes else "NORMAL"))
        self._db.execute(_SCHEMA)
        self.recovered_rows = 0
        self.recovered_orphans = 0
        #: Optional I/O timing hook, ``probe(op, t0_ns, t1_ns, nbytes)``,
        #: called once per data-path op with ``time.monotonic_ns`` stamps
        #: (see :func:`repro.obs.live.bind_store_probe`).  ``None`` keeps
        #: the data path one attribute read from the un-instrumented code.
        self.probe: Optional[Callable[[str, int, int, int], None]] = None
        self.recover()

    # -- recovery -------------------------------------------------------

    def recover(self) -> None:
        """Sweep the debris a crash can leave: half-written rows first
        (with their blobs), then blobs no committed row references."""
        cur = self._db.execute("SELECT id FROM entries WHERE ready = 0")
        pending = [row[0] for row in cur.fetchall()]
        for entry_id in pending:
            self._db.execute("BEGIN IMMEDIATE")
            self._db.execute("DELETE FROM entries WHERE id = ?", (entry_id,))
            self._db.execute("COMMIT")
            self._unlink_quietly(self._blob_path(entry_id))
        self.recovered_rows += len(pending)

        live = {row[0] for row in
                self._db.execute("SELECT id FROM entries").fetchall()}
        for name in sorted(os.listdir(self._data_dir)):
            stem, _, ext = name.partition(".")
            if ext != "val" or not stem.isdigit():
                continue
            if int(stem) not in live:
                self._unlink_quietly(os.path.join(self._data_dir, name))
                self.recovered_orphans += 1

    # -- data path ------------------------------------------------------

    def set(self, tenant: str, key: str, value: bytes,
            flags: int = 0) -> int:
        """Store ``value``; returns the new entry id.

        Replacing an existing key deletes the old row in the same
        transaction that inserts the new one, so no crash point can show
        two committed values for one key.
        """
        if self.probe is None:
            return self._set(tenant, key, value, flags)
        t0 = time.monotonic_ns()
        entry_id = self._set(tenant, key, value, flags)
        self.probe("set", t0, time.monotonic_ns(), len(value))
        return entry_id

    def _set(self, tenant: str, key: str, value: bytes,
             flags: int = 0) -> int:
        old = self._row_of(tenant, key)
        self._db.execute("BEGIN IMMEDIATE")
        if old is not None:
            self._db.execute("DELETE FROM entries WHERE id = ?", (old[0],))
        cur = self._db.execute(
            "INSERT INTO entries (tenant, key, flags, size, ready) "
            "VALUES (?, ?, ?, ?, 0)",
            (tenant, key, flags, len(value)))
        entry_id = cur.lastrowid
        assert entry_id is not None
        self._db.execute("COMMIT")

        path = self._blob_path(entry_id)
        with open(path, "wb") as blob:
            blob.write(value)
            blob.flush()
            if self._sync_writes:
                os.fsync(blob.fileno())

        self._db.execute("BEGIN IMMEDIATE")
        self._db.execute(
            "UPDATE entries SET ready = 1 WHERE id = ?", (entry_id,))
        self._db.execute("COMMIT")
        if old is not None:
            self._unlink_quietly(self._blob_path(old[0]))
        return entry_id

    def get(self, tenant: str, key: str) -> Optional[Tuple[bytes, int, int]]:
        """``(value, flags, entry_id)`` of a committed key, else ``None``."""
        if self.probe is None:
            return self._get(tenant, key)
        t0 = time.monotonic_ns()
        found = self._get(tenant, key)
        self.probe("get", t0, time.monotonic_ns(),
                   len(found[0]) if found is not None else 0)
        return found

    def _get(self, tenant: str, key: str) -> Optional[Tuple[bytes, int, int]]:
        row = self._row_of(tenant, key, ready_only=True)
        if row is None:
            return None
        entry_id, flags = row
        try:
            with open(self._blob_path(entry_id), "rb") as blob:
                return (blob.read(), flags, entry_id)
        except FileNotFoundError:
            # Cannot happen under the write protocol; self-heal anyway.
            self.delete_entry(entry_id)
            return None

    def delete(self, tenant: str, key: str) -> Optional[int]:
        """Delete a key; returns its entry id, or ``None`` if absent."""
        row = self._row_of(tenant, key)
        if row is None:
            return None
        self.delete_entry(row[0])
        return row[0]

    def delete_entry(self, entry_id: int) -> None:
        """Delete one entry by id (the evictor's path).

        Row removal commits before the unlink: a crash in between leaves
        an orphan blob for :meth:`recover`, never a row without a blob.
        """
        if self.probe is None:
            return self._delete_entry(entry_id)
        t0 = time.monotonic_ns()
        self._delete_entry(entry_id)
        self.probe("delete", t0, time.monotonic_ns(), 0)

    def _delete_entry(self, entry_id: int) -> None:
        self._db.execute("BEGIN IMMEDIATE")
        self._db.execute("DELETE FROM entries WHERE id = ?", (entry_id,))
        self._db.execute("COMMIT")
        self._unlink_quietly(self._blob_path(entry_id))

    def flush(self, tenant: Optional[str] = None) -> List[int]:
        """Drop every entry (of one tenant, or all); returns their ids."""
        if tenant is None:
            cur = self._db.execute("SELECT id FROM entries ORDER BY id")
        else:
            cur = self._db.execute(
                "SELECT id FROM entries WHERE tenant = ? ORDER BY id",
                (tenant,))
        ids = [row[0] for row in cur.fetchall()]
        for entry_id in ids:
            self.delete_entry(entry_id)
        return ids

    # -- accounting / recovery iteration --------------------------------

    def iter_entries(self) -> Iterator[StoredEntry]:
        """Committed entries in id order — FIFO residence order."""
        cur = self._db.execute(
            "SELECT id, tenant, key, flags, size FROM entries "
            "WHERE ready = 1 ORDER BY id")
        for entry_id, tenant, key, flags, size in cur.fetchall():
            yield StoredEntry(entry_id, tenant, key, flags, size)

    def tenant_bytes(self) -> Dict[str, int]:
        """Per-tenant committed bytes (size accounting)."""
        cur = self._db.execute(
            "SELECT tenant, COALESCE(SUM(size), 0) FROM entries "
            "WHERE ready = 1 GROUP BY tenant ORDER BY tenant")
        return {tenant: total for tenant, total in cur.fetchall()}

    def count(self) -> int:
        """Number of committed entries."""
        cur = self._db.execute(
            "SELECT COUNT(*) FROM entries WHERE ready = 1")
        return int(cur.fetchone()[0])

    def close(self) -> None:
        self._db.close()

    # -- internals ------------------------------------------------------

    def _blob_path(self, entry_id: int) -> str:
        return os.path.join(self._data_dir, f"{entry_id}.val")

    def _row_of(self, tenant: str, key: str,
                ready_only: bool = False) -> Optional[Tuple[int, int]]:
        sql = "SELECT id, flags FROM entries WHERE tenant = ? AND key = ?"
        if ready_only:
            sql += " AND ready = 1"
        row = self._db.execute(sql, (tenant, key)).fetchone()
        return (row[0], row[1]) if row is not None else None

    @staticmethod
    def _unlink_quietly(path: str) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
