"""Asyncio TCP front-end binding the protocol to a ServiceCache."""

from __future__ import annotations

import asyncio
from typing import Optional

from .cache import ServiceCache
from .protocol import MAX_VALUE_BYTES, MemcacheProtocol

__all__ = ["CacheServer"]


class CacheServer:
    """One listening socket serving the memcached text protocol."""

    def __init__(self, cache: ServiceCache, host: str = "127.0.0.1",
                 port: int = 11311,
                 max_value_bytes: int = MAX_VALUE_BYTES,
                 tracer=None, ops_log=None) -> None:
        self.cache = cache
        self.host = host
        self.port = port
        self.protocol = MemcacheProtocol(cache, max_value_bytes,
                                         tracer=tracer, ops_log=ops_log)
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        """Bind and start accepting; ``port`` 0 picks a free port."""
        self._server = await asyncio.start_server(
            self.protocol.handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        # Capture-and-swap before the first await: a concurrent close()
        # (SIGTERM racing a failed-startup unwind) must see None instead
        # of double-closing the listener or re-closing a cache whose
        # store is already shut.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.cache.close()
