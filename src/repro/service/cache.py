"""The wall-clock DoubleDecker cache: PolicyEngine + DiskStore.

One :class:`ServiceCache` is one host.  Every tenant namespace maps to
its own DD container (a :class:`repro.core.pools.Pool`) under a single
service VM, so the paper's machinery applies unchanged: per-pool
``<T, W>`` weights, entitlements recomputed on every membership change,
Algorithm-1 victim selection at both levels, batch FIFO eviction, and
the :mod:`repro.endurance` admission controllers in front of the disk
store.

The disk store plays the role of the simulator's SSD store
(``StoreKind.SSD``); an entry of ``n`` bytes occupies
``ceil(n / block_bytes)`` blocks of the capacity budget, entered into
its pool's FIFO under the entry's id as the inode.  Eviction pops the
FIFO head and retires the *whole* entry — partial values are useless to
a memcached client — so one Algorithm-1 round frees up to an eviction
batch worth of blocks exactly as in the simulator.

Unlike the simulated exclusive cache, a ``get`` hit leaves the entry
resident (the service is the system of record for its values), so
residence order remains pure FIFO.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..core.config import CachePolicy, StoreKind
from ..core.engine import PolicyEngine
from ..core.pools import Pool
from ..endurance import make_admission
from ..metrics import MetricsRegistry
from .store import DiskStore

__all__ = ["ServiceCache", "SetStatus"]

_SSD = StoreKind.SSD
_MB = 1 << 20


class SetStatus:
    """Outcome of a ``set`` (memcached reply severity encoded by name)."""

    STORED = "stored"
    NOT_STORED = "not_stored"      # admission or eviction refused it
    TOO_LARGE = "too_large"        # exceeds the whole cache capacity


class ServiceCache:
    """Multi-tenant disk cache driven by the extracted policy core."""

    def __init__(
        self,
        store: DiskStore,
        capacity_mb: float = 64.0,
        block_bytes: int = 4096,
        eviction_batch_mb: float = 2.0,
        admission: Optional[str] = None,
        tenant_weight: float = 100.0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[object] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if block_bytes <= 0:
            raise ValueError(f"block_bytes must be positive, got {block_bytes}")
        self.store = store
        self.block_bytes = block_bytes
        self.capacity_blocks = max(1, int(capacity_mb * _MB) // block_bytes)
        self._eviction_batch = max(
            1, int(eviction_batch_mb * _MB) // block_bytes)
        self._admission = admission
        self._tenant_weight = tenant_weight
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self._clock = clock
        # Span/instant timestamps come from the tracer's own clock when
        # it has one (LiveTracer: monotonic ns), falling back to the
        # service clock — mixing bases would break the trace validator's
        # instant-ordering check.
        self._trace_now = getattr(tracer, "now", None) or clock

        self.engine = PolicyEngine(
            {StoreKind.MEMORY: 0, _SSD: self.capacity_blocks},
            admission_builder=self._build_admission,
            admission_namer=lambda policy: policy.admission or "",
        )
        self._vm_id = self.engine.register_vm("service", weight=100.0)
        #: tenant name -> its DD container.
        self.tenants: Dict[str, Pool] = {}
        #: entry id (inode) -> (tenant, key, blocks, size)
        self._entries: Dict[int, Tuple[str, str, int, int]] = {}
        #: (tenant, key) -> entry id
        self._ids: Dict[Tuple[str, str], int] = {}
        self.used_blocks = 0
        self._recover()

    # -- construction ---------------------------------------------------

    def _build_admission(self, policy: CachePolicy):
        return make_admission(
            policy.admission,
            block_bytes=self.block_bytes,
            ssd_capacity_blocks=self.capacity_blocks,
        )

    def _recover(self) -> None:
        """Rebuild pool metadata from the store, in id (FIFO) order."""
        for entry in self.store.iter_entries():
            pool = self.pool(entry.tenant)
            blocks = self._blocks_of(entry.size)
            for block in range(blocks):
                pool.insert(entry.entry_id, block, _SSD)
            self._entries[entry.entry_id] = (
                entry.tenant, entry.key, blocks, entry.size)
            self._ids[(entry.tenant, entry.key)] = entry.entry_id
            self.used_blocks += blocks

    def pool(self, tenant: str) -> Pool:
        """The tenant's container, created on first use."""
        pool = self.tenants.get(tenant)
        if pool is None:
            pool = self.engine.create_pool(
                self._vm_id, tenant,
                CachePolicy(ssd_weight=self._tenant_weight,
                            admission=self._admission))
            self.tenants[tenant] = pool
        return pool

    def _blocks_of(self, size: int) -> int:
        return max(1, (size + self.block_bytes - 1) // self.block_bytes)

    # -- data path ------------------------------------------------------

    def get(self, tenant: str, key: str) -> Optional[Tuple[bytes, int, int]]:
        """``(value, flags, cas_id)`` on a hit, ``None`` on a miss."""
        tracer = self._tracer
        if tracer is None:
            return self._get(tenant, key)
        tracer.span_begin()
        t0 = self._trace_now()
        found = None
        try:
            found = self._get(tenant, key)
            return found
        finally:
            tracer.span_end(
                "svc.get", t0, self._trace_now(), vm=self._vm_id,
                pool=self.pool(tenant).pool_id, tenant=tenant,
                hit=found is not None)

    def set(self, tenant: str, key: str, value: bytes,
            flags: int = 0) -> str:
        """Store a value under Algorithm-1 capacity discipline."""
        tracer = self._tracer
        if tracer is None:
            return self._set(tenant, key, value, flags)
        tracer.span_begin()
        t0 = self._trace_now()
        status = "error"
        try:
            status = self._set(tenant, key, value, flags)
            return status
        finally:
            tracer.span_end(
                "svc.put", t0, self._trace_now(), vm=self._vm_id,
                pool=self.pool(tenant).pool_id, tenant=tenant,
                status=status, nbytes=len(value))

    def delete(self, tenant: str, key: str) -> bool:
        """Remove a key; True if it was present."""
        tracer = self._tracer
        if tracer is None:
            return self._delete(tenant, key)
        tracer.span_begin()
        t0 = self._trace_now()
        deleted = False
        try:
            deleted = self._delete(tenant, key)
            return deleted
        finally:
            tracer.span_end(
                "svc.delete", t0, self._trace_now(), vm=self._vm_id,
                pool=self.pool(tenant).pool_id, tenant=tenant,
                deleted=deleted)

    def _get(self, tenant: str, key: str) -> Optional[Tuple[bytes, int, int]]:
        pool = self.pool(tenant)
        pool.stats.gets += 1
        entry_id = self._ids.get((tenant, key))
        if entry_id is None:
            return None
        found = self.store.get(tenant, key)
        if found is None:
            # Store and metadata disagree — heal the metadata side.
            self._forget(entry_id)
            return None
        pool.stats.get_hits += 1
        return found

    def _set(self, tenant: str, key: str, value: bytes,
             flags: int = 0) -> str:
        pool = self.pool(tenant)
        pool.stats.puts += 1
        blocks = self._blocks_of(len(value))
        if blocks > self.capacity_blocks:
            pool.stats.put_rejected_capacity += 1
            return SetStatus.TOO_LARGE
        controller = pool.admission
        if controller is not None and not controller.admit(
                (tenant, key), self._clock()):
            pool.stats.put_rejected_admission += 1
            return SetStatus.NOT_STORED

        # Replace-in-place: retire the old copy's blocks first so the
        # eviction pass below sees true occupancy.
        old_id = self._ids.get((tenant, key))
        if old_id is not None:
            self._forget(old_id)

        if not self._make_room(blocks):
            pool.stats.put_rejected_capacity += 1
            return SetStatus.NOT_STORED

        entry_id = self.store.set(tenant, key, value, flags)
        for block in range(blocks):
            pool.insert(entry_id, block, _SSD)
        self._entries[entry_id] = (tenant, key, blocks, len(value))
        self._ids[(tenant, key)] = entry_id
        self.used_blocks += blocks
        pool.stats.puts_stored += 1
        pool.stats.ssd_writes += blocks
        return SetStatus.STORED

    def _delete(self, tenant: str, key: str) -> bool:
        pool = self.pool(tenant)
        pool.stats.flush_requests += 1
        entry_id = self._ids.get((tenant, key))
        if entry_id is None:
            return False
        blocks = self._entries[entry_id][2]
        self._forget(entry_id)
        self.store.delete_entry(entry_id)
        pool.stats.flushes += blocks
        return True

    def flush_all(self, tenant: Optional[str] = None) -> int:
        """Drop every entry of one tenant (or of all); returns entries
        dropped."""
        victims = [
            entry_id for entry_id, entry in sorted(self._entries.items())
            if tenant is None or entry[0] == tenant
        ]
        for entry_id in victims:
            owner, _, blocks, _ = self._entries[entry_id]
            self._forget(entry_id)
            self.store.delete_entry(entry_id)
            self.tenants[owner].stats.flushes += blocks
        return len(victims)

    # -- eviction -------------------------------------------------------

    def _make_room(self, blocks_needed: int) -> bool:
        """Evict per Algorithm 1 until ``blocks_needed`` fit."""
        while self.used_blocks + blocks_needed > self.capacity_blocks:
            round_ = self.engine.select_eviction(_SSD, self._eviction_batch)
            if round_ is None:
                return False
            victim_pool = round_.victim_pool
            tracer = self._tracer
            t0 = 0
            if tracer is not None:
                tracer.span_begin()
                t0 = self._trace_now()
            freed = self._evict_batch(victim_pool, blocks_needed)
            if tracer is not None:
                tracer.span_end(
                    "svc.evict.round", t0, self._trace_now(),
                    vm=self._vm_id, pool=victim_pool.pool_id,
                    tenant=victim_pool.name, freed=freed)
            if freed == 0:
                # The selected pool had nothing left (stale candidate);
                # no other entity can be closer to its entitlement, so
                # the request simply does not fit.
                return False
        return True

    def _evict_batch(self, pool: Pool, blocks_needed: int) -> int:
        """FIFO-evict whole entries from ``pool`` up to one batch."""
        freed = 0
        while (freed < self._eviction_batch
               and self.used_blocks + blocks_needed > self.capacity_blocks):
            oldest = pool.pop_oldest(_SSD)
            if oldest is None:
                break
            entry_id = oldest[0]
            tenant, key, blocks, _ = self._entries.pop(entry_id)
            # pop_oldest removed one block; drop the entry's remainder.
            pool.remove_inode(entry_id)
            del self._ids[(tenant, key)]
            self.used_blocks -= blocks
            self.store.delete_entry(entry_id)
            pool.stats.evictions += blocks
            freed += blocks
            if self._tracer is not None:
                self._tracer.instant(
                    "service.evict", self._trace_now(), vm=self._vm_id,
                    pool=pool.pool_id, tenant=tenant, blocks=blocks)
        return freed

    def _forget(self, entry_id: int) -> None:
        """Drop an entry's pool/index metadata (store row handled by
        the caller, or replaced atomically by ``DiskStore.set``)."""
        tenant, key, blocks, _ = self._entries.pop(entry_id)
        self.tenants[tenant].remove_inode(entry_id)
        del self._ids[(tenant, key)]
        self.used_blocks -= blocks

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counter snapshot plus host-level occupancy."""
        out: Dict[str, Dict[str, float]] = {}
        for tenant in sorted(self.tenants):
            pool = self.tenants[tenant]
            snap = pool.snapshot_stats()
            out[tenant] = {
                "gets": snap.gets,
                "get_hits": snap.get_hits,
                "puts": snap.puts,
                "puts_stored": snap.puts_stored,
                "evictions": snap.evictions,
                "put_rejected_admission": snap.put_rejected_admission,
                "put_rejected_capacity": snap.put_rejected_capacity,
                "used_blocks": pool.used[_SSD],
                "entitlement_blocks": pool.entitlement[_SSD],
            }
        out["_host"] = {
            "used_blocks": self.used_blocks,
            "capacity_blocks": self.capacity_blocks,
            "entries": len(self._entries),
        }
        return out

    def close(self) -> None:
        self.store.close()
