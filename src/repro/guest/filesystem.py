"""A minimal guest filesystem: inodes, extents, per-container ownership.

Only what disk-cache behaviour needs: each file has an inode, a length in
blocks, and a contiguous extent on the virtual disk (so sequential file
reads become sequential disk reads).  File data content is never stored —
the simulation tracks identity and placement of blocks, not bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["File", "Filesystem"]

#: Extra extent slack reserved at creation so appends stay contiguous.
_APPEND_SLACK = 4


class File:
    """One regular file."""

    __slots__ = ("inode", "owner_cgroup_id", "nblocks", "disk_start",
                 "max_blocks", "hv_pool_id", "name", "ra_pos", "ra_streak")

    def __init__(
        self,
        inode: int,
        owner_cgroup_id: int,
        nblocks: int,
        disk_start: int,
        max_blocks: int,
        name: str = "",
    ) -> None:
        self.inode = inode
        self.owner_cgroup_id = owner_cgroup_id
        self.nblocks = nblocks
        self.disk_start = disk_start
        self.max_blocks = max_blocks
        #: The hypervisor-cache pool currently holding this file's blocks
        #: (None when unknown); used to trigger MIGRATE_OBJECT on sharing.
        self.hv_pool_id: Optional[int] = None
        self.name = name
        #: Readahead state: expected next sequential offset + streak length.
        self.ra_pos = -1
        self.ra_streak = 0

    def keys(self, start: int = 0, nblocks: Optional[int] = None) -> List[Tuple[int, int]]:
        """Block keys for the range ``[start, start + nblocks)``."""
        if nblocks is None:
            nblocks = self.nblocks - start
        end = min(self.nblocks, start + nblocks)
        return [(self.inode, block) for block in range(start, end)]

    def disk_offset(self, block: int) -> int:
        """Virtual-disk block number backing file ``block``."""
        return self.disk_start + block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<File inode={self.inode} {self.name!r} {self.nblocks}blk>"


class Filesystem:
    """Inode/extent allocator for one VM's virtual disk.

    ``disk_base`` offsets each VM's extents into its own region of the
    shared host disk, so cross-VM streams do not appear sequential.
    """

    def __init__(self, disk_base: int = 0) -> None:
        self.files: Dict[int, File] = {}
        self._next_inode = 1
        self._next_extent = disk_base
        self.created = 0
        self.deleted = 0

    def create_file(
        self,
        owner_cgroup_id: int,
        nblocks: int,
        name: str = "",
        append_slack: int = _APPEND_SLACK,
    ) -> File:
        """Allocate a file of ``nblocks`` with room for some appends."""
        if nblocks < 0:
            raise ValueError(f"nblocks must be non-negative, got {nblocks}")
        max_blocks = nblocks + max(0, append_slack)
        file = File(
            inode=self._next_inode,
            owner_cgroup_id=owner_cgroup_id,
            nblocks=nblocks,
            disk_start=self._next_extent,
            max_blocks=max_blocks,
            name=name,
        )
        self._next_inode += 1
        self._next_extent += max(1, max_blocks)
        self.files[file.inode] = file
        self.created += 1
        return file

    def extend_file(self, file: File, nblocks: int) -> int:
        """Append ``nblocks``; returns the first new block offset.

        Appends beyond the reserved extent wrap within it (the workload
        models treat log files as circular, which keeps disk layout sane).
        """
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        start = file.nblocks
        file.nblocks = min(file.max_blocks, file.nblocks + nblocks)
        if file.nblocks == file.max_blocks and start >= file.max_blocks:
            # Fully wrapped: overwrite from the beginning.
            start = 0
        return min(start, max(0, file.nblocks - nblocks))

    def delete_file(self, file: File) -> None:
        """Remove a file (page-cache/cleancache invalidation is the guest
        OS's job and must happen first)."""
        if file.inode in self.files:
            del self.files[file.inode]
            self.deleted += 1

    def get(self, inode: int) -> Optional[File]:
        return self.files.get(inode)

    def __len__(self) -> int:
        return len(self.files)
