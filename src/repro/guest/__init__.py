"""Guest-side stack: filesystem, guest OS, virtual machines, containers."""

from .filesystem import File, Filesystem
from .guestos import GuestOS, GuestStats, IOResult
from .vm import Container, VirtualMachine

__all__ = [
    "Container",
    "File",
    "Filesystem",
    "GuestOS",
    "GuestStats",
    "IOResult",
    "VirtualMachine",
]
