"""The guest operating system: file IO, anonymous memory, reclaim.

This is where all the paper's mechanisms meet:

* the **page cache** front-end (read/write/fsync paths) with the
  **cleancache** hooks — exclusive ``get`` on miss, ``put`` on clean
  eviction, ``flush`` on invalidation;
* **cgroup memory limits** with cgroup-local reclaim (file pages evicted
  in LRU order, anonymous pages swapped when they are the coldest);
* **VM-level reclaim** approximating the kernel's global LRU: the
  container owning the coldest page (file or anon) loses it;
* a background **writeback flusher** (dirty pages expire after
  ``dirty_expire_s``).

All public IO methods are simulation generators: callers experience real
queueing on the virtual disk, the swap device, and the hypervisor cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cgroups import Cgroup, CgroupSubsystem
from ..cleancache import CleancacheClient
from ..core.pools import BlockKey
from ..mem import PageCache
from ..mem.page import PageEntry, SeqCounter
from ..simkernel import Environment
from ..storage import MB, BlockDevice, MemSpec
from .filesystem import File, Filesystem

__all__ = ["GuestOS", "IOResult", "GuestStats"]

#: Pages reclaimed per round (≈2 MB at the default 64 KiB block size).
RECLAIM_BATCH = 32


class IOResult:
    """Outcome of one read/write call (for workload accounting)."""

    __slots__ = ("blocks", "pc_hits", "cc_hits", "disk_blocks", "latency")

    def __init__(self) -> None:
        self.blocks = 0
        self.pc_hits = 0
        self.cc_hits = 0
        self.disk_blocks = 0
        self.latency = 0.0


class GuestStats:
    """Cumulative guest-kernel counters."""

    __slots__ = ("pc_lookups", "pc_hits", "cc_gets", "cc_hits", "disk_reads",
                 "disk_writes", "writeback_blocks", "swap_out_blocks",
                 "swap_in_blocks", "cc_puts", "cc_put_stored",
                 "reclaim_rounds", "readahead_blocks")

    def __init__(self) -> None:
        self.pc_lookups = 0
        self.pc_hits = 0
        self.cc_gets = 0
        self.cc_hits = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self.writeback_blocks = 0
        self.swap_out_blocks = 0
        self.swap_in_blocks = 0
        self.cc_puts = 0
        self.cc_put_stored = 0
        self.reclaim_rounds = 0
        self.readahead_blocks = 0


class GuestOS:
    """One virtual machine's kernel."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_mb: float,
        block_bytes: int,
        disk: BlockDevice,
        cleancache: CleancacheClient,
        mem_spec: Optional[MemSpec] = None,
        disk_base_block: int = 0,
        kernel_reserve_mb: float = 64.0,
        dirty_expire_s: float = 30.0,
        flusher_interval_s: float = 5.0,
        swap_base_block: Optional[int] = None,
        reclaim_rng=None,
        readahead_blocks: int = 0,
    ) -> None:
        self.env = env
        self.name = name
        self.block_bytes = block_bytes
        usable_mb = max(1.0, memory_mb - kernel_reserve_mb)
        #: Blocks of RAM available for anon + page cache.
        self.memory_blocks = int(usable_mb * MB) // block_bytes
        self.disk = disk
        self.cleancache = cleancache
        self.mem_spec = mem_spec or MemSpec()
        self.seq = SeqCounter()
        self.pagecache = PageCache(self.seq)
        self.cgroups = CgroupSubsystem(cleancache)
        self.fs = Filesystem(disk_base_block)
        #: Swap area: its own disk region (random single-page faults).
        self.swap_base = (
            swap_base_block if swap_base_block is not None else disk_base_block + (1 << 30)
        )
        self.stats = GuestStats()
        import random as _random

        #: RNG driving global-reclaim scan-pressure choices (seeded by the
        #: host's stream factory; a private fallback keeps tests simple).
        self._reclaim_rng = reclaim_rng or _random.Random(0)
        #: Sequential readahead window (0 disables; Linux-like behaviour
        #: prefetches ahead once a file shows a sequential streak).
        self.readahead_blocks = readahead_blocks
        self.dirty_expire_s = dirty_expire_s
        self._flusher = env.process(
            self._flusher_loop(flusher_interval_s), name=f"{name}-flusher"
        )

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------

    def total_usage_blocks(self) -> int:
        """RAM charged across all cgroups (anon + file).

        Every resident file page is charged to exactly one live cgroup
        (admission increments, eviction/deletion/teardown decrement in the
        same step), so the file side equals the page-cache population —
        summed directly off the index instead of walking per-cgroup
        property chains, since reclaim re-checks this bound per batch.
        """
        total = len(self.pagecache.entries)
        for cgroup in self.cgroups:
            total += len(cgroup.anon.resident)
        return total

    def set_memory_blocks(self, blocks: int) -> None:
        """Balloon the VM's usable memory (reclaim is the caller's job —
        see :meth:`reclaim_to_target` for the eager variant)."""
        if blocks < 1:
            raise ValueError(f"memory must be positive, got {blocks}")
        self.memory_blocks = blocks

    def reclaim_to_target(self):
        """Generator: reclaim until usage fits the (ballooned) memory."""
        freed_total = 0
        while self.total_usage_blocks() > self.memory_blocks:
            freed = yield from self._shrink_vm(RECLAIM_BATCH)
            if freed == 0:
                break
            freed_total += freed
        return freed_total

    def free_blocks(self) -> int:
        return self.memory_blocks - self.total_usage_blocks()

    def _copy_cost(self, nblocks: int) -> float:
        """User-copy cost for ``nblocks`` page-cache hits."""
        return nblocks * self.mem_spec.copy_time(self.block_bytes)

    # ------------------------------------------------------------------
    # File IO paths
    # ------------------------------------------------------------------

    def read_file(self, cgroup: Cgroup, file: File, start: int = 0,
                  nblocks: Optional[int] = None):
        """Read a block range through the page cache; returns IOResult."""
        result = IOResult()
        env = self.env
        t0 = env._now
        inode = file.inode
        end = file.nblocks if nblocks is None else min(file.nblocks, start + nblocks)
        nkeys = end - start if end > start else 0
        result.blocks = nkeys
        # Hot loop (every read of every workload thread): one fused sweep
        # that builds keys, hit-tests, and bumps LRU/seq with everything
        # bound to locals — the per-block method chain (File.keys +
        # PageCache.lookup + SeqCounter) costs more than the work itself.
        pagecache = self.pagecache
        entries_get = pagecache.entries.get
        lrus = pagecache.lrus
        seq_counter = pagecache.seq
        seq = seq_counter.value
        misses: List[BlockKey] = []
        miss = misses.append
        for block in range(start, end):
            key = (inode, block)
            entry = entries_get(key)
            if entry is None:
                miss(key)
            else:
                seq += 1
                entry.seq = seq
                lrus[entry.cgroup_id].move_to_end(key)
        seq_counter.value = seq
        hits = nkeys - len(misses)
        stats = self.stats
        stats.pc_lookups += nkeys
        stats.pc_hits += hits
        result.pc_hits = hits
        if hits:
            yield env.timeout(self._copy_cost(hits))
        if self.readahead_blocks > 0:
            misses.extend(self._readahead_keys(file, start, nkeys))
        if misses:
            yield from self._fill_misses(cgroup, file, misses, result)
        result.latency = env._now - t0
        return result

    def _readahead_keys(self, file: File, start: int, count: int) -> List[BlockKey]:
        """Prefetch candidates for a sequentially-read file.

        A file that has been read in order for two consecutive requests
        gets ``readahead_blocks`` of lookahead appended to its miss list
        (skipping already-resident blocks), mirroring the kernel's
        streaming readahead.
        """
        if self.readahead_blocks <= 0:
            return []
        if start == file.ra_pos:
            file.ra_streak += 1
        else:
            file.ra_streak = 1 if start == 0 else 0
        end = start + count
        file.ra_pos = end
        if file.ra_streak < 2:
            return []
        out: List[BlockKey] = []
        for block in range(end, min(file.nblocks, end + self.readahead_blocks)):
            key = (file.inode, block)
            if key not in self.pagecache:
                out.append(key)
        self.stats.readahead_blocks += len(out)
        return out

    def _fill_misses(self, cgroup: Cgroup, file: File, misses: List[BlockKey],
                     result: IOResult):
        """Second-chance lookup, then disk, then page-cache admission."""
        # MIGRATE_OBJECT: the file's cached blocks may belong to another
        # container's pool (shared files); re-home them before the lookup.
        if (
            file.hv_pool_id is not None
            and cgroup.pool_id is not None
            and file.hv_pool_id != cgroup.pool_id
        ):
            self.cleancache.migrate(file.hv_pool_id, cgroup.pool_id, file.inode)
            file.hv_pool_id = cgroup.pool_id

        self.stats.cc_gets += len(misses)
        found = yield from self.cleancache.get_many(cgroup.pool_id, misses)
        self.stats.cc_hits += len(found)
        result.cc_hits += len(found)

        disk_keys = [key for key in misses if key not in found]
        if disk_keys:
            result.disk_blocks += len(disk_keys)
            self.stats.disk_reads += len(disk_keys)
            for offset, length in _disk_runs(file, disk_keys):
                yield from self.disk.read(offset, length)
        # Admit everything we brought in (charging may trigger reclaim).
        yield from self._admit_pages(cgroup, misses, dirty=False)

    def write_file(self, cgroup: Cgroup, file: File, start: int = 0,
                   nblocks: Optional[int] = None, sync: bool = False):
        """Write a block range (buffered unless ``sync``); returns IOResult."""
        result = IOResult()
        env = self.env
        t0 = env._now
        inode = file.inode
        end = file.nblocks if nblocks is None else min(file.nblocks, start + nblocks)
        nkeys = end - start if end > start else 0
        result.blocks = nkeys
        # Fused key-build + lookup + mark_dirty sweep (see read_file).
        pagecache = self.pagecache
        entries_get = pagecache.entries.get
        lrus = pagecache.lrus
        seq_counter = pagecache.seq
        dirty_index = pagecache.dirty
        seq = seq_counter.value
        now = t0
        fresh: List[BlockKey] = []
        add = fresh.append
        pc_hits = 0
        for block in range(start, end):
            key = (inode, block)
            entry = entries_get(key)
            if entry is None:
                add(key)
            else:
                pc_hits += 1
                seq += 1
                entry.seq = seq
                lrus[entry.cgroup_id].move_to_end(key)
                if not entry.dirty:
                    entry.dirty = True
                    entry.dirty_since = now
                    dirty_index[key] = entry
        seq_counter.value = seq
        result.pc_hits = pc_hits
        if fresh:
            # The hypervisor cache may hold stale copies of blocks we are
            # about to overwrite without reading: invalidate them.
            yield from self.cleancache.flush_many(cgroup.pool_id, fresh)
            yield from self._admit_pages(cgroup, fresh, dirty=True)
        yield env.timeout(self._copy_cost(nkeys))
        if sync:
            yield from self.fsync(cgroup, file)
        result.latency = self.env.now - t0
        return result

    def append_file(self, cgroup: Cgroup, file: File, nblocks: int, sync: bool = False):
        """Append ``nblocks`` (log-style write); returns IOResult."""
        start = self.fs.extend_file(file, nblocks)
        result = yield from self.write_file(cgroup, file, start, nblocks, sync=sync)
        return result

    def fsync(self, cgroup: Cgroup, file: File):
        """Write back every dirty page of ``file`` synchronously."""
        entries = self.pagecache.dirty_of_inode(file.inode, file.keys())
        if not entries:
            return 0
        written = yield from self._writeback(entries)
        return written

    def delete_file(self, cgroup: Cgroup, file: File):
        """Unlink: drop page-cache pages, invalidate the hypervisor pool."""
        removed = self.pagecache.remove_inode(file.inode, file.keys())
        for entry in removed:
            owner = self.cgroups.cgroups.get(entry.cgroup_id)
            if owner is not None:
                owner.file_blocks -= 1
        if file.hv_pool_id is not None:
            yield from self.cleancache.flush_inode(
                file.hv_pool_id, file.inode, nblocks=file.nblocks)
            file.hv_pool_id = None
        self.fs.delete_file(file)
        return len(removed)

    # ------------------------------------------------------------------
    # Anonymous memory
    # ------------------------------------------------------------------

    def touch_anon(self, cgroup: Cgroup, pages: Sequence[int]):
        """Access anonymous pages (fault-in / allocate as needed)."""
        anon = cgroup.anon
        faults: List[int] = []
        fresh: List[int] = []
        for page in pages:
            state = anon.touch(page, self.seq.next())
            if state == "swapped":
                faults.append(page)
            elif state == "new":
                fresh.append(page)
        if faults:
            for base in range(0, len(faults), RECLAIM_BATCH):
                chunk = faults[base:base + RECLAIM_BATCH]
                yield from self._reclaim_for(cgroup, len(chunk))
                # Re-check: a concurrent thread may have faulted a page in
                # while we waited on reclaim IO.
                slots = [
                    anon.fault_in(page, self.seq.next())
                    for page in chunk
                    if anon.is_swapped(page)
                ]
                cgroup.swap_in_blocks += len(slots)
                self.stats.swap_in_blocks += len(slots)
                for offset, length in _slot_runs(self.swap_base, slots):
                    yield from self.disk.read(offset, length)
        if fresh:
            # Chunked like file admission: a huge allocation must not blow
            # past the cgroup limit just because it arrived in one call.
            for base in range(0, len(fresh), RECLAIM_BATCH):
                chunk = fresh[base:base + RECLAIM_BATCH]
                yield from self._reclaim_for(cgroup, len(chunk))
                for page in chunk:
                    if not anon.is_resident(page) and not anon.is_swapped(page):
                        anon.map_new(page, self.seq.next())
        # Resident touches cost a memory access each (negligible but nonzero).
        resident = len(pages) - len(faults) - len(fresh)
        if resident:
            yield self.env.timeout(resident * self.mem_spec.touch_latency_us * 1e-6)
        return len(faults)

    # ------------------------------------------------------------------
    # Page-cache admission and reclaim
    # ------------------------------------------------------------------

    def _admit_pages(self, cgroup: Cgroup, keys: Iterable[BlockKey], dirty: bool):
        """Charge and insert pages (reclaiming first if needed).

        Admission happens in reclaim-batch-sized chunks so that a single
        large read cannot blow past the cgroup limit: later chunks evict
        the (now-coldest) pages of earlier ones, giving the correct
        streaming behaviour for files larger than the container.
        """
        pagecache = self.pagecache
        resident = pagecache.entries
        pending = [key for key in keys if key not in resident]
        if not pending:
            return
        # PageCache.insert/mark_dirty inlined (same state transitions):
        # admission is the second-hottest guest loop and the fresh entry
        # is known clean, so the dirty branch needs no ``if not dirty``
        # re-check and the LRU/seq plumbing binds to locals once.
        lrus = pagecache.lrus
        seq_counter = pagecache.seq
        dirty_index = pagecache.dirty
        cgroup_id = cgroup.cgroup_id
        lru = lrus.get(cgroup_id)
        for base in range(0, len(pending), RECLAIM_BATCH):
            chunk = pending[base:base + RECLAIM_BATCH]
            yield from self._reclaim_for(cgroup, len(chunk))
            now = self.env._now
            admitted = 0
            for key in chunk:
                if key in resident:  # racing thread admitted it already
                    continue
                seq = seq_counter.value + 1
                seq_counter.value = seq
                entry = PageEntry(key[0], key[1], cgroup_id, seq)
                resident[key] = entry
                if lru is None:
                    lru = lrus.get(cgroup_id)
                    if lru is None:
                        lru = lrus[cgroup_id] = OrderedDict()
                lru[key] = entry
                admitted += 1
                if dirty:
                    entry.dirty = True
                    entry.dirty_since = now
                    dirty_index[key] = entry
            cgroup.file_blocks += admitted

    def _reclaim_for(self, cgroup: Cgroup, need: int):
        """Make room for ``need`` new blocks: cgroup limit, then VM limit."""
        guard = 0
        while cgroup.usage_blocks + need > cgroup.limit_blocks:
            freed = yield from self._shrink_cgroup(cgroup, max(need, RECLAIM_BATCH))
            if freed == 0:
                break
            guard += 1
            if guard > self.memory_blocks:  # pragma: no cover - safety net
                break
        guard = 0
        while self.total_usage_blocks() + need > self.memory_blocks:
            freed = yield from self._shrink_vm(max(need, RECLAIM_BATCH))
            if freed == 0:
                break
            guard += 1
            if guard > self.memory_blocks:  # pragma: no cover - safety net
                break

    def _shrink_cgroup(self, cgroup: Cgroup, count: int):
        """One cgroup-local reclaim round; returns blocks freed."""
        self.stats.reclaim_rounds += 1
        file_entry = self.pagecache.coldest(cgroup.cgroup_id)
        anon_seq = cgroup.anon.coldest_seq()
        # Global-LRU choice within the cgroup: evict whichever class owns
        # the colder page (anon loses ties so file cache yields first).
        if file_entry is not None and (anon_seq is None or file_entry.seq <= anon_seq):
            freed = yield from self._evict_file_pages(cgroup, count)
            return freed
        if anon_seq is not None:
            freed = yield from self._swap_out(cgroup, count)
            return freed
        if file_entry is not None:
            freed = yield from self._evict_file_pages(cgroup, count)
            return freed
        return 0

    def _shrink_vm(self, count: int):
        """One VM-global reclaim round; returns blocks freed.

        Models the kernel's global reclaim, where *scan pressure* is
        proportional to each cgroup's resident size rather than a perfect
        cross-cgroup LRU: a victim cgroup is drawn weighted by usage, then
        its own LRU decides file-vs-anon.  This is what lets a streaming
        page-cache hog displace another container's anonymous memory
        (the paper's Morai++/Redis interaction) — a strict global LRU
        would shield hot anon pages entirely.
        """
        self.stats.reclaim_rounds += 1
        cgroups = [cg for cg in self.cgroups if cg.usage_blocks > 0]
        if not cgroups:
            return 0
        total = sum(cg.usage_blocks for cg in cgroups)
        pick = self._reclaim_rng.random() * total
        acc = 0
        victim = cgroups[-1]
        for cgroup in cgroups:
            acc += cgroup.usage_blocks
            if pick <= acc:
                victim = cgroup
                break
        freed = yield from self._shrink_cgroup(victim, count)
        if freed:
            return freed
        # The chosen victim had nothing reclaimable; try the others.
        for cgroup in cgroups:
            if cgroup is victim:
                continue
            freed = yield from self._shrink_cgroup(cgroup, count)
            if freed:
                return freed
        return 0

    def _evict_file_pages(self, cgroup: Cgroup, count: int):
        """Evict coldest file pages: writeback dirty, cleancache-put clean."""
        clean, dirty = self.pagecache.take_coldest(cgroup.cgroup_id, count)
        taken = len(clean) + len(dirty)
        if taken == 0:
            return 0
        cgroup.file_blocks -= taken
        if dirty:
            yield from self._writeback_detached(dirty)
        # Every evicted page is clean by now: offer it to the second chance.
        put_keys = [entry.key for entry in clean] + [entry.key for entry in dirty]
        self.stats.cc_puts += len(put_keys)
        stored = yield from self.cleancache.put_many(cgroup.pool_id, put_keys)
        self.stats.cc_put_stored += stored
        if stored and cgroup.pool_id is not None:
            for entry in clean:
                file = self.fs.get(entry.inode)
                if file is not None:
                    file.hv_pool_id = cgroup.pool_id
            for entry in dirty:
                file = self.fs.get(entry.inode)
                if file is not None:
                    file.hv_pool_id = cgroup.pool_id
        return taken

    def _swap_out(self, cgroup: Cgroup, count: int):
        """Swap the cgroup's coldest anonymous pages to the swap area."""
        slots = cgroup.anon.swap_out_coldest(count)
        if not slots:
            return 0
        cgroup.swap_out_blocks += len(slots)
        self.stats.swap_out_blocks += len(slots)
        for offset, length in _slot_runs(self.swap_base, slots):
            yield from self.disk.write(offset, length)
        return len(slots)

    # ------------------------------------------------------------------
    # Writeback
    # ------------------------------------------------------------------

    def _writeback(self, entries: List[PageEntry]):
        """Write dirty *resident* pages to disk and mark them clean."""
        live = [entry for entry in entries if entry.dirty]
        if not live:
            return 0
        yield from self._write_entries(live)
        for entry in live:
            self.pagecache.mark_clean(entry)
        return len(live)

    def _writeback_detached(self, entries: List[PageEntry]):
        """Write already-removed dirty pages (reclaim path)."""
        yield from self._write_entries(entries)
        for entry in entries:
            entry.dirty = False
            entry.dirty_since = None
        return len(entries)

    def _write_entries(self, entries: List[PageEntry]):
        self.stats.disk_writes += len(entries)
        self.stats.writeback_blocks += len(entries)
        by_file: Dict[int, List[int]] = {}
        for entry in entries:
            by_file.setdefault(entry.inode, []).append(entry.block)
        for inode, blocks in by_file.items():
            file = self.fs.get(inode)
            if file is None:
                continue  # deleted under us; nothing to persist
            keys = [(inode, block) for block in sorted(blocks)]
            for offset, length in _disk_runs(file, keys):
                yield from self.disk.write(offset, length)

    def _flusher_loop(self, interval: float):
        """Background dirty-page expiry (pdflush analogue)."""
        while True:
            yield self.env.timeout(interval)
            expired = self.pagecache.expired_dirty(
                self.env.now, self.dirty_expire_s, limit=1024
            )
            if expired:
                yield from self._writeback(expired)


def _disk_runs(file: File, keys: Sequence[BlockKey]) -> List[Tuple[int, int]]:
    """Convert sorted block keys of one file into disk ``(offset, len)`` runs."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    length = 0
    for _, block in keys:
        if start is not None and block == start + length:
            length += 1
        else:
            if start is not None:
                runs.append((file.disk_offset(start), length))
            start = block
            length = 1
    if start is not None:
        runs.append((file.disk_offset(start), length))
    return runs


def _slot_runs(base: int, slots: Sequence[int]) -> List[Tuple[int, int]]:
    """Contiguous runs over swap slots (offset by the swap area base)."""
    runs: List[Tuple[int, int]] = []
    ordered = sorted(slots)
    start: Optional[int] = None
    length = 0
    for slot in ordered:
        if start is not None and slot == start + length:
            length += 1
        else:
            if start is not None:
                runs.append((base + start, length))
            start = slot
            length = 1
    if start is not None:
        runs.append((base + start, length))
    return runs
