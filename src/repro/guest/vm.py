"""Virtual machines and application containers (the LXC-in-KVM nesting).

A :class:`VirtualMachine` owns a :class:`~repro.guest.guestos.GuestOS`;
:class:`Container` is the workload-facing handle combining a cgroup with
convenience IO methods.  The *VM-level policy controller* of the paper is
the pair (``create_container`` policies, ``set_container_policy``) —
exercised from inside the VM, enforced by the hypervisor cache.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cgroups import Cgroup
from ..cleancache import CleancacheClient
from ..core.config import CachePolicy
from ..core.stats import PoolStats
from ..simkernel import Environment
from ..storage import MB
from .filesystem import File
from .guestos import GuestOS

__all__ = ["VirtualMachine", "Container"]


class Container:
    """An application container: a cgroup plus its file/anon namespaces."""

    def __init__(self, vm: "VirtualMachine", cgroup: Cgroup) -> None:
        self.vm = vm
        self.cgroup = cgroup

    @property
    def name(self) -> str:
        return self.cgroup.name

    @property
    def pool_id(self) -> Optional[int]:
        return self.cgroup.pool_id

    # -- file namespace ----------------------------------------------------

    def create_file(self, nblocks: int, name: str = "", append_slack: int = 4) -> File:
        return self.vm.os.fs.create_file(
            self.cgroup.cgroup_id, nblocks, name=name, append_slack=append_slack
        )

    # -- IO (generators) -----------------------------------------------------

    # Each method returns the GuestOS generator directly instead of
    # wrapping it in a delegating `yield from` frame: semantics are
    # identical for `yield from` / `env.process`, but every resume of a
    # wrapped generator pays one frame hop per delegation level, and
    # these run once per workload op.

    def read(self, file: File, start: int = 0, nblocks: Optional[int] = None):
        return self.vm.os.read_file(self.cgroup, file, start, nblocks)

    def write(self, file: File, start: int = 0, nblocks: Optional[int] = None,
              sync: bool = False):
        return self.vm.os.write_file(self.cgroup, file, start, nblocks, sync=sync)

    def append(self, file: File, nblocks: int, sync: bool = False):
        return self.vm.os.append_file(self.cgroup, file, nblocks, sync)

    def fsync(self, file: File):
        return self.vm.os.fsync(self.cgroup, file)

    def delete(self, file: File):
        return self.vm.os.delete_file(self.cgroup, file)

    def touch_anon(self, pages):
        return self.vm.os.touch_anon(self.cgroup, pages)

    # -- policy control (the VM-level controller) ------------------------------

    def set_cache_policy(self, policy: CachePolicy) -> None:
        """SET_CG_WEIGHT: change this container's ``<T, W>`` tuple."""
        self.vm.os.cgroups.set_policy(self.cgroup, policy)

    def set_memory_limit_mb(self, limit_mb: float) -> None:
        """Adjust the in-VM cgroup memory limit."""
        blocks = max(1, int(limit_mb * MB) // self.vm.block_bytes)
        self.vm.os.cgroups.set_limit(self.cgroup, blocks)

    def cache_stats(self) -> Optional[PoolStats]:
        """GET_STATS for this container's hypervisor-cache pool."""
        return self.vm.os.cgroups.stats(self.cgroup)

    # -- accounting ----------------------------------------------------------------

    @property
    def anon_mb(self) -> float:
        return self.cgroup.anon_blocks * self.vm.block_bytes / MB

    @property
    def file_mb(self) -> float:
        return self.cgroup.file_blocks * self.vm.block_bytes / MB

    @property
    def swap_out_mb(self) -> float:
        return self.cgroup.swap_out_blocks * self.vm.block_bytes / MB

    @property
    def hvcache_mb(self) -> float:
        """Current hypervisor-cache occupancy of this container."""
        stats = self.cache_stats()
        if stats is None:
            return 0.0
        blocks = stats.mem_used_blocks + stats.ssd_used_blocks
        return blocks * self.vm.block_bytes / MB

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container {self.name!r} in {self.vm.name!r}>"


class VirtualMachine:
    """A guest VM registered with the host's hypervisor cache."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_mb: float,
        vcpus: int,
        block_bytes: int,
        disk,
        hvcache,
        vm_id: int,
        disk_base_block: int = 0,
        kernel_reserve_mb: float = 64.0,
        reclaim_rng=None,
        readahead_blocks: int = 0,
    ) -> None:
        self.env = env
        self.name = name
        self.memory_mb = memory_mb
        self.vcpus = vcpus
        self.block_bytes = block_bytes
        self.vm_id = vm_id
        self.disk_base_block = disk_base_block
        self.cleancache = CleancacheClient(env, hvcache, vm_id, block_bytes)
        self.os = GuestOS(
            env,
            name=name,
            memory_mb=memory_mb,
            block_bytes=block_bytes,
            disk=disk,
            cleancache=self.cleancache,
            disk_base_block=disk_base_block,
            kernel_reserve_mb=kernel_reserve_mb,
            reclaim_rng=reclaim_rng,
            readahead_blocks=readahead_blocks,
        )
        self.containers: Dict[str, Container] = {}

    def create_container(
        self,
        name: str,
        memory_limit_mb: float,
        policy: Optional[CachePolicy] = None,
    ) -> Container:
        """Boot a container (CREATE_CGROUP fires here)."""
        if name in self.containers:
            raise ValueError(f"container {name!r} already exists in {self.name!r}")
        blocks = max(1, int(memory_limit_mb * MB) // self.block_bytes)
        cgroup = self.os.cgroups.create(name, blocks, policy or CachePolicy.none())
        container = Container(self, cgroup)
        self.containers[name] = container
        return container

    def destroy_container(self, container: Container) -> None:
        """Shut a container down (DESTROY_CGROUP fires here).

        Resident pages charged to the container are dropped (its filesystem
        namespace goes away with it).
        """
        cgroup = container.cgroup
        # Drop this cgroup's file pages from the page cache.
        lru = self.os.pagecache.lrus.get(cgroup.cgroup_id)
        if lru:
            for key in list(lru):
                self.os.pagecache.remove(key)
            cgroup.file_blocks = 0
        self.os.cgroups.destroy(cgroup)
        del self.containers[container.name]

    def set_memory_mb(self, memory_mb: float, reclaim: bool = True) -> None:
        """Balloon the VM to a new memory size.

        Deflating (shrinking) immediately spawns a reclaim process that
        pushes the guest's disk cache toward the hypervisor cache — the
        ballooning usage the paper describes in §1.
        """
        if memory_mb <= 0:
            raise ValueError(f"memory must be positive, got {memory_mb}")
        old_blocks = self.os.memory_blocks
        reserve_blocks = (
            int(self.memory_mb * MB) // self.block_bytes - old_blocks
        )
        self.memory_mb = memory_mb
        new_blocks = max(1, int(memory_mb * MB) // self.block_bytes
                         - reserve_blocks)
        self.os.set_memory_blocks(new_blocks)
        if reclaim and new_blocks < old_blocks:
            self.env.process(self.os.reclaim_to_target(),
                             name=f"{self.name}-balloon")

    def container(self, name: str) -> Container:
        return self.containers[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VM {self.name!r} mem={self.memory_mb}MB containers={len(self.containers)}>"
