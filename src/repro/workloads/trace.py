"""Block-level trace recording and replay.

Useful for two things the paper's methodology implies but cannot ship
(production traces are proprietary): capturing the block streams our
synthetic workloads generate, and replaying externally-supplied traces
through the full cache stack.

Trace format: an in-memory list (or a text file, one record per line)::

    <t> <op> <inode> <block> <nblocks>

``op`` is one of ``r`` (read), ``w`` (write), ``s`` (sync write),
``a`` (anon touch; ``inode`` is unused, ``block`` is the page).
Replay preserves inter-arrival gaps (optionally time-scaled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, TextIO

from ..guest import Container, File
from .base import Workload

__all__ = ["TraceRecord", "TraceRecorder", "TraceReplayWorkload",
           "load_trace", "dump_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced operation."""

    time: float
    op: str  # r / w / s / a
    inode: int
    block: int
    nblocks: int

    def to_line(self) -> str:
        return f"{self.time:.6f} {self.op} {self.inode} {self.block} {self.nblocks}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.split()
        if len(parts) != 5:
            raise ValueError(f"malformed trace line: {line!r}")
        return cls(float(parts[0]), parts[1], int(parts[2]), int(parts[3]),
                   int(parts[4]))


def dump_trace(records: Iterable[TraceRecord], fh: TextIO) -> int:
    """Write records to a text file; returns the count."""
    count = 0
    for record in records:
        fh.write(record.to_line() + "\n")
        count += 1
    return count


def load_trace(fh: TextIO) -> List[TraceRecord]:
    """Parse a trace file (blank lines and ``#`` comments skipped)."""
    records = []
    for line in fh:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        records.append(TraceRecord.from_line(line))
    return records


class TraceRecorder:
    """Wraps a container's IO methods, recording every operation.

    Install with :meth:`attach`; the records accumulate in
    :attr:`records` with simulated timestamps.
    """

    def __init__(self, container: Container) -> None:
        self.container = container
        self.records: List[TraceRecord] = []
        self._installed = False

    def attach(self) -> None:
        if self._installed:
            return
        self._installed = True
        env = self.container.vm.env
        os_ = self.container.vm.os
        cgroup_id = self.container.cgroup.cgroup_id
        records = self.records
        orig_read = os_.read_file
        orig_write = os_.write_file
        orig_anon = os_.touch_anon

        def read_file(cgroup, file, start=0, nblocks=None):
            if cgroup.cgroup_id == cgroup_id:
                count = nblocks if nblocks is not None else file.nblocks - start
                records.append(TraceRecord(env.now, "r", file.inode, start,
                                           max(0, count)))
            result = yield from orig_read(cgroup, file, start, nblocks)
            return result

        def write_file(cgroup, file, start=0, nblocks=None, sync=False):
            if cgroup.cgroup_id == cgroup_id:
                count = nblocks if nblocks is not None else file.nblocks - start
                records.append(TraceRecord(env.now, "s" if sync else "w",
                                           file.inode, start, max(0, count)))
            result = yield from orig_write(cgroup, file, start, nblocks, sync)
            return result

        def touch_anon(cgroup, pages):
            pages = list(pages)
            if cgroup.cgroup_id == cgroup_id:
                for page in pages:
                    records.append(TraceRecord(env.now, "a", 0, page, 1))
            result = yield from orig_anon(cgroup, pages)
            return result

        os_.read_file = read_file
        os_.write_file = write_file
        os_.touch_anon = touch_anon


class TraceReplayWorkload(Workload):
    """Replays a trace against a container.

    Files referenced by the trace are materialized up front (sized to the
    largest block touched).  Inter-arrival gaps are preserved, scaled by
    ``time_scale`` (0 replays as fast as possible); the trace loops when
    exhausted so long experiments can run on short traces.
    """

    def __init__(
        self,
        records: List[TraceRecord],
        name: str = "trace-replay",
        time_scale: float = 1.0,
        loop: bool = True,
    ) -> None:
        super().__init__(name, threads=1)
        if not records:
            raise ValueError("cannot replay an empty trace")
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        self.records = records
        self.time_scale = time_scale
        self.loop = loop
        self._files = {}
        self._cursor = 0
        self._last_time: Optional[float] = None

    def prepare(self):
        sizes = {}
        for record in self.records:
            if record.op == "a":
                continue
            top = record.block + record.nblocks
            sizes[record.inode] = max(sizes.get(record.inode, 1), top)
        for inode, nblocks in sizes.items():
            self._files[inode] = self.container.create_file(
                nblocks, name=f"{self.name}-{inode}"
            )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        if self._cursor >= len(self.records):
            if not self.loop:
                # Trace exhausted: park this thread forever.
                yield self.env.timeout(float("1e18"))
                return (0, 0)
            self._cursor = 0
            self._last_time = None
        record = self.records[self._cursor]
        self._cursor += 1

        if self._last_time is not None and self.time_scale > 0:
            gap = max(0.0, record.time - self._last_time) * self.time_scale
            if gap > 0:
                yield self.env.timeout(gap)
        self._last_time = record.time

        block_bytes = self.container.vm.block_bytes
        if record.op == "a":
            yield from self.container.touch_anon([record.block])
            return (block_bytes, 0)
        file = self._files[record.inode]
        nblocks = min(record.nblocks, file.nblocks - record.block)
        if nblocks <= 0:
            return (0, 0)
        if record.op == "r":
            yield from self.container.read(file, record.block, nblocks)
            return (nblocks * block_bytes, 0)
        sync = record.op == "s"
        yield from self.container.write(file, record.block, nblocks, sync=sync)
        return (0, nblocks * block_bytes)
