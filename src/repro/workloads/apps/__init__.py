"""Application models used with YCSB (Redis, MySQL, MongoDB)."""

from .mongodb import MongoWorkload
from .mysql import MySQLWorkload
from .redis import RedisWorkload

__all__ = ["MongoWorkload", "MySQLWorkload", "RedisWorkload"]
