"""Redis model: an in-memory store living entirely in anonymous memory.

The paper's key diagnostic (Table 1): Redis cannot be helped by the
hypervisor cache at all — squeeze its cgroup and it swaps.  Every record
access touches the anon page holding the record; the working set is
``nrecords * record_kb``.
"""

from __future__ import annotations

from ..ycsb import YCSBWorkload

__all__ = ["RedisWorkload"]


class RedisWorkload(YCSBWorkload):
    """YCSB over an anonymous-memory key-value store."""

    def __init__(
        self,
        name: str = "redis",
        nrecords: int = 2_000_000,
        record_kb: float = 1.0,
        read_fraction: float = 0.95,
        threads: int = 2,
        cpu_us_per_op: float = 80.0,
    ) -> None:
        super().__init__(
            name,
            nrecords,
            read_fraction=read_fraction,
            threads=threads,
            cpu_us_per_op=cpu_us_per_op,
        )
        self.record_kb = record_kb
        self._records_per_page = 1  # set at start (needs block size)

    @property
    def working_set_mb(self) -> float:
        return self.nrecords * self.record_kb / 1024.0

    def start(self, container, streams) -> None:
        super().start(container, streams)
        block_kb = container.vm.block_bytes / 1024.0
        self._records_per_page = max(1, int(block_kb / self.record_kb))

    def _page_of(self, key: int) -> int:
        return key // self._records_per_page

    def do_read(self, key: int):
        yield from self.container.touch_anon([self._page_of(key)])
        return (int(self.record_kb * 1024), 0)

    def do_update(self, key: int):
        # Updates touch the same page (in-place value rewrite).
        yield from self.container.touch_anon([self._page_of(key)])
        return (0, int(self.record_kb * 1024))
