"""MongoDB model: an mmap-style store — all data lives in *file* pages.

The opposite diagnostic pole from Redis (Table 1): the page cache and the
hypervisor cache together form one big cache for Mongo's data files, so
performance tracks the *combined* cache size and is insensitive to how
memory is split between the VM and the hypervisor cache (Figure 3's flat
MongoDB line).
"""

from __future__ import annotations

from typing import Optional

from ...guest import File
from ..ycsb import YCSBWorkload

__all__ = ["MongoWorkload"]


class MongoWorkload(YCSBWorkload):
    """YCSB over a file-backed (mmap) document store."""

    def __init__(
        self,
        name: str = "mongodb",
        nrecords: int = 2_000_000,
        record_kb: float = 1.0,
        read_fraction: float = 0.95,
        threads: int = 2,
        cpu_us_per_op: float = 120.0,
        journal_every: int = 200,
    ) -> None:
        super().__init__(
            name,
            nrecords,
            read_fraction=read_fraction,
            threads=threads,
            cpu_us_per_op=cpu_us_per_op,
        )
        self.record_kb = record_kb
        self.journal_every = journal_every
        self._data: Optional[File] = None
        self._journal: Optional[File] = None
        self._records_per_block = 1
        self._since_journal = 0

    @property
    def dataset_mb(self) -> float:
        return self.nrecords * self.record_kb / 1024.0

    def prepare(self):
        block_bytes = self.container.vm.block_bytes
        self._records_per_block = max(1, int(block_bytes / (self.record_kb * 1024)))
        nblocks = max(1, -(-self.nrecords // self._records_per_block))
        self._data = self.container.create_file(nblocks, name=f"{self.name}-data")
        journal_blocks = max(16, (64 << 20) // block_bytes)
        self._journal = self.container.create_file(
            1, name=f"{self.name}-journal", append_slack=journal_blocks
        )
        return
        yield  # pragma: no cover

    def _block_of(self, key: int) -> int:
        return key // self._records_per_block

    def do_read(self, key: int):
        yield from self.container.read(self._data, self._block_of(key), 1)
        return (int(self.record_kb * 1024), 0)

    def do_update(self, key: int):
        yield from self.container.write(self._data, self._block_of(key), 1)
        self._since_journal += 1
        if self._since_journal >= self.journal_every:
            self._since_journal = 0
            yield from self.container.append(self._journal, 1, sync=True)
        return (0, int(self.record_kb * 1024))
