"""MySQL/InnoDB model: anonymous buffer pool over file-backed data,
with a durable redo log (fsync on commit).

Captures the paper's hybrid diagnostic: MySQL needs anonymous memory for
the buffer pool (swaps under cgroup pressure, like Redis) *and* does file
IO on pool misses (where the hypervisor cache can help a little).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ...guest import File
from ..ycsb import YCSBWorkload

__all__ = ["MySQLWorkload"]


class MySQLWorkload(YCSBWorkload):
    """YCSB over a buffer-pool database."""

    def __init__(
        self,
        name: str = "mysql",
        nrecords: int = 2_000_000,
        record_kb: float = 1.0,
        buffer_pool_mb: float = 1024.0,
        read_fraction: float = 0.5,
        threads: int = 2,
        cpu_us_per_op: float = 150.0,
        commit_every: int = 1,
    ) -> None:
        super().__init__(
            name,
            nrecords,
            read_fraction=read_fraction,
            threads=threads,
            cpu_us_per_op=cpu_us_per_op,
        )
        self.record_kb = record_kb
        self.buffer_pool_mb = buffer_pool_mb
        self.commit_every = max(1, commit_every)
        self._data: Optional[File] = None
        self._redo: Optional[File] = None
        #: data block -> buffer-pool slot (anon page), LRU ordered.
        self._pool: "OrderedDict[int, int]" = OrderedDict()
        self._free_slots: list = []
        self._pool_slots = 0
        self._records_per_block = 1
        self._uncommitted = 0

    @property
    def dataset_mb(self) -> float:
        return self.nrecords * self.record_kb / 1024.0

    def prepare(self):
        block_bytes = self.container.vm.block_bytes
        self._records_per_block = max(1, int(block_bytes / (self.record_kb * 1024)))
        nblocks = max(1, -(-self.nrecords // self._records_per_block))
        self._data = self.container.create_file(nblocks, name=f"{self.name}-ibd")
        redo_blocks = max(16, (128 << 20) // block_bytes)
        self._redo = self.container.create_file(
            1, name=f"{self.name}-redo", append_slack=redo_blocks
        )
        self._pool_slots = max(8, int(self.buffer_pool_mb * (1 << 20)) // block_bytes)
        self._free_slots = list(range(self._pool_slots))
        return
        yield  # pragma: no cover

    def _block_of(self, key: int) -> int:
        return key // self._records_per_block

    def _pool_access(self, block: int):
        """Touch the buffer-pool page for ``block``; miss reads the data file.

        The pool page is *anonymous* memory: if the cgroup swapped it out,
        the touch faults it back in (that is MySQL's pain under squeeze).
        """
        slot = self._pool.get(block)
        if slot is not None:
            self._pool.move_to_end(block)
            yield from self.container.touch_anon([slot])
            return False
        # Miss: find a slot (evicting the LRU mapping) and read the block.
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            _, slot = self._pool.popitem(last=False)
        self._pool[block] = slot
        yield from self.container.touch_anon([slot])
        yield from self.container.read(self._data, block, 1)
        return True

    def do_read(self, key: int):
        yield from self._pool_access(self._block_of(key))
        return (int(self.record_kb * 1024), 0)

    def do_update(self, key: int):
        yield from self._pool_access(self._block_of(key))
        self._uncommitted += 1
        if self._uncommitted >= self.commit_every:
            self._uncommitted = 0
            # Commit: append to the redo log and fsync it (durability).
            yield from self.container.append(self._redo, 1, sync=True)
        return (0, int(self.record_kb * 1024))
