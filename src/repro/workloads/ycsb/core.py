"""YCSB-style key-value workload machinery.

Provides the Zipfian request distribution and the read/update op mix; the
data-store *behaviour* (where records live: anon memory, buffer pool,
mmap'd files) is supplied by the application models in
:mod:`repro.workloads.apps`.
"""

from __future__ import annotations


from ...simkernel import zipf_ranks
from ..base import Workload

__all__ = ["YCSBWorkload"]


class YCSBWorkload(Workload):
    """Base for YCSB-driven data stores.

    Subclasses implement :meth:`do_read` / :meth:`do_update` (generators)
    over ``nrecords`` records; this class draws keys (Zipfian, YCSB's
    default ``theta = 0.99``) and applies the read fraction.
    """

    def __init__(
        self,
        name: str,
        nrecords: int,
        read_fraction: float = 0.95,
        zipf_theta: float = 0.99,
        threads: int = 2,
        cpu_us_per_op: float = 80.0,
    ) -> None:
        super().__init__(name, threads)
        if not (0.0 <= read_fraction <= 1.0):
            raise ValueError(f"read_fraction must be in [0,1], got {read_fraction}")
        self.nrecords = nrecords
        self.read_fraction = read_fraction
        self.zipf_theta = zipf_theta
        self.cpu_us_per_op = cpu_us_per_op
        self._zipf = None
        self.reads = 0
        self.updates = 0

    def start(self, container, streams) -> None:
        super().start(container, streams)
        self._zipf = zipf_ranks(self.rng, self.nrecords, self.zipf_theta)

    def next_key(self) -> int:
        """Draw the next record key (Zipfian rank, scattered).

        YCSB scatters ranks over the keyspace with an FNV hash so the hot
        records are not physically adjacent; we do the same so hot keys
        spread across pages/blocks.
        """
        rank = self._zipf()
        return _fnv_scatter(rank) % self.nrecords

    def run_op(self, tid: int):
        key = self.next_key()
        if self.rng.random() < self.read_fraction:
            self.reads += 1
            stats = yield from self.do_read(key)
        else:
            self.updates += 1
            stats = yield from self.do_update(key)
        if self.cpu_us_per_op > 0:
            yield self.env.timeout(self.cpu_us_per_op * 1e-6)
        return stats

    # -- to implement by app models ------------------------------------------

    def do_read(self, key: int):
        raise NotImplementedError
        yield  # pragma: no cover

    def do_update(self, key: int):
        raise NotImplementedError
        yield  # pragma: no cover


def _fnv_scatter(value: int) -> int:
    """64-bit FNV-1a of an int (YCSB's key-scattering hash)."""
    prime = 0x100000001B3
    state = 0xCBF29CE484222325
    for _ in range(8):
        state ^= value & 0xFF
        state = (state * prime) % (1 << 64)
        value >>= 8
    return state
