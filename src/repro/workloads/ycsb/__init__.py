"""YCSB-style workload generator (Zipfian keys, read/update mixes)."""

from .core import YCSBWorkload

__all__ = ["YCSBWorkload"]
