"""Workload framework: threaded op loops with throughput/latency accounting.

A workload binds to a :class:`~repro.guest.vm.Container`, spawns one
simulation process per thread, and counts completed operations, bytes
moved, and per-op latencies.  Experiments snapshot the counters at
measurement-window boundaries to compute rates (skipping warm-up).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from ..guest import Container
from ..metrics import SummaryStat
from ..simkernel import Environment, Interrupt, Process, RandomStreams

__all__ = ["Workload", "WorkloadCounters", "CounterSnapshot"]


class WorkloadCounters:
    """Cumulative workload-side counters."""

    __slots__ = ("ops", "bytes_read", "bytes_written", "latency")

    def __init__(self) -> None:
        self.ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.latency = SummaryStat("op-latency")

    def op_done(self, latency: float, bytes_read: int = 0, bytes_written: int = 0) -> None:
        self.ops += 1
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.latency.add(latency)


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time copy of the counters for interval rates."""

    time: float
    ops: int
    bytes_read: int
    bytes_written: int
    latency_total: float
    latency_count: int

    def rates_since(self, earlier: "CounterSnapshot") -> dict:
        """ops/s, MB/s, and mean latency between two snapshots."""
        dt = self.time - earlier.time
        if dt <= 0:
            return {"ops_per_s": 0.0, "mb_per_s": 0.0, "mean_latency_ms": 0.0}
        ops = self.ops - earlier.ops
        total_bytes = (
            self.bytes_read - earlier.bytes_read
            + self.bytes_written - earlier.bytes_written
        )
        lat_total = self.latency_total - earlier.latency_total
        lat_count = self.latency_count - earlier.latency_count
        return {
            "ops_per_s": ops / dt,
            "mb_per_s": total_bytes / dt / (1024.0 * 1024.0),
            "mean_latency_ms": (lat_total / lat_count * 1000.0) if lat_count else 0.0,
        }


class Workload(abc.ABC):
    """Base class for all workload models.

    ``target_ops_per_s`` turns the default closed loop into a rate-limited
    open-ish loop (YCSB's target-throughput mode): threads pace themselves
    so the aggregate rate does not exceed the target (it may fall below it
    when the system cannot keep up).
    """

    def __init__(self, name: str, threads: int = 1,
                 target_ops_per_s: float = 0.0) -> None:
        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        if target_ops_per_s < 0:
            raise ValueError(
                f"target rate must be non-negative, got {target_ops_per_s}"
            )
        self.name = name
        self.threads = threads
        self.target_ops_per_s = target_ops_per_s
        self.counters = WorkloadCounters()
        self.container: Optional[Container] = None
        self.env: Optional[Environment] = None
        self.rng = None
        self._processes: List[Process] = []
        self._prepared = False

    # -- lifecycle ------------------------------------------------------------

    def start(self, container: Container, streams: RandomStreams) -> None:
        """Bind to a container and launch all threads."""
        self.container = container
        self.env = container.vm.env
        self.rng = streams.stream(f"workload.{self.name}")
        self._ready = self.env.event()
        for tid in range(self.threads):
            process = self.env.process(
                self._thread_main(tid), name=f"{self.name}-t{tid}"
            )
            self._processes.append(process)

    def stop(self) -> None:
        """Interrupt every thread (used by dynamic experiments)."""
        for process in self._processes:
            if process.is_alive:
                process.interrupt("stop")
        self._processes.clear()

    def _thread_main(self, tid: int):
        try:
            if tid == 0:
                yield from self.prepare()
                self._prepared = True
                self._ready.succeed()
            elif not self._prepared:
                yield self._ready
            period = (
                self.threads / self.target_ops_per_s
                if self.target_ops_per_s > 0 else 0.0
            )
            while True:
                start = self.env.now
                stats = yield from self.run_op(tid)
                latency = self.env.now - start
                bytes_read, bytes_written = stats if stats else (0, 0)
                self.counters.op_done(latency, bytes_read, bytes_written)
                if period > latency:
                    # Rate limiting: wait out the rest of this op's slot.
                    yield self.env.timeout(period - latency)
        except Interrupt:
            return

    # -- accounting --------------------------------------------------------------

    def snapshot(self) -> CounterSnapshot:
        """Capture the counters for later interval-rate computation."""
        counters = self.counters
        return CounterSnapshot(
            time=self.env.now if self.env is not None else 0.0,
            ops=counters.ops,
            bytes_read=counters.bytes_read,
            bytes_written=counters.bytes_written,
            latency_total=counters.latency.total,
            latency_count=counters.latency.count,
        )

    # -- to implement ----------------------------------------------------------------

    def prepare(self):
        """One-time dataset setup (runs in the first thread).

        Default: nothing.  Generators may yield to lay data on disk.
        """
        return
        yield  # pragma: no cover - makes this a generator

    @abc.abstractmethod
    def run_op(self, tid: int):
        """One operation; returns ``(bytes_read, bytes_written)``."""
