"""The four Filebench profiles the paper evaluates with.

Each is an operation-loop approximation of the corresponding Filebench
personality, preserving what matters for cache behaviour: dataset size,
read/write mix, whole-file vs streaming access, fsync pressure, and churn.

Defaults are sized for the paper's experiments (containers with ~1 GB
memory limits and a multi-GB hypervisor cache); every knob is a
constructor argument so experiments can scale them.
"""

from __future__ import annotations

from typing import Optional

from ..base import Workload
from .fileset import Fileset

__all__ = [
    "WebserverWorkload",
    "WebproxyWorkload",
    "VarmailWorkload",
    "VideoserverWorkload",
]


class WebserverWorkload(Workload):
    """Filebench ``webserver``: whole-file reads of many small files plus a
    log append.  Read-mostly; the classic page-cache-friendly workload."""

    def __init__(
        self,
        name: str = "webserver",
        nfiles: int = 4000,
        mean_size_kb: float = 128.0,
        threads: int = 2,
        reads_per_op: int = 10,
        log_append_blocks: int = 1,
        cpu_think_ms: float = 1.0,
    ) -> None:
        super().__init__(name, threads)
        self.nfiles = nfiles
        self.mean_size_kb = mean_size_kb
        self.reads_per_op = reads_per_op
        self.log_append_blocks = log_append_blocks
        self.cpu_think_ms = cpu_think_ms
        self.fileset: Optional[Fileset] = None
        self._log = None

    def prepare(self):
        self.fileset = Fileset(
            self.container, self.nfiles, self.mean_size_kb, self.rng,
            name=f"{self.name}-files",
        )
        # Circular log: 16 MB reserved so appends wrap instead of growing.
        log_blocks = max(16, (16 << 20) // self.container.vm.block_bytes)
        self._log = self.container.create_file(
            1, name=f"{self.name}-log", append_slack=log_blocks
        )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        bytes_read = 0
        for _ in range(self.reads_per_op):
            file = self.fileset.pick()
            yield from self.container.read(file)
            bytes_read += file.nblocks * block_bytes
        yield from self.container.append(self._log, self.log_append_blocks)
        bytes_written = self.log_append_blocks * block_bytes
        if self.cpu_think_ms > 0:
            yield self.env.timeout(self.cpu_think_ms * 1e-3)
        return (bytes_read, bytes_written)


class WebproxyWorkload(Workload):
    """Filebench ``webproxy``: read-heavy with object churn (delete +
    re-create) and a log append — a caching proxy's disk cache."""

    def __init__(
        self,
        name: str = "webproxy",
        nfiles: int = 4000,
        mean_size_kb: float = 64.0,
        threads: int = 2,
        reads_per_op: int = 5,
        cpu_think_ms: float = 1.0,
    ) -> None:
        super().__init__(name, threads)
        self.nfiles = nfiles
        self.mean_size_kb = mean_size_kb
        self.reads_per_op = reads_per_op
        self.cpu_think_ms = cpu_think_ms
        self.fileset: Optional[Fileset] = None
        self._log = None

    def prepare(self):
        self.fileset = Fileset(
            self.container, self.nfiles, self.mean_size_kb, self.rng,
            name=f"{self.name}-objects",
        )
        log_blocks = max(16, (16 << 20) // self.container.vm.block_bytes)
        self._log = self.container.create_file(
            1, name=f"{self.name}-log", append_slack=log_blocks
        )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        # Replace one cached object: delete + create + write its content.
        old, new = self.fileset.replace()
        yield from self.container.delete(old)
        yield from self.container.write(new)
        bytes_written = new.nblocks * block_bytes
        bytes_read = 0
        for _ in range(self.reads_per_op):
            file = self.fileset.pick()
            yield from self.container.read(file)
            bytes_read += file.nblocks * block_bytes
        yield from self.container.append(self._log, 1)
        bytes_written += block_bytes
        if self.cpu_think_ms > 0:
            yield self.env.timeout(self.cpu_think_ms * 1e-3)
        return (bytes_read, bytes_written)


class VarmailWorkload(Workload):
    """Filebench ``varmail``: the mail-server profile — small files,
    create/delete churn, and fsync after every append (the disk-bound one)."""

    def __init__(
        self,
        name: str = "mail",
        nfiles: int = 4000,
        mean_size_kb: float = 32.0,
        threads: int = 2,
        cpu_think_ms: float = 0.5,
    ) -> None:
        super().__init__(name, threads)
        self.nfiles = nfiles
        self.mean_size_kb = mean_size_kb
        self.cpu_think_ms = cpu_think_ms
        self.fileset: Optional[Fileset] = None

    def prepare(self):
        self.fileset = Fileset(
            self.container, self.nfiles, self.mean_size_kb, self.rng,
            name=f"{self.name}-mbox",
        )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        bytes_read = 0
        bytes_written = 0
        # delete one message file, create a replacement and fsync it
        old, new = self.fileset.replace()
        yield from self.container.delete(old)
        yield from self.container.write(new, sync=True)
        bytes_written += new.nblocks * block_bytes
        # read a message then append-and-fsync to it (reply)
        file = self.fileset.pick()
        yield from self.container.read(file)
        bytes_read += file.nblocks * block_bytes
        yield from self.container.write(file, 0, 1, sync=True)
        bytes_written += block_bytes
        # read another message whole
        file2 = self.fileset.pick()
        yield from self.container.read(file2)
        bytes_read += file2.nblocks * block_bytes
        if self.cpu_think_ms > 0:
            yield self.env.timeout(self.cpu_think_ms * 1e-3)
        return (bytes_read, bytes_written)


class VideoserverWorkload(Workload):
    """Filebench ``videoserver``: streaming sequential reads of large
    files, plus a writer refreshing the passive set.  The IO-volume hog.

    One *op* is one streamed chunk (``chunk_blocks``), so op latency is a
    per-request service time and MB/s is the headline number.
    """

    def __init__(
        self,
        name: str = "videoserver",
        nvideos: int = 12,
        video_mb: float = 256.0,
        threads: int = 4,
        chunk_blocks: int = 16,
        stream_pace_ms: float = 1.0,
        writer_interval_s: float = 60.0,
        popularity_theta: float = 0.9,
    ) -> None:
        super().__init__(name, threads)
        self.nvideos = nvideos
        self.video_mb = video_mb
        self.chunk_blocks = chunk_blocks
        self.stream_pace_ms = stream_pace_ms
        self.writer_interval_s = writer_interval_s
        #: Zipf skew of video popularity (0 disables: uniform choice).
        self.popularity_theta = popularity_theta
        self.videos = []
        self._positions = {}
        self._writer_proc = None
        self._popularity = None

    def prepare(self):
        block_bytes = self.container.vm.block_bytes
        blocks = max(1, int(self.video_mb * (1 << 20)) // block_bytes)
        self.videos = [
            self.container.create_file(blocks, name=f"{self.name}-vid{i}")
            for i in range(self.nvideos)
        ]
        if self.popularity_theta > 0 and self.nvideos > 1:
            from ...simkernel import zipf_ranks

            self._popularity = zipf_ranks(
                self.rng, self.nvideos, self.popularity_theta
            )
        if self.writer_interval_s > 0:
            self._writer_proc = self.env.process(
                self._writer(), name=f"{self.name}-writer"
            )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        state = self._positions.get(tid)
        if state is None or state[1] >= state[0].nblocks:
            if self._popularity is not None:
                video = self.videos[self._popularity() % len(self.videos)]
            else:
                video = self.rng.choice(self.videos)
            state = [video, 0]
            self._positions[tid] = state
        video, position = state
        nblocks = min(self.chunk_blocks, video.nblocks - position)
        yield from self.container.read(video, position, nblocks)
        state[1] = position + nblocks
        if self.stream_pace_ms > 0:
            yield self.env.timeout(self.stream_pace_ms * 1e-3)
        return (nblocks * block_bytes, 0)

    def _writer(self):
        """Background ingest: periodically write a fresh (passive) video."""
        from ...simkernel import Interrupt

        block_bytes = self.container.vm.block_bytes
        blocks = max(1, int(self.video_mb * (1 << 20)) // block_bytes)
        serial = 0
        try:
            while True:
                yield self.env.timeout(self.writer_interval_s)
                serial += 1
                fresh = self.container.create_file(
                    blocks, name=f"{self.name}-ingest{serial}"
                )
                # Buffered streaming write in chunks.
                position = 0
                while position < blocks:
                    n = min(self.chunk_blocks, blocks - position)
                    yield from self.container.write(fresh, position, n)
                    position += n
                    yield self.env.timeout(self.stream_pace_ms * 1e-3)
                self.counters.bytes_written += blocks * block_bytes
                # Retire it again: the passive set does not accumulate.
                yield from self.container.delete(fresh)
        except Interrupt:
            return

    def stop(self) -> None:
        if self._writer_proc is not None and self._writer_proc.is_alive:
            self._writer_proc.interrupt("stop")
            self._writer_proc = None
        super().stop()
