"""Additional Filebench personalities beyond the four the paper uses.

``fileserver`` and ``oltp`` are the other two canonical Filebench
profiles; they broaden the workload library for users building their own
derivative-cloud scenarios (and give the adaptive controller more
behaviour classes to tell apart).
"""

from __future__ import annotations

from typing import Optional

from ..base import Workload
from .fileset import Fileset

__all__ = ["FileserverWorkload", "OLTPWorkload"]


class FileserverWorkload(Workload):
    """Filebench ``fileserver``: a mixed read/write NFS-style server.

    Per op: create+write a file, read a whole file, append to another,
    delete one, stat-like touch (modelled as a 1-block read).  Write-heavier
    than webserver, colder reads than varmail, no fsync pressure.
    """

    def __init__(
        self,
        name: str = "fileserver",
        nfiles: int = 8000,
        mean_size_kb: float = 128.0,
        threads: int = 2,
        cpu_think_ms: float = 1.0,
    ) -> None:
        super().__init__(name, threads)
        self.nfiles = nfiles
        self.mean_size_kb = mean_size_kb
        self.cpu_think_ms = cpu_think_ms
        self.fileset: Optional[Fileset] = None

    def prepare(self):
        self.fileset = Fileset(
            self.container, self.nfiles, self.mean_size_kb, self.rng,
            name=f"{self.name}-files",
        )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        bytes_read = 0
        bytes_written = 0
        # create + write a replacement file
        old, new = self.fileset.replace()
        yield from self.container.delete(old)
        yield from self.container.write(new)
        bytes_written += new.nblocks * block_bytes
        # whole-file read
        file = self.fileset.pick()
        yield from self.container.read(file)
        bytes_read += file.nblocks * block_bytes
        # append to another
        target = self.fileset.pick()
        yield from self.container.write(target, 0, 1)
        bytes_written += block_bytes
        # stat-ish touch (first block)
        probe = self.fileset.pick()
        yield from self.container.read(probe, 0, 1)
        bytes_read += block_bytes
        if self.cpu_think_ms > 0:
            yield self.env.timeout(self.cpu_think_ms * 1e-3)
        return (bytes_read, bytes_written)


class OLTPWorkload(Workload):
    """Filebench ``oltp``: database-style small random IO on one big file
    plus a synchronous log writer.

    Reader threads issue small random reads against the datafile; every
    op also dirties a block, and a commit (log append + fsync) lands
    every ``commit_every`` ops — the latency-sensitive profile.
    """

    def __init__(
        self,
        name: str = "oltp",
        datafile_mb: float = 2048.0,
        threads: int = 4,
        read_blocks: int = 1,
        write_fraction: float = 0.3,
        commit_every: int = 4,
        cpu_think_ms: float = 0.2,
    ) -> None:
        super().__init__(name, threads)
        if not (0.0 <= write_fraction <= 1.0):
            raise ValueError(f"write_fraction must be in [0,1]: {write_fraction}")
        self.datafile_mb = datafile_mb
        self.read_blocks = read_blocks
        self.write_fraction = write_fraction
        self.commit_every = max(1, commit_every)
        self.cpu_think_ms = cpu_think_ms
        self._datafile = None
        self._log = None
        self._since_commit = 0

    def prepare(self):
        block_bytes = self.container.vm.block_bytes
        nblocks = max(1, int(self.datafile_mb * (1 << 20)) // block_bytes)
        self._datafile = self.container.create_file(
            nblocks, name=f"{self.name}-datafile"
        )
        log_blocks = max(16, (64 << 20) // block_bytes)
        self._log = self.container.create_file(
            1, name=f"{self.name}-log", append_slack=log_blocks
        )
        return
        yield  # pragma: no cover

    def run_op(self, tid: int):
        block_bytes = self.container.vm.block_bytes
        data = self._datafile
        start = self.rng.randrange(max(1, data.nblocks - self.read_blocks))
        yield from self.container.read(data, start, self.read_blocks)
        bytes_read = self.read_blocks * block_bytes
        bytes_written = 0
        if self.rng.random() < self.write_fraction:
            block = self.rng.randrange(data.nblocks)
            yield from self.container.write(data, block, 1)
            bytes_written += block_bytes
            self._since_commit += 1
            if self._since_commit >= self.commit_every:
                self._since_commit = 0
                yield from self.container.append(self._log, 1, sync=True)
                bytes_written += block_bytes
        if self.cpu_think_ms > 0:
            yield self.env.timeout(self.cpu_think_ms * 1e-3)
        return (bytes_read, bytes_written)
