"""Filebench-style workload profiles (webserver, webproxy, varmail, videoserver)."""

from .extra_profiles import FileserverWorkload, OLTPWorkload
from .fileset import Fileset
from .profiles import (
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)

__all__ = [
    "FileserverWorkload",
    "Fileset",
    "OLTPWorkload",
    "VarmailWorkload",
    "VideoserverWorkload",
    "WebproxyWorkload",
    "WebserverWorkload",
]
