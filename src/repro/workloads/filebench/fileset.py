"""Filesets: populations of files with a size distribution (Filebench-style)."""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ...guest import Container, File

__all__ = ["Fileset"]


class Fileset:
    """A set of files owned by one container.

    Sizes are drawn from a gamma distribution around ``mean_size_kb``
    (Filebench's default shape) and rounded up to whole blocks.
    """

    def __init__(
        self,
        container: Container,
        nfiles: int,
        mean_size_kb: float,
        rng: random.Random,
        name: str = "fileset",
        gamma_shape: float = 1.5,
    ) -> None:
        if nfiles < 1:
            raise ValueError(f"need at least one file, got {nfiles}")
        self.container = container
        self.block_bytes = container.vm.block_bytes
        self.rng = rng
        self.name = name
        self.mean_size_kb = mean_size_kb
        self.gamma_shape = gamma_shape
        self.files: List[File] = [
            self._make_file(f"{name}.{i}") for i in range(nfiles)
        ]
        self._serial = nfiles

    def _sample_blocks(self) -> int:
        scale = self.mean_size_kb / self.gamma_shape
        size_kb = max(1.0, self.rng.gammavariate(self.gamma_shape, scale))
        return max(1, math.ceil(size_kb * 1024 / self.block_bytes))

    def _make_file(self, name: str) -> File:
        return self.container.create_file(
            self._sample_blocks(), name=name, append_slack=0
        )

    # -- operations -----------------------------------------------------------

    def pick(self) -> File:
        """A uniformly random live file."""
        return self.rng.choice(self.files)

    def replace(self) -> Tuple[File, File]:
        """Delete a random file and create a fresh one (proxy/mail churn).

        Returns ``(old, new)``; the caller must run the guest-OS delete for
        ``old`` (a generator) itself.
        """
        idx = self.rng.randrange(len(self.files))
        old = self.files[idx]
        self._serial += 1
        new = self._make_file(f"{self.name}.{self._serial}")
        self.files[idx] = new
        return old, new

    @property
    def total_blocks(self) -> int:
        return sum(file.nblocks for file in self.files)

    @property
    def total_mb(self) -> float:
        return self.total_blocks * self.block_bytes / (1024.0 * 1024.0)

    def __len__(self) -> int:
        return len(self.files)
