"""Workload models: Filebench profiles, YCSB, and application models."""

from .apps import MongoWorkload, MySQLWorkload, RedisWorkload
from .base import CounterSnapshot, Workload, WorkloadCounters
from .filebench import (
    FileserverWorkload,
    Fileset,
    OLTPWorkload,
    VarmailWorkload,
    VideoserverWorkload,
    WebproxyWorkload,
    WebserverWorkload,
)
from .trace import (
    TraceRecord,
    TraceRecorder,
    TraceReplayWorkload,
    dump_trace,
    load_trace,
)
from .ycsb import YCSBWorkload

__all__ = [
    "CounterSnapshot",
    "FileserverWorkload",
    "Fileset",
    "OLTPWorkload",
    "MongoWorkload",
    "MySQLWorkload",
    "RedisWorkload",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayWorkload",
    "dump_trace",
    "load_trace",
    "VarmailWorkload",
    "VideoserverWorkload",
    "WebproxyWorkload",
    "WebserverWorkload",
    "Workload",
    "WorkloadCounters",
    "YCSBWorkload",
]
