"""Deterministic named random-number streams.

Every source of randomness in the simulator draws from a named child stream
of a single master seed, so that (a) whole experiments are reproducible
bit-for-bit and (b) changing how one component consumes randomness does not
perturb any other component.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "zipf_ranks"]


class RandomStreams:
    """Factory of independent, deterministic :class:`random.Random` streams.

    Child streams are derived by hashing ``(master_seed, name)`` so the
    mapping is stable across runs and across stream-creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        child = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = child
        return child

    def drop(self, name: str) -> None:
        """Forget the cached stream for ``name``.

        Used when the named consumer is destroyed (e.g. a VM): the cache
        entry would otherwise live for the whole run.  Because streams are
        derived from ``(seed, name)`` alone, a later consumer reusing the
        name gets an identically-seeded fresh stream — the stable mapping
        the class guarantees — rather than a continuation of the dead
        consumer's sequence.
        """
        self._streams.pop(name, None)

    def spawn(self, name: str) -> "RandomStreams":
        """A sub-factory whose streams are namespaced under ``name``."""
        digest = hashlib.sha256(f"{self.seed}//{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def zipf_ranks(rng: random.Random, n: int, theta: float = 0.99):
    """A sampler of Zipfian ranks in ``[0, n)`` (YCSB's default skew).

    Returns a zero-argument callable.  Uses the classical Gray et al.
    rejection-free inverse-CDF approximation used by YCSB itself, so the
    hot-spot structure matches YCSB workloads.
    """
    if n < 1:
        raise ValueError(f"need at least one item, got {n}")
    if not (0.0 < theta < 1.0):
        raise ValueError(f"theta must be in (0, 1), got {theta}")

    zetan = _zeta(n, theta)
    if n <= 2:
        # The eta interpolation degenerates for n <= 2; fall back to the
        # exact two-point inverse CDF.
        head = 1.0 / zetan

        def sample_small() -> int:
            return 0 if (n == 1 or rng.random() < head) else 1

        return sample_small
    zeta2 = _zeta(2, theta)
    alpha = 1.0 / (1.0 - theta)
    eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / zetan)

    def sample() -> int:
        u = rng.random()
        uz = u * zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** theta:
            return 1
        return int(n * (eta * u - eta + 1.0) ** alpha)

    return sample


def _zeta(n: int, theta: float) -> float:
    """Partial zeta sum ``sum(1/i**theta for i in 1..n)``.

    Exact for small ``n``; for large ``n`` an Euler–Maclaurin tail keeps
    construction O(1)-ish without visible error in sampling behaviour.
    """
    cutoff = 10000
    if n <= cutoff:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))
    head = sum(1.0 / (i ** theta) for i in range(1, cutoff + 1))
    # Integral approximation of the tail plus trapezoidal correction.
    tail = ((n ** (1.0 - theta)) - (cutoff ** (1.0 - theta))) / (1.0 - theta)
    correction = 0.5 * (1.0 / (n ** theta) - 1.0 / (cutoff ** theta))
    return head + tail + correction
