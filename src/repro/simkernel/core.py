"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from itertools import count
from typing import Any, Generator, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .timeline import CalendarTimeline

__all__ = ["Environment", "StopSimulation", "EmptySchedule"]

#: Scheduling priorities: URGENT events (process bootstraps, interrupts)
#: run before NORMAL events scheduled for the same instant.
URGENT = 0
NORMAL = 1


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at a target event."""


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before the stop condition."""


class Environment:
    """Coordinates simulated time and event execution.

    Time is a float; the unit is defined by convention (this project uses
    **seconds** everywhere).  Typical use::

        env = Environment()
        env.process(some_generator())
        env.run(until=3600)
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._timeline = CalendarTimeline(self._now)
        #: Bound push method; the event classes enqueue through this to
        #: skip two attribute hops on the hottest call in the kernel.
        self._push = self._timeline.push
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, list(events))

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, list(events))

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        self._push((self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._timeline.peek_time()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        entry = self._timeline.pop()
        if entry is None:
            raise EmptySchedule()
        self._now, _, _, event = entry

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks:
            for callback in callbacks:
                callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else RuntimeError(exc)

    # -- run loop -------------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is empty;
        * a number — run until simulated time reaches it exactly;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
            else:
                stop_time = float(until)
                if stop_time < self._now:
                    raise ValueError(
                        f"until ({stop_time}) must not be before current "
                        f"time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                # NORMAL priority so that all URGENT work at `until` runs.
                self.schedule(stop_event, delay=stop_time - self._now)
            stop_event.callbacks.append(_stop_callback)

        # The loop below is `step()` inlined: the per-event work is tiny
        # (often one callback), so the method call and attribute lookups
        # per event dominate.  The timeline's pop is bound to a local and
        # signals exhaustion with None, which is cheaper to test per event
        # than catching IndexError.
        pop = self._timeline.pop
        try:
            while True:
                entry = pop()
                if entry is None:
                    break
                self._now, _, _, event = entry

                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks:
                    for callback in callbacks:
                        callback(event)

                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else RuntimeError(exc)
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None

        # The schedule ran dry before the stop condition.
        if stop_event is not None and not stop_event.processed:
            if stop_time is not None:
                # Nothing left to simulate: just advance the clock.
                self._now = stop_time
                return None
            raise RuntimeError(
                "run() stop event was never triggered and the schedule is empty"
            )
        return None


def _stop_callback(event: Event) -> None:
    if event.ok:
        raise StopSimulation(event.value)
    raise event.value
