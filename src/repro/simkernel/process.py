"""Simulation processes: generators driven by the environment.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.simkernel.events.Event`; the process is resumed with the
event's value once it triggers (or has the event's exception thrown into
it for failed events).  A process is itself an event that triggers when
the generator returns, which lets processes wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, Interrupt, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Besides being awaitable like any event, a process exposes
    :meth:`interrupt`, which raises :class:`Interrupt` inside the
    generator at its current wait point.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound methods for the resume hot path (one attribute hop saved
        # per generator advance, ~1M+ advances per simulated minute).
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process currently waits on (``None`` when running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick-start the process at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """Event the process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is an error; interrupting a process
        at the exact moment its awaited event fires delivers the interrupt
        first (the awaited event's value is lost to the process).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self.name} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self.name} is not suspended; cannot interrupt")
        # Detach from the awaited event and schedule the interrupt delivery.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        failure = Event(self.env)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        failure.callbacks.append(self._resume)
        self.env.schedule(failure, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event.defuse()
                next_event = self._throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(next_event, Event):
            error = RuntimeError(
                f"process {self.name!r} yielded {next_event!r}, "
                "which is not an Event"
            )
            self.fail(error)
            return
        if next_event.callbacks is None:
            # Already processed: resume immediately (next scheduler step).
            relay = Event(self.env)
            relay._ok = next_event._ok
            relay._value = next_event._value
            if not next_event._ok:
                next_event.defuse()
                relay._defused = True
            relay.callbacks.append(self._resume)
            self.env.schedule(relay, priority=0)
            self._target = relay
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
